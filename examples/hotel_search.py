#!/usr/bin/env python3
"""Interactive hotel search -- the paper's running example (Section 1).

A conference attendee looks for hotels trading off price against distance
to the venue, iteratively adjusting the constraints: an exploratory
query-refine session.  The script replays such a session through CBCS and
reports, per step, which overlap case the refinement hit and how little the
cache-based engine had to read compared to recomputing from scratch.

Run:  python examples/hotel_search.py
"""

import numpy as np

from repro import CBCS, BaselineMethod, Constraints, DiskTable
from repro.core.ampr import ApproximateMPR


def make_hotels(n=50_000, seed=42):
    """Synthetic hotels: (price per night in EUR, distance to venue in km).

    Prices are log-normal around EUR 110; distance is exponential-ish;
    central hotels are pricier, producing the trade-off that makes skyline
    queries interesting.
    """
    rng = np.random.default_rng(seed)
    distance = rng.gamma(shape=2.0, scale=2.5, size=n)  # km, mean ~5
    central_premium = 80.0 * np.exp(-distance / 3.0)
    price = rng.lognormal(np.log(85.0), 0.4, size=n) + central_premium
    return np.column_stack([price, distance])


CASE_LABELS = {
    "miss": "cold cache -> naive computation",
    "exact": "identical query -> served from cache",
    "case_a": "budget extended downwards (lower bound decreased)",
    "case_b": "constraints tightened (upper bound decreased)",
    "case_c": "constraints relaxed (upper bound increased)",
    "case_d": "lower bound increased (unstable!)",
    "general_stable": "several bounds changed (stable)",
    "general_unstable": "several bounds changed (unstable)",
}


def main():
    hotels = make_hotels()
    engine = CBCS(DiskTable(hotels), region_computer=ApproximateMPR(k=1))
    baseline = BaselineMethod(DiskTable(hotels))

    # An exploratory session: (price_lo, price_hi, dist_lo, dist_hi)
    session = [
        ("start: mid-priced, reasonably close", (60, 160, 0.0, 6.0)),
        ("a bit too far -- tighten distance", (60, 160, 0.0, 4.0)),
        ("nothing great -- allow pricier", (60, 200, 0.0, 4.0)),
        ("too posh -- raise the floor instead", (80, 200, 0.0, 4.0)),
        ("reconsider: cheaper and farther ok", (40, 200, 0.0, 5.0)),
    ]

    print(f"{len(hotels):,} hotels; smaller price and distance are better.\n")
    header = (
        f"{'step':<36} {'case':<18} {'sky':>4} {'CBCS reads':>10}"
        f" {'naive reads':>11} {'saved':>6}"
    )
    print(header)
    print("-" * len(header))
    for label, (p_lo, p_hi, d_lo, d_hi) in session:
        c = Constraints([p_lo, d_lo], [p_hi, d_hi])
        cbcs_out = engine.query(c)
        base_out = baseline.query(c)
        saved = 1.0 - (
            cbcs_out.points_read / base_out.points_read
            if base_out.points_read
            else 0.0
        )
        print(
            f"{label:<36} {cbcs_out.case:<18} {cbcs_out.skyline_size:>4}"
            f" {cbcs_out.points_read:>10,} {base_out.points_read:>11,}"
            f" {saved:>5.0%}"
        )
        assert cbcs_out.skyline_size == base_out.skyline_size

    print("\nBest trade-offs found in the final step:")
    final = engine.query(Constraints([40, 0.0], [200, 5.0]))
    for price, dist in sorted(final.skyline.tolist())[:8]:
        print(f"  EUR {price:6.2f}/night at {dist:4.2f} km")
    print("\n(every row is Pareto-optimal: no hotel is both cheaper and closer)")


if __name__ == "__main__":
    main()
