#!/usr/bin/env python3
"""Tuning the approximate MPR: points read vs range queries issued.

The exact MPR reads the minimum number of points but decomposes into a
number of range queries that explodes with dimensionality (paper Figs. 4
and 9); the aMPR caps that by pruning with only the k cached skyline points
nearest the query.  This script sweeps k and prints the trade-off the
paper evaluates in Section 7.3.2, plus the exact-MPR reference.

Run:  python examples/ampr_tuning.py
"""

import numpy as np

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.data import generate
from repro.geometry.box import union_mask
from repro.skyline.sfs import sfs_skyline
from repro.workload.generator import WorkloadGenerator


def measure(computer, pairs, data):
    boxes, reads = [], []
    for old, skyline, new in pairs:
        result = computer.compute(old, skyline, new)
        boxes.append(len(result.boxes))
        reads.append(int(union_mask(result.boxes, data).sum()))
    return float(np.mean(boxes)), float(np.mean(reads))


def main():
    ndim, n = 5, 20_000
    print(f"{n:,} independent points, |D|={ndim}; 30 cache/query pairs per row\n")
    data = generate("independent", n, ndim, seed=5)
    gen = WorkloadGenerator(data, seed=9)

    pairs = []
    while len(pairs) < 30:
        old = gen.initial_query()
        new = gen.refine(old)
        inside = data[old.satisfied_mask(data)]
        if len(inside) == 0:
            continue
        pairs.append((old, inside[sfs_skyline(inside)], new))

    print(f"  {'region computer':<14} {'avg range queries':>18} {'avg points to read':>19}")
    for label, computer in [
        ("aMPR, k=1", ApproximateMPR(1)),
        ("aMPR, k=3", ApproximateMPR(3)),
        ("aMPR, k=6", ApproximateMPR(6)),
        ("aMPR, k=10", ApproximateMPR(10)),
        ("exact MPR", ExactMPR()),
    ]:
        n_boxes, n_reads = measure(computer, pairs, data)
        print(f"  {label:<14} {n_boxes:>18.1f} {n_reads:>19.1f}")

    print(
        "\nMore neighbours prune more points but split the region into more"
        "\nrange queries (more random access); the exact MPR is the limit of"
        "\nthat curve.  The paper found k=1 best for interactive sessions and"
        "\nk=5-10 best for independent multi-user traffic (Fig. 12b)."
    )


if __name__ == "__main__":
    main()
