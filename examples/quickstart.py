#!/usr/bin/env python3
"""Quickstart: cache-accelerated constrained skyline queries.

Builds a simulated disk table over synthetic data, asks one constrained
skyline query the expensive way, then shows how CBCS answers a refined
query from the cache by fetching only the Missing Points Region.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CBCS, BaselineMethod, Constraints, DiskTable
from repro.data import generate


def describe(label, outcome):
    print(
        f"  {label:<28} case={outcome.case or '-':<16}"
        f" skyline={outcome.skyline_size:>4}"
        f" points_read={outcome.points_read:>6}"
        f" range_queries={outcome.range_queries:>3}"
        f" time={outcome.total_ms:7.1f} ms"
    )


def main():
    print("Generating 100,000 independent 4-D points ...")
    data = generate("independent", 100_000, 4, seed=0)

    # Two independent tables so I/O accounting never crosses methods.
    engine = CBCS(DiskTable(data))
    baseline = BaselineMethod(DiskTable(data))

    # A user searching for well-balanced options in the mid-range.
    first = Constraints([0.2, 0.2, 0.2, 0.2], [0.7, 0.7, 0.7, 0.7])
    print("\nInitial query (cold cache -- computed naively):")
    describe("CBCS (miss)", engine.query(first))

    # The user relaxes one upper constraint: classic exploratory refinement.
    refined = Constraints([0.2, 0.2, 0.2, 0.2], [0.7, 0.7, 0.7, 0.8])
    print("\nRefined query (upper constraint increased -- case c):")
    describe("Baseline (no cache)", baseline.query(refined))
    describe("CBCS (cached)", engine.query(refined))

    # Tighten a different dimension: a pure shrink needs no disk at all.
    tightened = Constraints([0.2, 0.2, 0.2, 0.2], [0.6, 0.7, 0.7, 0.8])
    print("\nTightened query (upper constraint decreased -- case b):")
    describe("Baseline (no cache)", baseline.query(tightened))
    describe("CBCS (cached)", engine.query(tightened))

    # Sanity: both methods always return the identical skyline.
    out_a = baseline.query(refined)
    out_b = engine.query(refined)
    canon = lambda a: a[np.lexsort(a.T[::-1])]
    assert np.allclose(canon(out_a.skyline), canon(out_b.skyline))
    print("\nBoth methods return identical skylines -- caching is purely a")
    print("performance device (paper Theorem 6).")


if __name__ == "__main__":
    main()
