#!/usr/bin/env python3
"""Dynamic data: keeping the skyline cache fresh through updates.

The paper sketches dynamic-data support in Section 6.2 ("viewing each cache
item as a separate dataset with a continuous skyline query").  This script
runs a listings site where properties appear and sell while users keep
querying: CBCS maintains its cached skylines through every update and keeps
serving exact answers -- including exact-match hits for repeated queries
whose cached result was silently updated in place.

Run:  python examples/dynamic_updates.py
"""

import numpy as np

from repro import Constraints, DiskTable
from repro.core.dynamic import DynamicCBCS
from repro.data.realestate import danish_real_estate
from repro.skyline.sfs import sfs_skyline


def oracle(table, constraints):
    data = table.data_view()[table._alive]
    inside = data[constraints.satisfied_mask(data)]
    return inside[sfs_skyline(inside)]


def main():
    rng = np.random.default_rng(11)
    data = danish_real_estate(60_000, seed=3)
    engine = DynamicCBCS(DiskTable(data), on_delete="refresh")

    # A saved search: newer mid-sized homes below 2.5M DKK.
    saved = Constraints([0.0, 60.0, 100.0, 100.0], [40.0, 160.0, 2500.0, 2500.0])

    out = engine.query(saved)
    print(f"initial result: {out.skyline_size} Pareto-optimal listings "
          f"({out.points_read:,} rows read)")

    events = [
        ("3 new listings appear", "insert", 3),
        ("2 skyline listings sell", "delete_skyline", 2),
        ("5 unremarkable listings sell", "delete_dominated", 5),
        ("a bargain appears", "insert_bargain", 1),
    ]
    for label, kind, count in events:
        if kind == "insert":
            rows = np.column_stack([
                rng.uniform(0, 30, count),        # age
                rng.uniform(70, 150, count),      # sqrm
                rng.uniform(300, 2000, count),    # valuation
                rng.uniform(300, 2000, count),    # price
            ])
            engine.insert_points(rows)
        elif kind == "insert_bargain":
            engine.insert_points(np.array([[1.0, 65.0, 150.0, 120.0]]))
        else:
            current = engine.query(saved)
            if kind == "delete_skyline":
                targets = current.skyline[:count]
            else:
                data_view = engine.table.data_view()
                inside = saved.satisfied_mask(data_view) & engine.table._alive
                sky_keys = {tuple(p) for p in current.skyline}
                candidates = [
                    i for i in np.flatnonzero(inside)
                    if tuple(data_view[i]) not in sky_keys
                ][:count]
                engine.delete_points(candidates)
                targets = []
            for point in targets:
                data_view = engine.table.data_view()
                rowid = int(np.flatnonzero(
                    np.all(data_view == point, axis=1) & engine.table._alive
                )[0])
                engine.delete_points([rowid])

        out = engine.query(saved)
        expected = oracle(engine.table, saved)
        status = "exact" if out.case == "exact" else out.case
        ok = out.skyline_size == len(expected)
        print(f"  {label:<32} -> {out.skyline_size:3d} listings "
              f"(served as {status}, read {out.points_read} rows) "
              f"{'[verified]' if ok else '[MISMATCH]'}")
        assert ok

    print("\nEvery answer stayed exact while the dataset churned; repeated")
    print("queries were served from the maintained cache without re-reading.")


if __name__ == "__main__":
    main()
