#!/usr/bin/env python3
"""A multi-user property portal (the paper's Section 7.5 scenario).

Many independent users query a large real-estate dataset (the synthetic
Danish-property substitute) with their own constraints.  Their constraint
regions overlap even though no two are identical, so a shared CBCS cache --
preloaded by earlier traffic -- accelerates everyone.  The script compares
cache search strategies and aMPR neighbour counts, the two knobs the paper
tunes for this workload.

Run:  python examples/real_estate_portal.py
"""

import numpy as np

from repro import CBCS, BaselineMethod, Constraints, DiskTable
from repro.core.ampr import ApproximateMPR
from repro.core.strategies import MaxOverlapSP, PrioritizedND, RandomStrategy
from repro.data.realestate import COLUMNS, danish_real_estate
from repro.workload.generator import WorkloadGenerator


def run_portal(data, strategy, k, warm, queries):
    engine = CBCS(
        DiskTable(data),
        strategy=strategy,
        region_computer=ApproximateMPR(k=k),
    )
    engine.warm(warm)
    outcomes = [engine.query(c) for c in queries]
    return {
        "mean_ms": float(np.mean([o.total_ms for o in outcomes])),
        "mean_reads": float(np.mean([o.points_read for o in outcomes])),
        "hits": sum(1 for o in outcomes if o.cache_hit),
        "n": len(outcomes),
    }


def main():
    n = 120_000
    print(f"Generating {n:,} synthetic Danish property records "
          f"(columns: {', '.join(COLUMNS)}) ...")
    data = danish_real_estate(n, seed=7)

    gen = WorkloadGenerator(data, seed=1)
    warm = gen.independent_queries(300)    # earlier users fill the cache
    queries = gen.independent_queries(40)  # the users we measure

    print("\nBaseline (every user recomputes from scratch):")
    baseline = BaselineMethod(DiskTable(data))
    base_out = [baseline.query(c) for c in queries]
    base_ms = float(np.mean([o.total_ms for o in base_out]))
    base_reads = float(np.mean([o.points_read for o in base_out]))
    print(f"  mean response {base_ms:8.1f} ms, mean points read {base_reads:10,.0f}")

    print("\nCBCS with a shared cache (300 earlier queries preloaded):")
    configs = [
        ("PrioritizednD(Std), 5 NNs", PrioritizedND.std(), 5),
        ("PrioritizednD(Std), 1 NN", PrioritizedND.std(), 1),
        ("MaxOverlapSP,       5 NNs", MaxOverlapSP(), 5),
        ("Random,             5 NNs", RandomStrategy(seed=3), 5),
    ]
    print(f"  {'configuration':<28} {'mean ms':>9} {'mean reads':>11} {'cache hits':>10}")
    for label, strategy, k in configs:
        stats = run_portal(data, strategy, k, warm, queries)
        print(
            f"  {label:<28} {stats['mean_ms']:>9.1f} {stats['mean_reads']:>11,.0f}"
            f" {stats['hits']:>6}/{stats['n']}"
        )

    print(
        "\nInterpretation: with a well-filled cache, a strategy-guided CBCS"
        "\nanswers unrelated users' queries reading a fraction of the rows"
        "\nthe Baseline needs; the cache item choice (strategy) and the"
        "\naMPR neighbour count both matter, as in the paper's Figs. 11-12."
    )


if __name__ == "__main__":
    main()
