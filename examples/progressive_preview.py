#!/usr/bin/env python3
"""Progressive result previews with BBSScan.

BBS [19] is *progressive*: skyline points stream out in ascending
coordinate-sum order, paying only the R-tree work needed so far.  A search
UI can therefore show the first screenful of Pareto-optimal results almost
immediately and keep loading in the background -- this script measures
exactly that on a hotel-style dataset.

Run:  python examples/progressive_preview.py
"""

import numpy as np

from repro import BBSScan, Constraints
from repro.index.rtree import RTree


def main():
    rng = np.random.default_rng(7)
    n = 200_000
    distance = rng.gamma(shape=2.0, scale=2.5, size=n)
    price = rng.lognormal(np.log(85.0), 0.4, size=n) + 80 * np.exp(-distance / 3)
    hotels = np.column_stack([price, distance])

    print(f"Indexing {n:,} hotels ...")
    tree = RTree.bulk_load_points(hotels, max_entries=128)
    constraints = Constraints([40.0, 0.0], [250.0, 8.0])

    scan = BBSScan(tree, constraints)
    print("\nStreaming the best trade-offs (price EUR, distance km):")
    shown = 0
    for point in scan:
        shown += 1
        if shown <= 8:
            print(
                f"  #{shown:>2}: EUR {point[0]:7.2f} at {point[1]:5.2f} km   "
                f"(after {scan.nodes_accessed} node reads)"
            )
        if shown == 8:
            first_page_nodes = scan.nodes_accessed
    total = shown + sum(1 for _ in scan)
    print(
        f"\nFirst page (8 results) cost {first_page_nodes} R-tree node reads;"
        f"\nthe full skyline has {total} points and cost"
        f" {scan.nodes_accessed} node reads in total."
    )
    print(
        f"-> the preview needed {first_page_nodes / scan.nodes_accessed:.0%}"
        f" of the full query's I/O."
    )


if __name__ == "__main__":
    main()
