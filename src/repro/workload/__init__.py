"""Query workload generation (paper Section 7.1)."""

from repro.workload.generator import WorkloadGenerator

__all__ = ["WorkloadGenerator"]
