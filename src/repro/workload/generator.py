"""Constrained-skyline query workloads (paper Section 7.1).

"Existing constrained skyline work does not study sets of queries, but only
single queries.  We therefore construct a query generator mimicking
interactive search patterns":

- the **initial query** of a session places each dimension's lower and upper
  constraint "randomly between 0 and 3 standard deviations from the mean of
  dimension i, modeling that, for example, average-sized houses are most
  likely to be searched";
- each **refinement** picks a random dimension, picks increase/decrease of
  the lower/upper constraint at random, and moves that bound by 5-10% (of
  the constraint interval's current width, in our reading); a session issues
  1-10 refinements after its initial query.

Two workload shapes are produced, matching the paper's:

1. *Interactive exploratory search*: sessions of an initial query followed by
   its refinement chain (``exploratory_sessions`` /
   ``exploratory_stream``).
2. *Independent queries*: a stream of initial queries only
   (``independent_queries``), modelling unrelated users of a multi-user
   system.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

from repro.geometry.constraints import Constraints

Rng = Union[int, np.random.Generator, None]


class WorkloadGenerator:
    """Generates constraint queries shaped like the paper's workloads."""

    def __init__(
        self,
        data: np.ndarray,
        seed: Rng = None,
        min_width_fraction: float = 0.01,
    ):
        """``data`` supplies the per-dimension means/deviations and domain
        that anchor query placement; it is not otherwise consumed."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError("data must be a non-empty (n, d) array")
        self.mean = data.mean(axis=0)
        self.std = data.std(axis=0)
        self.domain_lo = data.min(axis=0)
        self.domain_hi = data.max(axis=0)
        self.ndim = data.shape[1]
        self.min_width = np.maximum(
            (self.domain_hi - self.domain_lo) * min_width_fraction, 1e-12
        )
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def initial_query(self) -> Constraints:
        """Return a fresh query with bounds within 0-3 sigma of each mean."""
        rng = self._rng
        lo = np.empty(self.ndim)
        hi = np.empty(self.ndim)
        for i in range(self.ndim):
            if self.domain_hi[i] - self.domain_lo[i] <= 0 or self.std[i] <= 0:
                # Degenerate/constant dimension: the only sensible
                # constraint is the whole (single-point) domain.
                lo[i], hi[i] = self.domain_lo[i], self.domain_hi[i]
                continue
            while True:
                offsets = rng.uniform(0.0, 3.0 * self.std[i], size=2)
                offsets *= rng.choice([-1.0, 1.0], size=2)
                a, b = np.sort(self.mean[i] + offsets)
                a = float(np.clip(a, self.domain_lo[i], self.domain_hi[i]))
                b = float(np.clip(b, self.domain_lo[i], self.domain_hi[i]))
                if b - a >= self.min_width[i]:
                    lo[i], hi[i] = a, b
                    break
        return Constraints(lo, hi)

    def refine(self, query: Constraints) -> Constraints:
        """Return one incremental change of ``query``: 5-10% movement of a
        random bound of a random dimension."""
        rng = self._rng
        dim = int(rng.integers(self.ndim))
        width = float(query.hi[dim] - query.lo[dim])
        step = float(rng.uniform(0.05, 0.10)) * max(width, self.min_width[dim])
        move_lower = bool(rng.random() < 0.5)
        increase = bool(rng.random() < 0.5)
        delta = step if increase else -step
        if move_lower:
            new_lo = float(
                np.clip(
                    query.lo[dim] + delta,
                    self.domain_lo[dim],
                    query.hi[dim] - self.min_width[dim],
                )
            )
            return query.with_bound(dim, lower=min(new_lo, float(query.hi[dim])))
        new_hi = float(
            np.clip(
                query.hi[dim] + delta,
                query.lo[dim] + self.min_width[dim],
                self.domain_hi[dim],
            )
        )
        return query.with_bound(dim, upper=max(new_hi, float(query.lo[dim])))

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def session(self) -> List[Constraints]:
        """Return one exploratory session: an initial query plus 1-10
        refinements, each derived from the previous query."""
        queries = [self.initial_query()]
        for _ in range(int(self._rng.integers(1, 11))):
            queries.append(self.refine(queries[-1]))
        return queries

    def exploratory_stream(self, n_queries: int) -> List[Constraints]:
        """Return ``n_queries`` queries from back-to-back sessions."""
        out: List[Constraints] = []
        while len(out) < n_queries:
            out.extend(self.session())
        return out[:n_queries]

    def exploratory_sessions(
        self, n_sessions: int, queries_per_session: int
    ) -> List[List[Constraints]]:
        """Return ``n_sessions`` independent streams of the given length --
        the paper's "5 independent sets of 100 queries" (Section 7.1)."""
        return [
            self.exploratory_stream(queries_per_session) for _ in range(n_sessions)
        ]

    def independent_queries(self, n: int) -> List[Constraints]:
        """Return ``n`` unrelated initial queries (multi-user workload)."""
        return [self.initial_query() for _ in range(n)]

    def iter_refinements(self, start: Optional[Constraints] = None) -> Iterator[Constraints]:
        """Yield an endless refinement chain (first the initial query)."""
        query = start or self.initial_query()
        yield query
        while True:
            query = self.refine(query)
            yield query

    def zipf_stream(
        self,
        n: int,
        universe: int = 50,
        alpha: float = 1.1,
        shrink_fraction: float = 0.3,
        max_shrink: float = 0.2,
    ) -> List[Constraints]:
        """A zipf-skewed multi-user serving stream of ``n`` queries.

        Real concurrent traffic is popularity-skewed: a handful of "head"
        regions draw most requests.  This models it by drawing each request
        from a fixed ``universe`` of base queries with rank-``k``
        probability proportional to ``1/k**alpha`` -- so identical requests
        recur (in-flight *dedup* opportunities) -- and, with probability
        ``shrink_fraction``, narrowing the drawn query by moving one or
        more *upper* bounds down by up to ``max_shrink`` of the interval
        width.  A shrunken variant keeps every lower bound, so whenever its
        base query is in flight it is exactly the subsumption-coalescible
        geometry (generalized Theorem 3); it also exercises the cache's
        case-b path on repeats.  Deterministic given the generator's seed.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if universe < 1:
            raise ValueError("universe must be at least 1")
        if not 0.0 <= shrink_fraction <= 1.0:
            raise ValueError("shrink_fraction must be in [0, 1]")
        rng = self._rng
        bases = [self.initial_query() for _ in range(universe)]
        ranks = np.arange(1, universe + 1, dtype=float)
        probs = ranks**-float(alpha)
        probs /= probs.sum()
        out: List[Constraints] = []
        for _ in range(n):
            base = bases[int(rng.choice(universe, p=probs))]
            if rng.random() >= shrink_fraction:
                out.append(base)
                continue
            lo, hi = base.lo.copy(), base.hi.copy()
            dims = rng.random(self.ndim) < 0.5
            if not dims.any():
                dims[int(rng.integers(self.ndim))] = True
            for dim in np.flatnonzero(dims):
                width = hi[dim] - lo[dim]
                shrink = float(rng.uniform(0.0, max_shrink)) * width
                hi[dim] = max(hi[dim] - shrink, lo[dim] + self.min_width[dim])
            out.append(Constraints(lo, hi))
        return out

    def partition_stream(
        self,
        n: int,
        tenants: int = 8,
        key_dim: int = 0,
        alpha: float = 1.1,
        concentration: float = 0.15,
        queries_per_tenant: int = 8,
        shrink_fraction: float = 0.3,
        max_shrink: float = 0.2,
    ) -> List[Constraints]:
        """A partition-skewed multi-tenant stream of ``n`` queries.

        The sharded-deployment workload: each *tenant* (a city's users, in
        the real-estate scenario) is anchored to a narrow interval of the
        partition key -- ``concentration`` of the domain width on
        ``key_dim`` -- so its queries touch few shards of a table
        partitioned on that dimension, and a zipf(``alpha``) draw over
        tenants makes head tenants dominate the traffic.  Every tenant
        reuses a fixed set of ``queries_per_tenant`` base queries (repeat
        hits for both skyline caches and the pruning-set cache), shrunk as
        in :meth:`zipf_stream` with probability ``shrink_fraction`` (upper
        bounds only, so variants stay subsumption-coalescible and inside
        the tenant's key interval).  Deterministic given the generator's
        seed.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if tenants < 1:
            raise ValueError("tenants must be at least 1")
        if not 0 <= key_dim < self.ndim:
            raise ValueError(f"key_dim {key_dim} out of range for {self.ndim} dims")
        if not 0.0 < concentration <= 1.0:
            raise ValueError("concentration must be in (0, 1]")
        if not 0.0 <= shrink_fraction <= 1.0:
            raise ValueError("shrink_fraction must be in [0, 1]")
        rng = self._rng
        domain_width = self.domain_hi[key_dim] - self.domain_lo[key_dim]
        half = max(domain_width * concentration, self.min_width[key_dim]) / 2.0
        bases: List[List[Constraints]] = []
        for _ in range(tenants):
            center = float(
                rng.uniform(self.domain_lo[key_dim], self.domain_hi[key_dim])
            )
            key_lo = float(
                np.clip(center - half, self.domain_lo[key_dim], self.domain_hi[key_dim])
            )
            key_hi = float(
                np.clip(center + half, self.domain_lo[key_dim], self.domain_hi[key_dim])
            )
            if key_hi - key_lo < self.min_width[key_dim]:
                key_hi = min(
                    key_lo + self.min_width[key_dim], float(self.domain_hi[key_dim])
                )
                key_lo = key_hi - self.min_width[key_dim]
            tenant_bases = []
            for _ in range(max(1, queries_per_tenant)):
                base = self.initial_query()
                lo, hi = base.lo.copy(), base.hi.copy()
                lo[key_dim], hi[key_dim] = key_lo, key_hi
                tenant_bases.append(Constraints(lo, hi))
            bases.append(tenant_bases)
        ranks = np.arange(1, tenants + 1, dtype=float)
        probs = ranks**-float(alpha)
        probs /= probs.sum()
        out: List[Constraints] = []
        for _ in range(n):
            tenant = bases[int(rng.choice(tenants, p=probs))]
            base = tenant[int(rng.integers(len(tenant)))]
            if rng.random() >= shrink_fraction:
                out.append(base)
                continue
            lo, hi = base.lo.copy(), base.hi.copy()
            dims = rng.random(self.ndim) < 0.5
            if not dims.any():
                dims[int(rng.integers(self.ndim))] = True
            for dim in np.flatnonzero(dims):
                width = hi[dim] - lo[dim]
                shrink = float(rng.uniform(0.0, max_shrink)) * width
                hi[dim] = max(hi[dim] - shrink, lo[dim] + self.min_width[dim])
            out.append(Constraints(lo, hi))
        return out
