"""Dataset generation.

- :mod:`repro.data.generator` -- the three synthetic distributions of
  Börzsönyi et al. [3] used throughout the paper's evaluation: independent,
  correlated and anti-correlated.
- :mod:`repro.data.realestate` -- a synthetic substitute for the paper's
  proprietary Danish property dataset (Section 7.5); see the module
  docstring and DESIGN.md for the substitution rationale.
"""

from repro.data.generator import (
    anticorrelated,
    correlated,
    generate,
    independent,
)
from repro.data.realestate import danish_real_estate

__all__ = [
    "anticorrelated",
    "correlated",
    "danish_real_estate",
    "generate",
    "independent",
]
