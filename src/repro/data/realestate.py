"""Synthetic substitute for the paper's Danish real-estate dataset.

The paper's real-data experiments (Section 7.5) use a proprietary snapshot
of the Danish OIS property register: "almost 4.2 million properties in
Denmark as of 2005", reduced to "1.28M records after removing records with
missing data", with "4 dimensions suitable for constrained skyline
computation: year (year of construction), sqrm (size in m2), valuation
(property tax valuation) and price (actual sales price)".  That snapshot is
not publicly available, so this module generates a synthetic stand-in with
the same schema and the statistical features that matter for the paper's
experiments:

- **age** (years since construction, i.e. ``2005 - year``): a mixture of
  construction eras -- pre-war building stock, the post-war boom, and modern
  construction -- giving a multi-modal, long-tailed marginal;
- **sqrm**: log-normal floor areas around ~115 m2, clipped to [25, 800];
- **valuation**: driven by size and age (newer and bigger appraise higher)
  times log-normal regional noise, so it correlates positively with sqrm and
  negatively with age;
- **price**: the valuation times a noisy market factor, i.e. strongly
  correlated with valuation but not identical.

All four columns are oriented so that *smaller is better* (the library's
skyline convention; the paper handles maximization by negation, Section 3's
footnote): a buyer prefers newer (low age), and we keep size, valuation and
price as-is for a cost-conscious search.  The mixed correlation structure --
two strongly correlated dimensions (valuation, price), one anti-correlated
pair (age vs. valuation) and one partially independent (sqrm) -- is what
makes the workload interesting, and is preserved by construction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

COLUMNS = ("age", "sqrm", "valuation", "price")

FULL_SIZE = 1_280_000  # paper's post-cleaning cardinality


def danish_real_estate(
    n: int = FULL_SIZE, seed: Optional[int] = 2005
) -> np.ndarray:
    """Return an ``(n, 4)`` array of synthetic Danish property records.

    Columns are ``(age, sqrm, valuation, price)``; see the module docstring
    for the generative model.  Valuation and price are in thousands of DKK.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)

    # Construction era mixture: pre-war stock, post-war boom, modern.
    era = rng.choice(3, size=n, p=[0.25, 0.35, 0.40])
    age = np.empty(n)
    age[era == 0] = rng.uniform(55.0, 155.0, size=(era == 0).sum())
    age[era == 1] = rng.uniform(25.0, 55.0, size=(era == 1).sum())
    age[era == 2] = rng.uniform(0.0, 25.0, size=(era == 2).sum())

    sqrm = np.clip(rng.lognormal(np.log(115.0), 0.35, size=n), 25.0, 800.0)

    # Appraised value: per-m2 rate decays with age, with regional noise.
    rate_per_m2 = 14.0 * np.exp(-age / 120.0)  # kDKK per m2
    valuation = sqrm * rate_per_m2 * rng.lognormal(0.0, 0.30, size=n)
    valuation = np.clip(valuation, 50.0, None)

    # Sales price: market factor around the valuation.
    price = valuation * rng.lognormal(0.05, 0.20, size=n)
    price = np.clip(price, 40.0, None)

    return np.column_stack([age, sqrm, valuation, price])


def column_statistics(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-column (mean, std); used by the workload generator to
    place constraints within 0-3 standard deviations of the mean."""
    data = np.asarray(data, dtype=float)
    return data.mean(axis=0), data.std(axis=0)
