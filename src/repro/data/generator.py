"""Synthetic data distributions of Börzsönyi et al. [3].

The paper evaluates "with synthetic data by generating independent,
correlated and anti-correlated data using the standard generator from [3]"
(Section 7).  All three produce points in the unit hypercube ``[0, 1]^d``
where smaller values are better:

- **independent**: every attribute uniform and independent; moderate skyline
  sizes.
- **correlated**: points concentrated around the main diagonal -- a point
  good in one dimension tends to be good in all, so skylines are small, but
  range queries that hit the dense band return many points (the effect the
  paper discusses under Figure 5b).
- **anti-correlated**: points concentrated around the anti-diagonal
  hyperplane ``sum(x) = d/2`` -- a point good in one dimension tends to be
  bad in the others, producing large skylines (the hardest case, Figure 5c).
"""

from __future__ import annotations

from typing import Union

import numpy as np

Rng = Union[int, np.random.Generator, None]

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def _rng(seed: Rng) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent(n: int, ndim: int, seed: Rng = None) -> np.ndarray:
    """Return ``n`` points uniform on ``[0, 1]^ndim``."""
    _validate(n, ndim)
    return _rng(seed).uniform(0.0, 1.0, size=(n, ndim))


def correlated(
    n: int, ndim: int, seed: Rng = None, spread: float = 0.1
) -> np.ndarray:
    """Return ``n`` points clustered around the main diagonal.

    Each point is a diagonal anchor ``(v, ..., v)`` with ``v ~ U(0, 1)`` plus
    per-dimension Gaussian noise of standard deviation ``spread``; rows
    falling outside the unit cube are resampled (rejection), matching the
    bounded generator of [3].
    """
    _validate(n, ndim)
    if spread <= 0:
        raise ValueError("spread must be positive")
    rng = _rng(seed)
    out = np.empty((n, ndim))
    filled = 0
    while filled < n:
        m = max(n - filled, 128)
        v = rng.uniform(0.0, 1.0, size=(m, 1))
        candidates = v + rng.normal(0.0, spread, size=(m, ndim))
        ok = np.all((candidates >= 0.0) & (candidates <= 1.0), axis=1)
        good = candidates[ok]
        take = min(len(good), n - filled)
        out[filled : filled + take] = good[:take]
        filled += take
    return out


def anticorrelated(
    n: int, ndim: int, seed: Rng = None, spread: float = 0.25
) -> np.ndarray:
    """Return ``n`` points clustered around the plane ``sum(x) = ndim / 2``.

    Each point is ``c + e`` where ``c ~ N(0.5, 0.03)`` (clipped to keep the
    cube feasible) and ``e`` is zero-sum noise (uniform offsets re-centred to
    sum to zero), so attribute values trade off against each other: the
    zero-sum noise dominates the shared center, making every pair of
    dimensions negatively correlated.  Rows outside the unit cube are
    resampled.
    """
    _validate(n, ndim)
    if spread <= 0:
        raise ValueError("spread must be positive")
    rng = _rng(seed)
    out = np.empty((n, ndim))
    filled = 0
    while filled < n:
        m = max(n - filled, 128)
        center = np.clip(rng.normal(0.5, 0.03, size=(m, 1)), 0.3, 0.7)
        noise = rng.uniform(-spread, spread, size=(m, ndim))
        noise -= noise.mean(axis=1, keepdims=True)
        candidates = center + noise
        ok = np.all((candidates >= 0.0) & (candidates <= 1.0), axis=1)
        good = candidates[ok]
        take = min(len(good), n - filled)
        out[filled : filled + take] = good[:take]
        filled += take
    return out


def generate(distribution: str, n: int, ndim: int, seed: Rng = None) -> np.ndarray:
    """Return ``n`` points of one of the three named distributions."""
    if distribution == "independent":
        return independent(n, ndim, seed)
    if distribution == "correlated":
        return correlated(n, ndim, seed)
    if distribution == "anticorrelated":
        return anticorrelated(n, ndim, seed)
    raise ValueError(
        f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
    )


def _validate(n: int, ndim: int) -> None:
    if n < 0:
        raise ValueError("n must be non-negative")
    if ndim < 1:
        raise ValueError("ndim must be positive")
