"""Observability for the CBCS query engine: metrics, tracing, profiling.

The paper's evaluation attributes cost to stages — cache search, MPR/aMPR
decomposition, disk fetches, skyline computation.  This package makes that
evidence available live instead of only as per-query ``QueryOutcome``
snapshots: an :class:`Observability` object bundles a
:class:`~repro.obs.metrics.MetricsRegistry` (labeled counters, gauges,
histograms) with a :class:`~repro.obs.tracing.Tracer` (nested spans with
pluggable sinks), and is threaded through the engine, storage, skyline, and
benchmark layers.

Usage::

    from repro.obs import Observability
    from repro.obs.sinks import RingBufferSink

    obs = Observability()
    obs.tracer.add_sink(RingBufferSink())
    engine = CBCS(DiskTable(data, obs=obs), obs=obs)
    engine.query(constraints)
    print(obs.metrics.counter_total("points_read_total"))

Disabled mode: every instrumented component defaults to :data:`NULL_OBS`, a
shared no-op whose metrics and tracer absorb calls without allocating, so
the hot path is unaffected when observability is off.

For the benchmark harness there is also an *ambient* observability:
:func:`activate` installs an instance as the process-wide default that
:func:`current` (and therefore ``repro.bench.harness.make_methods`` /
``make_cbcs``) picks up, which is how ``python -m repro.bench --obs``
threads one registry through every experiment without changing their
signatures.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.correlate import (  # noqa: F401  (re-exported)
    QueryCorrelation,
    bind,
    current_query_id,
)
from repro.obs.metrics import (  # noqa: F401  (re-exported)
    NULL_METRICS,
    HistogramData,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.tracing import (  # noqa: F401  (re-exported)
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "HistogramData",
    "QueryCorrelation",
    "bind",
    "current_query_id",
    "current",
    "activate",
]


class Observability:
    """A metrics registry plus a tracer, threaded through the engine."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.outcome_sinks: list = []
        #: Mints per-query correlation ids at the serving ingress; every
        #: span, outcome record, and quarantine event of one query carries
        #: the same id (see :mod:`repro.obs.correlate`).
        self.correlation = QueryCorrelation()
        #: Optional :class:`repro.obs.profiling.QueryProfiler`; when set,
        #: the engine routes sampled queries' stages through it.
        self.profiler = None
        #: The most recently built engine's :class:`SkylineCache` (set by
        #: ``repro.bench.harness.make_cbcs``); lets the bench CLI write
        #: ``cache.json`` introspection without threading the engine out.
        self.last_cache = None
        #: Optional :class:`repro.obs.explain.ExplainRecorder`; when set,
        #: every :meth:`CBCS.query` emits one decision-provenance record
        #: (EXPLAIN ANALYZE) through it.
        self.explainer = None

    def add_outcome_sink(self, sink) -> "Observability":
        """Register a per-query structured-log sink.

        ``sink`` needs one method, ``emit(record)``; each finished query's
        :meth:`~repro.stats.QueryOutcome.as_record` dict is pushed to every
        registered sink from :meth:`record_outcome`.  A
        :class:`~repro.obs.sinks.JsonlSink` turns this into a
        ``queries.jsonl`` structured log.
        """
        self.outcome_sinks.append(sink)
        return self

    # ------------------------------------------------------------------
    # Query-outcome aggregation
    # ------------------------------------------------------------------
    def record_outcome(self, outcome) -> None:
        """Fold one finished query's evidence into the registry.

        Called by every query method (CBCS, Baseline, BBS) on each
        ``QueryOutcome``, so aggregate counters reconcile exactly with the
        summed per-query records: ``points_read_total{method=X}`` equals the
        sum of ``outcome.io.points_read`` over X's queries, and the
        ``stage_ms`` histograms accumulate the same floats stored in
        ``outcome.timings``.
        """
        m = self.metrics
        method = outcome.method
        m.inc("queries_total", method=method)
        if outcome.case is not None:
            m.inc("query_case_total", method=method, case=outcome.case)
        if outcome.stable is not None:
            m.inc(
                "query_stability_total",
                method=method,
                stable="stable" if outcome.stable else "unstable",
            )
        for fname, value in outcome.io.as_dict().items():
            if value:
                m.inc(f"{fname}_total", value, method=method)
        if outcome.nodes_accessed:
            m.inc(
                "rtree_nodes_accessed_total", outcome.nodes_accessed, method=method
            )
        if outcome.degraded is not None:
            m.inc("degraded_queries_total", method=method, rung=outcome.degraded)
        if outcome.stale:
            m.inc("stale_serves_total", method=method)
        if outcome.retries:
            m.inc("query_retries_total", outcome.retries, method=method)
        t = outcome.timings
        m.observe("stage_ms", t.processing_ms, method=method, stage="processing")
        m.observe("stage_ms", t.fetch_io_ms, method=method, stage="fetch_io")
        m.observe("stage_ms", t.fetch_wall_ms, method=method, stage="fetch_wall")
        m.observe("stage_ms", t.skyline_ms, method=method, stage="skyline")
        # Aggregate disk work (not a stage: it overlaps fetch_io under a
        # parallel executor, so it must not enter the stage_ms breakdown).
        m.observe("query_io_ms_total", t.io_ms_total, method=method)
        # The query id rides as an exemplar (a concrete query to pull up in
        # the trace), never as a label: per-query labels would explode
        # series cardinality.
        m.observe(
            "query_total_ms",
            t.total_ms,
            exemplar=getattr(outcome, "query_id", None),
            method=method,
        )
        m.observe("skyline_size", outcome.skyline_size, method=method)
        if self.outcome_sinks:
            record = outcome.as_record()
            for sink in self.outcome_sinks:
                sink.emit(record)

    def close(self) -> None:
        """Flush/close the tracer's sinks and any outcome sinks."""
        self.tracer.close()
        for sink in self.outcome_sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:
        return f"Observability(metrics={self.metrics!r}, sinks={len(self.tracer.sinks)})"


class _NullObservability(Observability):
    """Disabled observability: shared no-op metrics and tracer."""

    enabled = False

    def __init__(self):
        super().__init__(metrics=NULL_METRICS, tracer=NULL_TRACER)

    def record_outcome(self, outcome) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_OBS"


#: The shared disabled instance every instrumented component defaults to.
NULL_OBS = _NullObservability()

_ambient: Observability = NULL_OBS


def current() -> Observability:
    """The ambient observability (``NULL_OBS`` unless one is activated)."""
    return _ambient


@contextmanager
def activate(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` as the ambient observability for the ``with`` body."""
    global _ambient
    previous = _ambient
    _ambient = obs
    try:
        yield obs
    finally:
        _ambient = previous
