"""Labeled counters, gauges, and histograms for the CBCS engine.

A :class:`MetricsRegistry` is the engine-wide accumulator behind metrics such
as ``cache_lookups_total{strategy=..., outcome=hit|miss}`` or the
``mpr_rectangles_per_query`` histogram.  It is deliberately tiny and
dependency-free: a metric is identified by a name plus a sorted tuple of
``key=value`` labels, and the registry stores plain Python numbers, so a
snapshot serializes straight to JSON (``as_dict`` / ``save_json``).

:class:`NullMetrics` is the no-op twin used when observability is disabled:
every mutator returns immediately, so instrumented hot paths cost one
attribute lookup and a no-op call.  Code that wants to skip even argument
construction can guard on :attr:`MetricsRegistry.enabled`.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(name: str, labels: LabelKey) -> str:
    """Render ``name{k=v,...}`` in the Prometheus-like text style."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class HistogramData:
    """Running distribution of one labeled histogram series.

    All observed values are kept (benchmark runs observe thousands of
    values, not millions) up to ``max_samples``; beyond that the summary
    statistics stay exact while percentiles come from the retained prefix.
    """

    __slots__ = ("count", "sum", "min", "max", "_values", "_max_samples", "exemplar")

    def __init__(self, max_samples: int = 65536):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: List[float] = []
        self._max_samples = max_samples
        #: Last ``(query_id, value)`` observed with an exemplar: a concrete
        #: query to pull up in the trace when this series looks wrong.
        self.exemplar: Optional[Tuple[str, float]] = None

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < self._max_samples:
            self._values.append(value)
        if exemplar is not None:
            self.exemplar = (exemplar, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of retained samples."""
        if not self._values:
            return float("nan")
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[int(rank)]

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        summary = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }
        if self.exemplar is not None:
            summary["exemplar"] = {
                "query_id": self.exemplar[0],
                "value": self.exemplar[1],
            }
        return summary

    def merge(self, other: "HistogramData") -> None:
        """Fold another histogram's observations into this one.

        Summary statistics stay exact; retained samples are concatenated up
        to this histogram's ``max_samples`` cap.
        """
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        room = self._max_samples - len(self._values)
        if room > 0:
            self._values.extend(other._values[:room])
        if other.exemplar is not None:
            self.exemplar = other.exemplar


class MetricsRegistry:
    """Engine-wide store of labeled counters, gauges, and histograms."""

    enabled = True

    def __init__(self, max_histogram_samples: int = 65536):
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], HistogramData] = {}
        self._max_histogram_samples = max_histogram_samples
        # Mutations are read-modify-write on shared dicts/histograms; one
        # registry-wide lock keeps them safe under concurrent query workers.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the counter ``name`` for this label set."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name`` to ``value`` for this label set."""
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self, name: str, value: float, exemplar: Optional[str] = None, **labels
    ) -> None:
        """Record one observation into the histogram ``name``.

        ``exemplar`` optionally attaches a query id to the series (kept as
        the last-observed exemplar, never as a label -- per-query labels
        would explode series cardinality).
        """
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = HistogramData(self._max_histogram_samples)
                self._histograms[key] = hist
            hist.observe(value, exemplar=exemplar)

    def reset(self) -> None:
        """Drop every recorded series (e.g. between benchmark figures)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, gauges take the other registry's (newer) value, and
        histograms merge observation-by-observation.  Used by the benchmark
        CLI to keep per-figure registries (for ``BENCH_*.json`` snapshots)
        while still producing one cumulative ``metrics.json`` per run.
        """
        with self._lock:
            for key, value in other._counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            self._gauges.update(other._gauges)
            for key, hist in other._histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = HistogramData(self._max_histogram_samples)
                    self._histograms[key] = mine
                mine.merge(hist)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """Value of one exactly-labeled counter series (0.0 if absent)."""
        return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def counters(self, name: str) -> Iterator[Tuple[Dict[str, str], float]]:
        """Iterate ``(labels_dict, value)`` for every series of ``name``."""
        for (n, labels), value in sorted(self._counters.items()):
            if n == name:
                yield dict(labels), value

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels) -> Optional[HistogramData]:
        return self._histograms.get((name, _label_key(labels)))

    def histograms(self, name: str) -> Iterator[Tuple[Dict[str, str], HistogramData]]:
        """Iterate ``(labels_dict, data)`` for every series of ``name``."""
        for (n, labels), hist in sorted(self._histograms.items(), key=lambda kv: kv[0]):
            if n == name:
                yield dict(labels), hist

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, list]:
        """JSON-serializable snapshot: one record per labeled series."""
        return {
            "counters": [
                {"name": n, "labels": dict(labels), "value": v}
                for (n, labels), v in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": n, "labels": dict(labels), "value": v}
                for (n, labels), v in sorted(self._gauges.items())
            ],
            "histograms": [
                {"name": n, "labels": dict(labels), **hist.summary()}
                for (n, labels), hist in sorted(
                    self._histograms.items(), key=lambda kv: kv[0]
                )
            ],
        }

    def save_json(self, path) -> None:
        """Write :meth:`as_dict` to ``path`` as indented, versioned JSON.

        The write is atomic (temp file + rename): a crash mid-export leaves
        the previous artifact intact, never a torn half-JSON.
        """
        from repro.ioutil import atomic_write_json
        from repro.obs.schema import stamp

        atomic_write_json(path, stamp(self.as_dict()))

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class NullMetrics(MetricsRegistry):
    """No-op registry: accepts every call, records nothing."""

    enabled = False

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(
        self, name: str, value: float, exemplar: Optional[str] = None, **labels
    ) -> None:
        pass


#: Shared no-op registry; instrumented code defaults to this singleton so
#: disabled observability costs one attribute lookup per call site.
NULL_METRICS = NullMetrics()
