"""Declarative SLOs and a live health classifier over a rolling window.

A cache-serving deployment needs one question answered continuously: *is
the service meeting its objectives right now, and if not, why?*
:class:`SLOSpec` declares the objectives (latency percentiles, cache hit
ratio, degradation/staleness/error budgets); :class:`HealthMonitor` reads
a :class:`~repro.obs.window.RollingWindow` snapshot -- plus, optionally,
the circuit breaker and cache quarantine state -- and classifies:

- ``healthy``: every objective met;
- ``degraded``: serving correct answers but out of SLO (latency or hit
  ratio off, degradation-ladder answers above budget, items quarantined);
- ``unhealthy``: availability is impaired (error rate above budget, stale
  or unavailable answers above budget, circuit breaker open).

Every violated objective contributes a human-readable reason string, so
``QueryService.health()`` and the ``--watch`` dashboard can say *what* is
wrong, not just that something is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs.window import RollingWindow, WindowSnapshot

__all__ = ["SLOSpec", "HealthReport", "HealthMonitor", "HEALTHY", "DEGRADED", "UNHEALTHY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

#: Gauge encoding exported as ``service_health``.
STATUS_CODES = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives for the constrained-skyline serving path.

    Latency objectives are in *effective* milliseconds (simulated I/O plus
    CPU, the same ``total_ms`` the paper's figures plot).  Any objective
    set to None is not enforced.  ``min_queries`` guards against verdict
    flapping on a nearly empty window: below it the monitor reports
    ``healthy`` with an "insufficient data" reason rather than judging on
    noise.
    """

    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    min_hit_ratio: Optional[float] = None
    max_degraded_rate: float = 0.05
    max_stale_rate: float = 0.01
    max_error_rate: float = 0.0
    min_queries: int = 10

    def __post_init__(self):
        for name in ("p95_ms", "p99_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.min_hit_ratio is not None and not 0.0 <= self.min_hit_ratio <= 1.0:
            raise ValueError("min_hit_ratio must be in [0, 1]")
        for name in ("max_degraded_rate", "max_stale_rate", "max_error_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass
class HealthReport:
    """One health verdict: status, reasons, and the snapshot it judged.

    ``service`` carries the serving layer's ingress stats (queue depth and
    capacity, in-flight count, shed/rejected totals) when the monitor has
    a ``service_stats`` side channel -- the overload evidence behind any
    "overload"/"ingress queue" reasons.
    """

    status: str
    reasons: List[str] = field(default_factory=list)
    snapshot: Optional[WindowSnapshot] = None
    breaker_state: Optional[str] = None
    quarantined: int = 0
    service: Optional[dict] = None

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "reasons": list(self.reasons),
            "breaker_state": self.breaker_state,
            "quarantined": self.quarantined,
            "window": self.snapshot.as_dict() if self.snapshot else None,
            "service": dict(self.service) if self.service is not None else None,
        }

    def summary(self) -> str:
        reason = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return f"{self.status}{reason}"


def _rate_ok(value: float, budget: float) -> bool:
    """A nan rate (empty window) never violates a budget."""
    return math.isnan(value) or value <= budget


class HealthMonitor:
    """Classifies a rolling window's snapshot against an :class:`SLOSpec`.

    ``breaker`` (anything with a ``state`` attribute, e.g.
    :class:`repro.resilience.breaker.CircuitBreaker`) and ``quarantined``
    (a zero-arg callable returning the cache's quarantine count) are
    optional side channels: an open breaker is an availability failure
    regardless of what the window says, and fresh quarantines mark the
    service degraded even while answers stay in SLO.

    ``service_stats`` (a zero-arg callable returning
    ``QueryService.stats()``-shaped ingress numbers) is the overload side
    channel: fresh shed/rejected requests or a nearly full ingress queue
    classify the service ``degraded`` with an explicit overload reason --
    even while the answered queries in the window still meet their SLO,
    and even while the window is too empty to judge (shed traffic never
    *enters* the window, so overload must not hide behind "insufficient
    data").
    """

    #: queue-depth fraction above which the ingress queue itself is a
    #: degradation reason, ahead of any shedding
    QUEUE_PRESSURE_FRACTION = 0.8

    def __init__(
        self,
        window: RollingWindow,
        slo: Optional[SLOSpec] = None,
        breaker=None,
        quarantined: Optional[Callable[[], int]] = None,
        metrics=None,
        service_stats: Optional[Callable[[], dict]] = None,
    ):
        self.window = window
        self.slo = slo if slo is not None else SLOSpec()
        self.breaker = breaker
        self.quarantined = quarantined
        self.metrics = metrics
        self.service_stats = service_stats
        self._last_quarantined = quarantined() if quarantined is not None else 0
        self._last_shed_total = 0

    def _overload_reasons(self, service: Optional[dict]) -> List[str]:
        """Soft reasons derived from the ingress stats (empty when calm)."""
        if service is None:
            return []
        reasons: List[str] = []
        shed_total = (
            service.get("shed", 0)
            + service.get("rejected_queue_full", 0)
            + service.get("deadline_exceeded", 0)
        )
        newly_shed = shed_total - self._last_shed_total
        self._last_shed_total = shed_total
        depth = service.get("queue_depth", 0)
        capacity = service.get("queue_capacity", 0)
        if newly_shed > 0:
            reasons.append(
                f"overload: {newly_shed} request(s) shed/rejected/expired "
                f"since last check (queue {depth}/{capacity}, "
                f"{service.get('in_flight', 0)} in flight)"
            )
        if capacity and depth >= self.QUEUE_PRESSURE_FRACTION * capacity:
            reasons.append(
                f"ingress queue under pressure: {depth}/{capacity} slots used"
            )
        return reasons

    def report(self) -> HealthReport:
        """Judge the current window; never raises."""
        slo = self.slo
        snap = self.window.snapshot()
        hard: List[str] = []  # availability failures -> unhealthy
        soft: List[str] = []  # quality-of-service misses -> degraded

        breaker_state = getattr(self.breaker, "state", None)
        if breaker_state == "open":
            hard.append("circuit breaker open: storage fetches are rejected")
        elif breaker_state == "half_open":
            soft.append("circuit breaker half-open: probing storage recovery")

        quarantined = (
            self.quarantined() if self.quarantined is not None else 0
        )
        newly_quarantined = quarantined - self._last_quarantined
        self._last_quarantined = quarantined
        if newly_quarantined > 0:
            soft.append(
                f"{newly_quarantined} cache item(s) quarantined since last check"
            )

        service = (
            self.service_stats() if self.service_stats is not None else None
        )
        overload = self._overload_reasons(service)
        soft.extend(overload)

        if snap.queries + snap.errors < slo.min_queries:
            # Shed traffic never enters the window, so overload reasons
            # still classify the service degraded on a quiet window.
            if hard:
                status = UNHEALTHY
            elif overload:
                status = DEGRADED
            else:
                status = HEALTHY
            report = HealthReport(
                status=status,
                reasons=hard
                + overload
                + [
                    f"insufficient data: {snap.queries + snap.errors} of "
                    f"{slo.min_queries} queries in window"
                ],
                snapshot=snap,
                breaker_state=breaker_state,
                quarantined=quarantined,
                service=service,
            )
            self._export(report)
            return report

        if not _rate_ok(snap.error_rate, slo.max_error_rate):
            hard.append(
                f"error rate {snap.error_rate:.1%} exceeds "
                f"budget {slo.max_error_rate:.1%}"
            )
        if not _rate_ok(snap.stale_rate, slo.max_stale_rate):
            hard.append(
                f"stale-answer rate {snap.stale_rate:.1%} exceeds "
                f"budget {slo.max_stale_rate:.1%}"
            )
        if not _rate_ok(snap.degraded_rate, slo.max_degraded_rate):
            soft.append(
                f"degraded-answer rate {snap.degraded_rate:.1%} exceeds "
                f"budget {slo.max_degraded_rate:.1%}"
            )
        if slo.p95_ms is not None and snap.p95_ms > slo.p95_ms:
            soft.append(f"p95 {snap.p95_ms:.2f}ms above SLO {slo.p95_ms:.2f}ms")
        if slo.p99_ms is not None and snap.p99_ms > slo.p99_ms:
            soft.append(f"p99 {snap.p99_ms:.2f}ms above SLO {slo.p99_ms:.2f}ms")
        if (
            slo.min_hit_ratio is not None
            and not math.isnan(snap.hit_ratio)
            and snap.hit_ratio < slo.min_hit_ratio
        ):
            soft.append(
                f"cache hit ratio {snap.hit_ratio:.1%} below "
                f"floor {slo.min_hit_ratio:.1%}"
            )

        if hard:
            status = UNHEALTHY
        elif soft:
            status = DEGRADED
        else:
            status = HEALTHY
        report = HealthReport(
            status=status,
            reasons=hard + soft,
            snapshot=snap,
            breaker_state=breaker_state,
            quarantined=quarantined,
            service=service,
        )
        self._export(report)
        return report

    def _export(self, report: HealthReport) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(
                "service_health", STATUS_CODES[report.status]
            )

    def __repr__(self) -> str:
        return f"HealthMonitor(window={self.window!r}, slo={self.slo!r})"


def render_dashboard(report: HealthReport) -> str:
    """One-line live dashboard rendering for ``--watch``."""
    snap = report.snapshot
    service = report.service
    queue = ""
    if service is not None:
        shed = service.get("shed", 0) + service.get("rejected_queue_full", 0)
        queue = (
            f"queue={service.get('queue_depth', 0)}/"
            f"{service.get('queue_capacity', 0)}  shed={shed}  "
        )
    if snap is None or snap.queries == 0:
        return f"[watch] {queue}status={report.summary()} (no traffic in window)"
    return (
        f"[watch] qps={snap.qps:7.1f}  "
        f"p50={snap.p50_ms:7.2f}ms  p95={snap.p95_ms:7.2f}ms  "
        f"p99={snap.p99_ms:7.2f}ms  hit={snap.hit_ratio:6.1%}  "
        f"degraded={snap.degraded_rate:5.1%}  stale={snap.stale_rate:5.1%}  "
        f"errors={snap.errors}  {queue}status={report.summary()}"
    )
