"""Schema versioning for observability artifacts.

Every JSON/JSONL artifact an ``--obs`` run writes -- ``metrics.json``,
``cache.json``, ``health.jsonl`` snapshots, ``explain.jsonl`` records,
``calibration.json`` -- carries a top-level ``"schema": N`` field so readers
(:mod:`repro.obs.report`, external tooling) can detect records written by a
newer or older build.  Readers must *warn, not raise* on unknown versions:
an artifact from a different build is still mostly renderable, and a report
over a partial directory is more useful than a crash.

(The benchmark snapshots under ``BENCH_*.json`` predate this module and
keep their own ``schema``/``schema_version`` pair -- see
:mod:`repro.bench.regress`.)

This module is import-cycle free on purpose: it depends on nothing inside
``repro``, so even :mod:`repro.obs.metrics` (which ``repro.obs.__init__``
imports) can stamp its output.
"""

from __future__ import annotations

from typing import List, Optional

#: Version stamped into every obs artifact this build writes.
OBS_SCHEMA_VERSION = 1


def stamp(record: dict) -> dict:
    """Return ``record`` with the current schema version prepended.

    The version comes first so it is the first key of the serialized JSON
    object -- cheap to sniff without parsing the whole document.
    """
    return {"schema": OBS_SCHEMA_VERSION, **record}


def check_version(record: object, artifact: str) -> Optional[str]:
    """Return a warning string when ``record`` carries an unknown version.

    ``None`` means the artifact is either current or pre-versioning (no
    ``schema`` key at all -- artifacts written before this field existed
    stay readable without complaint).
    """
    if not isinstance(record, dict):
        return None
    version = record.get("schema")
    if version is None or version == OBS_SCHEMA_VERSION:
        return None
    return (
        f"{artifact}: unknown schema version {version!r} "
        f"(this build reads version {OBS_SCHEMA_VERSION}); "
        f"rendering best-effort"
    )


def check_versions(records, artifact: str) -> List[str]:
    """Version-check a JSONL record stream; at most one warning per file."""
    for record in records:
        warning = check_version(record, artifact)
        if warning is not None:
            return [warning]
    return []
