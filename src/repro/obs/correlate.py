"""Query correlation: one ``query_id`` joining every signal of one query.

The serving path spreads a single Sky(S, C') request over several layers
(``QueryService`` -> ``CBCS`` -> ``Planner`` -> ``Executor`` ->
``StorageBackend``) and several observability channels (trace spans, metric
exemplars, the ``--query-log`` JSONL records, cache quarantine events).
This module gives all of them one join key:

- :class:`QueryCorrelation` mints process-unique ids (``q00000001``, ...)
  at the ingress (``QueryService.submit`` or ``CBCS.query``);
- :func:`bind` installs the id in a :mod:`contextvars` context variable for
  the duration of the query, and :func:`current_query_id` reads it from
  anywhere on the call path -- the tracer stamps it onto every span, the
  cache onto quarantine-log entries, the executor re-binds it inside its
  worker threads so per-box fetch spans stay joinable;
- :func:`correlate` (and ``python -m repro.obs.correlate``) joins the
  artifacts of an instrumented run back together: give it a query id and
  an obs directory and it returns that query's trace spans, outcome
  record, and query-log line side by side.

Ids travel *by context*, never as metric labels -- a per-query label would
explode series cardinality.  Histograms instead keep the last-observed id
as an exemplar (:class:`repro.obs.metrics.HistogramData`).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import sys
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "QueryCorrelation",
    "bind",
    "current_query_id",
    "correlate",
    "render_correlation",
]

#: The ambient query id of the call path.  A context variable (not a plain
#: thread-local) so a future asyncio front end inherits it for free; the
#: executor copies it into its pool threads explicitly.
_QUERY_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_query_id", default=None
)


def current_query_id() -> Optional[str]:
    """The query id bound to the current call path, or None."""
    return _QUERY_ID.get()


@contextmanager
def bind(query_id: Optional[str]) -> Iterator[Optional[str]]:
    """Install ``query_id`` as the ambient id for the ``with`` body.

    Binding None is a no-op (the previous binding, if any, stays visible),
    so callers can pass an optional id through without branching.
    """
    if query_id is None:
        yield None
        return
    token = _QUERY_ID.set(query_id)
    try:
        yield query_id
    finally:
        _QUERY_ID.reset(token)


class QueryCorrelation:
    """Mints process-unique query ids at the serving ingress.

    One instance lives on each :class:`~repro.obs.Observability`; ids are
    ``<prefix><8-digit counter>`` so they sort in admission order and stay
    greppable in JSONL artifacts.  Thread-safe: the counter is an
    :func:`itertools.count`, whose ``next`` is atomic under CPython.
    """

    __slots__ = ("prefix", "_counter")

    def __init__(self, prefix: str = "q"):
        self.prefix = prefix
        self._counter = itertools.count(1)

    def new_id(self) -> str:
        """A fresh query id (monotone within this correlation instance)."""
        return f"{self.prefix}{next(self._counter):08d}"

    def __repr__(self) -> str:
        return f"QueryCorrelation(prefix={self.prefix!r})"


# ----------------------------------------------------------------------
# Joining artifacts back together
# ----------------------------------------------------------------------
def _jsonl_records(path) -> List[dict]:
    records = []
    try:
        handle = open(path)
    except OSError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn line from a crashed writer is not fatal
    return records


def correlate(obs_dir, query_id: str) -> Dict[str, object]:
    """Join every artifact of one query from an ``--obs`` directory.

    Returns ``{"query_id", "spans", "outcome", "snapshots"}``: the trace
    spans whose ``attrs.query_id`` matches (from ``trace.jsonl``), the
    query-log record (from ``queries.jsonl``, written by ``--query-log``
    into the obs dir), and any flight-recorder snapshots that covered the
    query's window.  Missing files yield empty lists, not errors -- the
    same partial-artifact tolerance as ``repro.obs.report``.

    A coalesced/deduplicated request executes no query of its own; its
    outcome record names the executing query in ``served_by``.  The join
    follows that pointer one hop: the result then also carries
    ``served_by`` and ``parent_spans`` (the executing query's trace spans),
    so piggybacked requests stay fully explainable.
    """
    from pathlib import Path

    obs_dir = Path(obs_dir)
    all_spans = _jsonl_records(obs_dir / "trace.jsonl")
    spans = [
        rec
        for rec in all_spans
        if (rec.get("attrs") or {}).get("query_id") == query_id
    ]
    outcomes = [
        rec
        for rec in _jsonl_records(obs_dir / "queries.jsonl")
        if rec.get("query_id") == query_id
    ]
    outcome = outcomes[0] if outcomes else None
    served_by = outcome.get("served_by") if outcome else None
    parent_spans = (
        [
            rec
            for rec in all_spans
            if (rec.get("attrs") or {}).get("query_id") == served_by
        ]
        if served_by
        else []
    )
    return {
        "query_id": query_id,
        "spans": spans,
        "outcome": outcome,
        "outcomes": outcomes,
        "served_by": served_by,
        "parent_spans": parent_spans,
    }


def render_correlation(joined: Dict[str, object]) -> str:
    """Human-readable rendering of one :func:`correlate` result."""
    lines = [f"# query {joined['query_id']}"]
    outcome = joined.get("outcome")
    if outcome:
        lines.append(
            "outcome: method={method} case={case} cache_hit={cache_hit} "
            "skyline={skyline_size} total_ms={total_ms:.3f} "
            "degraded={degraded} retries={retries}".format(**outcome)
        )
    else:
        lines.append("outcome: (no queries.jsonl record)")
    served_by = joined.get("served_by")
    if served_by:
        parent_spans = joined.get("parent_spans") or []
        lines.append(
            f"served by: {served_by} (coalesced; "
            f"{len(parent_spans)} span(s) of the executing query below)"
        )
        for span in parent_spans:
            lines.append(
                f"  {'  ' * int(span.get('depth', 0))}{span['name']} "
                f"{span.get('duration_ms', 0.0):.3f}ms"
            )
    spans = joined.get("spans") or []
    if spans:
        lines.append(f"spans ({len(spans)}):")
        for span in spans:
            attrs = {
                k: v
                for k, v in (span.get("attrs") or {}).items()
                if k != "query_id"
            }
            suffix = (
                " " + " ".join(f"{k}={v}" for k, v in attrs.items())
                if attrs
                else ""
            )
            lines.append(
                f"  {'  ' * int(span.get('depth', 0))}{span['name']} "
                f"{span.get('duration_ms', 0.0):.3f}ms{suffix}"
            )
    else:
        lines.append("spans: (none found in trace.jsonl)")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI: ``python -m repro.obs.correlate OBS_DIR QUERY_ID``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.correlate",
        description="Join one query's spans, outcome record, and log lines.",
    )
    parser.add_argument("obs_dir", metavar="OBS_DIR")
    parser.add_argument("query_id", metavar="QUERY_ID")
    parser.add_argument(
        "--json", action="store_true", help="emit the joined record as JSON"
    )
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    joined = correlate(opts.obs_dir, opts.query_id)
    if opts.json:
        print(json.dumps(joined, indent=2))
    else:
        print(render_correlation(joined))
    return 0 if (joined["spans"] or joined["outcome"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
