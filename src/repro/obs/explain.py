"""Per-query decision provenance: the engine's EXPLAIN ANALYZE.

The CBCS paper's whole contribution is a *decision* -- pick one cached
skyline, classify the overlap case, plan MPR/aMPR boxes -- yet a plain
:class:`~repro.stats.QueryOutcome` only shows the chosen plan.  This module
records the decision itself:

- every cache candidate the strategy considered, with its overlap volume,
  incremental case, score, and a machine-readable rejection reason
  (``"outscored"``, ``"failed-verification"``, ``"not-sampled"``, ...);
- the selected item and the resulting plan summary;
- per plan box, the *predicted* points/pages/seeks/io_ms (selectivity
  estimator + :meth:`~repro.storage.costmodel.DiskCostModel.predict_fetch`)
  joined against the *actual* executed values stamped on each
  :class:`~repro.storage.table.RangeResult`.

One record is emitted per :meth:`CBCS.query` call, stamped with the query's
correlation id, so ``explain.jsonl`` joins 1:1 with ``queries.jsonl`` and
the trace.  For degraded queries the record reflects the final attempted
plan plus the rung that actually served (``degraded`` field); boxes whose
fetch never completed keep ``"actual": null``.

Wiring: the bench CLI (``--explain``) sets an :class:`ExplainRecorder` on
``Observability.explainer``; :meth:`CBCS.query` builds one
:class:`ExplainBuilder` per query from it and feeds the planning/execution
milestones.  With observability off (or no recorder installed) nothing is
built and answers are bit-identical.

CLI::

    python -m repro.obs.explain OBS_DIR          # one summary line per query
    python -m repro.obs.explain OBS_DIR QID      # full record for one query
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import List, Optional, Tuple

from repro.obs.schema import check_versions, stamp

#: Rejection reason stamped on candidates the self-healing cache removed
#: before planning (failed ``verify_and_heal``).
REJECT_FAILED_VERIFICATION = "failed-verification"

#: ``no_candidates_reason`` values for miss-case records.
REASON_EMPTY_CACHE = "empty-cache"
REASON_NO_OVERLAP = "no-overlapping-candidates"

_COST_KEYS = ("points", "pages", "seeks", "io_ms")


def _zero_cost() -> dict:
    return {"points": 0, "pages": 0, "seeks": 0, "io_ms": 0.0}


def _sum_costs(costs) -> dict:
    total = _zero_cost()
    for cost in costs:
        for key in _COST_KEYS:
            total[key] += cost.get(key, 0)
    total["io_ms"] = round(float(total["io_ms"]), 6)
    return total


class ExplainBuilder:
    """Accumulates one query's decision provenance as the engine runs it.

    The engine calls, in order: :meth:`begin` (per planning attempt, so a
    degraded re-plan resets the working state), :meth:`reject` for each
    candidate dropped by cache verification, :meth:`set_plan` (or
    :meth:`set_miss` on the naive path), :meth:`set_fetch` once the boxes
    executed, and finally :meth:`finish` with the outcome.  Everything here
    is pure bookkeeping plus I/O-free estimator/cost-model math -- the
    builder never touches the disk or the cache.
    """

    def __init__(self, planner, cost_model, heap_pages, method, strategy):
        self.planner = planner
        self.cost_model = cost_model
        self.heap_pages = heap_pages
        self.method = method
        self.strategy = strategy
        self.attempts = 0
        self.cache_items = 0
        self.candidate_rows: List[dict] = []
        self.rejected_rows: List[dict] = []
        self.plan_summary: Optional[dict] = None
        self.box_rows: List[dict] = []

    # ------------------------------------------------------------------
    # Milestones fed by the engine
    # ------------------------------------------------------------------
    def begin(self, constraints, candidates, cache_items: int) -> None:
        """Start one planning attempt (resets any prior attempt's state)."""
        self.attempts += 1
        self.cache_items = int(cache_items)
        self.candidate_rows = []
        self.rejected_rows = []
        self.plan_summary = None
        self.box_rows = []

    def reject(self, constraints, item, reason: str) -> None:
        """Record a candidate removed before planning (e.g. failed verify)."""
        self.rejected_rows.append(
            self.planner.candidate_row(
                constraints, item, selected=False, rejection=reason
            )
        )

    def set_plan(self, planned) -> None:
        """Record the chosen plan (built with ``explain=True``)."""
        plan = planned.plan
        self.plan_summary = {
            "case": plan.case,
            "cache_hit": plan.cache_hit,
            "stable": plan.stable,
            "item_id": plan.item_id,
            "reusable_points": plan.reusable_points,
            "range_queries": plan.range_queries,
            "estimated_points": plan.estimated_points,
        }
        self.candidate_rows = [dict(row) for row in plan.candidates_scored]
        self.box_rows = [self._forecast_row(box) for box in plan.boxes]

    def set_miss(self, constraints, boxes) -> None:
        """Record the naive miss plan (single bounding range query)."""
        boxes = list(boxes)
        estimated = sum(self.planner.estimate_box(box) for box in boxes)
        self.plan_summary = {
            "case": "miss",
            "cache_hit": False,
            "stable": None,
            "item_id": None,
            "reusable_points": 0,
            "range_queries": len(boxes),
            "estimated_points": int(estimated),
        }
        self.box_rows = [self._forecast_row(box) for box in boxes]

    def set_fetch(self, fetch) -> None:
        """Join per-box actuals from an executed fetch (plan order)."""
        parts = getattr(fetch, "parts", ())
        if len(parts) != len(self.box_rows):
            return
        for row, part in zip(self.box_rows, parts):
            row["actual"] = {
                "points": int(part.rows_fetched),
                "pages": int(part.pages_read),
                "seeks": int(part.seeks),
                "io_ms": round(float(part.io_ms), 6),
            }

    def finish(self, outcome) -> dict:
        """Assemble the final provenance record for one finished query."""
        candidates = self.candidate_rows + self.rejected_rows
        reason = None
        if not candidates:
            reason = (
                REASON_EMPTY_CACHE
                if self.cache_items == 0
                else REASON_NO_OVERLAP
            )
        executed = [row["actual"] for row in self.box_rows if row["actual"]]
        fully_executed = len(executed) == len(self.box_rows)
        record = {
            "query_id": getattr(outcome, "query_id", None),
            "method": self.method,
            "strategy": self.strategy,
            "case": outcome.case,
            "cache_hit": bool(outcome.cache_hit),
            "stable": outcome.stable,
            "degraded": outcome.degraded,
            "attempts": self.attempts,
            "cache_items": self.cache_items,
            "no_candidates_reason": reason,
            "candidates": candidates,
            "plan": self.plan_summary,
            "boxes": self.box_rows,
            "predicted": _sum_costs(
                row["predicted"] for row in self.box_rows
            ),
            "actual": _sum_costs(executed) if fully_executed else None,
        }
        return stamp(record)

    # ------------------------------------------------------------------
    def _forecast_row(self, box) -> dict:
        rows = self.planner.estimate_box(box)
        forecast = self.cost_model.predict_fetch(
            rows, heap_pages=self.heap_pages
        )
        return {
            "box": box.to_dict(),
            "predicted": forecast.as_dict(),
            "actual": None,
        }


class ExplainRecorder:
    """Per-engine factory for builders plus the record fan-out.

    Install on ``Observability.explainer``; every :meth:`CBCS.query` then
    emits exactly one record here.  Records go to an optional JSONL sink
    (``explain.jsonl``), an optional
    :class:`~repro.obs.calibration.CalibrationLedger`, and an in-memory
    ring buffer (``keep`` most recent) for tests and interactive use.
    """

    def __init__(self, sink=None, ledger=None, keep: int = 0):
        self.sink = sink
        self.ledger = ledger
        self.records_emitted = 0
        self._keep: Optional[deque] = deque(maxlen=keep) if keep else None

    def builder(self, engine) -> ExplainBuilder:
        """Build the per-query provenance accumulator for ``engine``."""
        table = engine.table
        model = table.cost_model
        heap_pages = None if model.clustered else table.n_pages
        return ExplainBuilder(
            planner=engine.planner,
            cost_model=model,
            heap_pages=heap_pages,
            method=engine.name,
            strategy=engine.strategy.name,
        )

    def record(self, record: dict) -> None:
        self.records_emitted += 1
        if self._keep is not None:
            self._keep.append(record)
        if self.ledger is not None:
            self.ledger.add(record)
        if self.sink is not None:
            self.sink.emit(record)

    @property
    def records(self) -> List[dict]:
        """The buffered most-recent records (empty unless ``keep > 0``)."""
        return list(self._keep or ())

    def close(self) -> None:
        if self.sink is not None:
            close = getattr(self.sink, "close", None)
            if close is not None:
                close()


# ----------------------------------------------------------------------
# Reading + rendering
# ----------------------------------------------------------------------
def load_records(path) -> List[dict]:
    """Read an ``explain.jsonl`` file, skipping blank/corrupt lines."""
    records: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _fmt_cost(cost: Optional[dict]) -> str:
    if not cost:
        return "-"
    return (
        f"{cost.get('points', 0)}pt/{cost.get('pages', 0)}pg/"
        f"{cost.get('seeks', 0)}sk/{cost.get('io_ms', 0.0):.1f}ms"
    )


def render_summary(records: List[dict]) -> str:
    """One aligned line per record: the query-level predicted-vs-actual."""
    from repro.bench.reporting import format_table

    if not records:
        return "(no explain records)"
    rows = []
    for rec in records:
        plan = rec.get("plan") or {}
        shard = rec.get("shard_pruning") or {}
        rows.append(
            [
                rec.get("query_id") or "-",
                rec.get("case") or "-",
                rec.get("degraded") or "-",
                str(plan.get("item_id", "-")),
                len(rec.get("candidates") or ()),
                len(rec.get("boxes") or ()),
                (
                    f"{shard.get('shards_scanned', 0)}/"
                    f"{shard.get('shards_total', 0)}"
                    if shard
                    else "-"
                ),
                _fmt_cost(rec.get("predicted")),
                _fmt_cost(rec.get("actual")),
            ]
        )
    return format_table(
        [
            "query_id",
            "case",
            "degraded",
            "item",
            "cands",
            "boxes",
            "shards",
            "predicted",
            "actual",
        ],
        rows,
        title=f"Explain records ({len(records)} queries)",
    )


def render_record(record: dict) -> str:
    """Full multi-table rendering of one query's provenance record."""
    from repro.bench.reporting import format_table

    plan = record.get("plan") or {}
    lines = [
        f"# explain {record.get('query_id') or '(no id)'}",
        f"method={record.get('method')} strategy={record.get('strategy')} "
        f"case={record.get('case')} cache_hit={record.get('cache_hit')} "
        f"stable={record.get('stable')} degraded={record.get('degraded')}",
        f"cache_items={record.get('cache_items')} "
        f"attempts={record.get('attempts')} "
        f"plan: item={plan.get('item_id')} "
        f"reuse={plan.get('reusable_points')} "
        f"range_queries={plan.get('range_queries')} "
        f"est_points={plan.get('estimated_points')}",
    ]
    shard = record.get("shard_pruning") or {}
    if shard:
        lines.append(
            f"shards: {shard.get('shards_scanned', 0)} scanned / "
            f"{shard.get('shards_pruned', 0)} pruned of "
            f"{shard.get('shards_total', 0)} "
            f"(pruning cached: {shard.get('pruning_cached')}; "
            f"predicted surviving {shard.get('predicted_surviving')}, "
            f"actual {shard.get('actual_surviving')}; "
            f"merge candidates {shard.get('merge_candidates')})"
        )
        decisions = shard.get("decisions") or []
        if decisions:
            rows = [
                [
                    d.get("shard_id"),
                    d.get("decision") or "-",
                    d.get("reason") or "-",
                ]
                for d in decisions
            ]
            lines.append(
                format_table(
                    ["shard", "decision", "reason"],
                    rows,
                    title="Shard pruning decisions",
                )
            )
    candidates = record.get("candidates") or []
    if candidates:
        rows = [
            [
                str(c.get("item_id")),
                c.get("case") or "-",
                f"{c.get('overlap_volume', 0.0):.4g}",
                c.get("skyline_size", 0),
                json.dumps(c.get("score")),
                "<selected>" if c.get("selected") else (c.get("rejection") or "-"),
            ]
            for c in candidates
        ]
        lines.append(
            format_table(
                ["item", "case", "overlap", "skyline", "score", "verdict"],
                rows,
                title="Candidates considered",
            )
        )
    elif not shard:
        lines.append(
            f"candidates: none ({record.get('no_candidates_reason')})"
        )
    boxes = record.get("boxes") or []
    if boxes:
        rows = [
            [i, _fmt_cost(b.get("predicted")), _fmt_cost(b.get("actual"))]
            for i, b in enumerate(boxes)
        ]
        lines.append(
            format_table(
                ["box", "predicted", "actual"],
                rows,
                title="Plan boxes (predicted vs actual)",
            )
        )
    pred, act = record.get("predicted"), record.get("actual")
    lines.append(f"totals: predicted {_fmt_cost(pred)} actual {_fmt_cost(act)}")
    return "\n\n".join(lines)


def summarize_obs_dir(directory) -> Tuple[Optional[str], List[str]]:
    """(section text or None, warnings) for a directory's explain.jsonl."""
    path = Path(directory) / "explain.jsonl"
    if not path.is_file():
        return None, []
    try:
        records = load_records(path)
    except OSError as exc:
        return None, [f"warning: {path}: unreadable ({exc})"]
    warnings = [
        f"warning: {w}" for w in check_versions(records, str(path))
    ]
    joined = sum(1 for rec in records if rec.get("query_id"))
    cases: dict = {}
    for rec in records:
        key = str(rec.get("case"))
        cases[key] = cases.get(key, 0) + 1
    case_txt = ", ".join(f"{k}: {v}" for k, v in sorted(cases.items()))
    text = (
        "# explain\n"
        f"records: {len(records)} ({joined} carrying a query_id)\n"
        f"cases: {case_txt or '-'}"
    )
    return text, warnings


def main(argv=None) -> int:
    """CLI: render explain records from an ``--obs`` directory."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.explain",
        description=(
            "Render per-query planner decision provenance "
            "(explain.jsonl) from an --obs output directory."
        ),
    )
    parser.add_argument(
        "obs_dir", metavar="OBS_DIR",
        help="directory a `python -m repro.bench --obs DIR --explain` "
             "run wrote",
    )
    parser.add_argument(
        "query_id", metavar="QID", nargs="?",
        help="render the full record of one query instead of the summary",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit raw JSON instead of aligned tables",
    )
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    path = Path(opts.obs_dir) / "explain.jsonl"
    if not path.is_file():
        print(f"no explain records at {path} (run bench with --obs --explain)")
        return 2
    try:
        records = load_records(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}")
        return 2
    for warning in check_versions(records, str(path)):
        print(f"warning: {warning}", file=sys.stderr)
    if opts.query_id is not None:
        matches = [r for r in records if r.get("query_id") == opts.query_id]
        if not matches:
            print(f"query_id {opts.query_id!r} not found in {path}")
            return 1
        for record in matches:
            print(
                json.dumps(record, indent=2)
                if opts.json
                else render_record(record)
            )
        return 0
    if opts.json:
        print(json.dumps(records, indent=2))
    else:
        print(render_summary(records))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
