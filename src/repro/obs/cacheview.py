"""Live introspection of a :class:`~repro.core.cache.SkylineCache`.

The cache *is* the paper's contribution, yet until now its only runtime
surface was a handful of counters.  :class:`CacheView` renders the live
cache population as evidence an operator can act on:

- **per-item accounting**: skyline size, memory footprint, use count and
  the per-case hit split (how often the item served an ``exact`` hit vs a
  case a-d reuse), recency;
- **coverage fraction**: the Monte-Carlo-estimated share of the constraint
  space covered by at least one cached region -- the live analogue of the
  paper's "preloaded cache" premise (a cold cache covers ~0, a warmed one
  approaches 1);
- **quarantine listing**: the self-healing layer's recent evictions with
  their invariant-violation reason and the ``query_id`` whose verification
  triggered them.

Snapshots are plain dicts (JSON-ready, written as ``cache.json`` by the
bench CLI) and render as text via :func:`render_cacheview` /
``repro.obs.report``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.obs.schema import OBS_SCHEMA_VERSION

__all__ = ["CacheView", "FleetCacheView", "view_for", "render_cacheview"]


class CacheView:
    """Read-only introspection over a live cache (never mutates it)."""

    def __init__(self, cache, bounds=None, coverage_samples: int = 4096):
        """``bounds`` is an optional ``(lo, hi)`` pair of arrays framing the
        constraint space for the coverage estimate (e.g. the data's min/max
        per dimension); without it the view frames the union of the cached
        regions themselves, falling back to each item's skyline MBR on
        unbounded constraint sides."""
        self.cache = cache
        self.bounds = bounds
        self.coverage_samples = int(coverage_samples)

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def _frame(self, items) -> Optional[tuple]:
        if self.bounds is not None:
            lo, hi = self.bounds
            return np.asarray(lo, dtype=float), np.asarray(hi, dtype=float)
        if not items:
            return None
        los, his = [], []
        for item in items:
            lo = np.asarray(item.constraints.lo, dtype=float).copy()
            hi = np.asarray(item.constraints.hi, dtype=float).copy()
            lo[~np.isfinite(lo)] = item.mbr_lo[~np.isfinite(lo)]
            hi[~np.isfinite(hi)] = item.mbr_hi[~np.isfinite(hi)]
            los.append(lo)
            his.append(hi)
        return np.min(los, axis=0), np.max(his, axis=0)

    def coverage_fraction(self, items=None) -> float:
        """Share of the framed constraint space inside >= 1 cached region.

        Estimated on a seeded low-discrepancy-ish uniform sample, so the
        number is deterministic for a given cache state; ``nan`` on an
        empty cache.
        """
        if items is None:
            items = list(self.cache)
        frame = self._frame(items)
        if not items or frame is None:
            return float("nan")
        lo, hi = frame
        span = hi - lo
        if not np.all(np.isfinite(span)) or np.any(span < 0):
            return float("nan")
        rng = np.random.default_rng(0)
        points = lo + rng.random((self.coverage_samples, len(lo))) * span
        covered = np.zeros(len(points), dtype=bool)
        for item in items:
            covered |= item.constraints.satisfied_mask(points)
            if covered.all():
                break
        return float(covered.mean())

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    @staticmethod
    def _item_nbytes(item) -> int:
        """Approximate in-memory footprint of one cached entry."""
        nbytes = int(item.skyline.nbytes)
        nbytes += int(np.asarray(item.mbr_lo).nbytes)
        nbytes += int(np.asarray(item.mbr_hi).nbytes)
        return nbytes

    def snapshot(self, top: int = 10) -> dict:
        """JSON-ready view of the cache population and its health."""
        items = list(self.cache)
        stats = self.cache.stats()
        per_item: List[dict] = []
        total_bytes = 0
        total_points = 0
        for item in sorted(items, key=lambda it: it.use_count, reverse=True):
            nbytes = self._item_nbytes(item)
            total_bytes += nbytes
            total_points += item.skyline_size
            per_item.append(
                {
                    "item_id": item.item_id,
                    "skyline_size": item.skyline_size,
                    "bytes": nbytes,
                    "use_count": item.use_count,
                    "case_uses": dict(getattr(item, "case_uses", {}) or {}),
                    "inserted_at": item.inserted_at,
                    "last_used": item.last_used,
                }
            )
        case_totals: Dict[str, int] = {}
        for rec in per_item:
            for case, count in rec["case_uses"].items():
                case_totals[case] = case_totals.get(case, 0) + count
        return {
            "schema": OBS_SCHEMA_VERSION,
            "items": len(items),
            "capacity": stats.get("capacity"),
            "policy": stats.get("policy"),
            "total_points": total_points,
            "total_bytes": total_bytes,
            "hit_rate": stats.get("hit_rate"),
            "insertions": stats.get("insertions"),
            "evictions": stats.get("evictions"),
            "refreshes": stats.get("refreshes"),
            "quarantined": stats.get("quarantined"),
            "coverage_fraction": self.coverage_fraction(items),
            "case_hit_totals": case_totals,
            "top_items": per_item[:top],
            "quarantine_log": [
                dict(entry) for entry in getattr(self.cache, "quarantine_log", ())
            ],
        }

    def export_gauges(self, metrics) -> None:
        """Mirror the headline numbers into a metrics registry."""
        snap = self.snapshot(top=0)
        metrics.set_gauge("cache_bytes", snap["total_bytes"])
        metrics.set_gauge("cache_points", snap["total_points"])
        coverage = snap["coverage_fraction"]
        if coverage == coverage:  # skip NaN: an empty cache covers nothing
            metrics.set_gauge("cache_coverage_fraction", coverage)


class FleetCacheView:
    """Aggregated introspection over the per-shard caches of a sharded
    engine.

    A :class:`~repro.core.sharded.ShardedCBCS` runs one
    ``SkylineCache`` per shard; this view renders them as one fleet --
    summed counters, a fleet-wide hit rate (total hits over total
    lookups, not a mean of rates), union coverage over every cached
    region, and a per-shard breakdown -- in the same snapshot schema as
    :class:`CacheView`, so ``cache.json`` rendering and the report
    pipeline work unchanged.
    """

    def __init__(self, caches, bounds=None, coverage_samples: int = 4096):
        self.caches = list(caches)
        self.bounds = bounds
        self.coverage_samples = int(coverage_samples)

    def snapshot(self, top: int = 10) -> dict:
        views = [
            CacheView(
                cache,
                bounds=self.bounds,
                coverage_samples=self.coverage_samples,
            )
            for cache in self.caches
        ]
        shard_snaps = [view.snapshot(top=top) for view in views]
        stats = [cache.stats() for cache in self.caches]
        hits = sum(s.get("hits", 0) for s in stats)
        lookups = hits + sum(s.get("misses", 0) for s in stats)
        all_items = [item for cache in self.caches for item in cache]
        # Union coverage needs one frame over every shard's regions, so it
        # is computed on the pooled items, not averaged per shard.
        union = CacheView(
            None, bounds=self.bounds, coverage_samples=self.coverage_samples
        ).coverage_fraction(all_items)
        merged_top = sorted(
            (
                dict(rec, shard=shard_id)
                for shard_id, snap in enumerate(shard_snaps)
                for rec in snap["top_items"]
            ),
            key=lambda rec: rec["use_count"],
            reverse=True,
        )
        case_totals: Dict[str, int] = {}
        for snap in shard_snaps:
            for case, count in (snap.get("case_hit_totals") or {}).items():
                case_totals[case] = case_totals.get(case, 0) + count
        return {
            "schema": OBS_SCHEMA_VERSION,
            "shards_total": len(self.caches),
            "items": sum(snap["items"] for snap in shard_snaps),
            "capacity": None,  # per-shard capacities; see the breakdown
            "policy": stats[0].get("policy") if stats else None,
            "total_points": sum(snap["total_points"] for snap in shard_snaps),
            "total_bytes": sum(snap["total_bytes"] for snap in shard_snaps),
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "insertions": sum(s.get("insertions", 0) for s in stats),
            "evictions": sum(s.get("evictions", 0) for s in stats),
            "refreshes": sum(s.get("refreshes", 0) for s in stats),
            "quarantined": sum(s.get("quarantined", 0) for s in stats),
            "coverage_fraction": union,
            "case_hit_totals": case_totals,
            "top_items": merged_top[:top],
            "quarantine_log": [
                dict(entry, shard=shard_id)
                for shard_id, snap in enumerate(shard_snaps)
                for entry in snap["quarantine_log"]
            ],
            "shards": [
                {
                    "shard_id": shard_id,
                    "items": snap["items"],
                    "capacity": snap["capacity"],
                    "total_points": snap["total_points"],
                    "total_bytes": snap["total_bytes"],
                    "hit_rate": snap["hit_rate"],
                    "insertions": snap["insertions"],
                    "evictions": snap["evictions"],
                    "quarantined": snap["quarantined"],
                    "coverage_fraction": snap["coverage_fraction"],
                }
                for shard_id, snap in enumerate(shard_snaps)
            ],
        }

    def export_gauges(self, metrics) -> None:
        """Fleet totals unlabeled + the same gauges labeled per shard."""
        snap = self.snapshot(top=0)
        metrics.set_gauge("cache_bytes", snap["total_bytes"])
        metrics.set_gauge("cache_points", snap["total_points"])
        coverage = snap["coverage_fraction"]
        if coverage == coverage:
            metrics.set_gauge("cache_coverage_fraction", coverage)
        for shard in snap["shards"]:
            label = str(shard["shard_id"])
            metrics.set_gauge("cache_bytes", shard["total_bytes"], shard=label)
            metrics.set_gauge("cache_points", shard["total_points"], shard=label)
            metrics.set_gauge("cache_items", shard["items"], shard=label)
            coverage = shard["coverage_fraction"]
            if coverage == coverage:
                metrics.set_gauge(
                    "cache_coverage_fraction", coverage, shard=label
                )


def view_for(source, bounds=None, coverage_samples: int = 4096):
    """The right view for ``source``: an engine (sharded or not) or a cache.

    A sharded engine (anything exposing a callable ``shard_caches``) gets a
    :class:`FleetCacheView` over its per-shard caches; otherwise the
    source's ``cache`` attribute -- or the source itself, for a bare
    ``SkylineCache`` -- gets a plain :class:`CacheView`.
    """
    shard_caches = getattr(source, "shard_caches", None)
    if callable(shard_caches):
        return FleetCacheView(
            shard_caches(), bounds=bounds, coverage_samples=coverage_samples
        )
    cache = getattr(source, "cache", None)
    return CacheView(
        cache if cache is not None else source,
        bounds=bounds,
        coverage_samples=coverage_samples,
    )


def render_cacheview(snapshot: dict) -> str:
    """Aligned-text rendering of a :meth:`CacheView.snapshot` dict."""
    from repro.bench.reporting import format_table

    coverage = snapshot.get("coverage_fraction")
    coverage_txt = (
        f"{coverage:.1%}" if coverage is not None and coverage == coverage else "n/a"
    )
    header = (
        f"items={snapshot.get('items', 0)} "
        f"points={snapshot.get('total_points', 0)} "
        f"bytes={snapshot.get('total_bytes', 0)} "
        f"coverage={coverage_txt} "
        f"hit_rate={snapshot.get('hit_rate', 0.0):.1%} "
        f"quarantined={snapshot.get('quarantined', 0)}"
    )
    if snapshot.get("shards_total"):
        header = f"shards={snapshot['shards_total']} {header}"
    sections = [f"# cache introspection\n{header}"]
    shards = snapshot.get("shards") or []
    if shards:
        rows = []
        for shard in shards:
            cov = shard.get("coverage_fraction")
            rows.append(
                [
                    shard.get("shard_id"),
                    shard.get("items", 0),
                    shard.get("total_points", 0),
                    shard.get("total_bytes", 0),
                    f"{shard.get('hit_rate', 0.0):.1%}",
                    f"{cov:.1%}" if cov is not None and cov == cov else "n/a",
                    shard.get("quarantined", 0),
                ]
            )
        sections.append(
            format_table(
                ["shard", "items", "points", "bytes", "hit_rate", "coverage", "quar"],
                rows,
                title="Per-shard caches",
            )
        )
    case_totals = snapshot.get("case_hit_totals") or {}
    if case_totals:
        rows = [[case, count] for case, count in sorted(case_totals.items())]
        sections.append(
            format_table(["case", "hits"], rows, title="Hits by overlap case")
        )
    top = snapshot.get("top_items") or []
    if top:
        rows = [
            [
                rec["item_id"],
                rec["skyline_size"],
                rec["bytes"],
                rec["use_count"],
                ",".join(
                    f"{case}:{count}"
                    for case, count in sorted(rec.get("case_uses", {}).items())
                )
                or "-",
            ]
            for rec in top
        ]
        sections.append(
            format_table(
                ["item", "|sky|", "bytes", "uses", "case uses"],
                rows,
                title="Hottest cache items",
            )
        )
    quarantine = snapshot.get("quarantine_log") or []
    if quarantine:
        rows = [
            [
                entry.get("item_id", "?"),
                entry.get("reason", "?"),
                entry.get("query_id") or "-",
            ]
            for entry in quarantine
        ]
        sections.append(
            format_table(
                ["item", "reason", "query_id"],
                rows,
                title="Quarantine log (most recent last)",
            )
        )
    return "\n\n".join(sections)
