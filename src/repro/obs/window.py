"""Thread-safe time-bucketed rolling aggregation of query outcomes.

Batch observability (``metrics.json``, ``BENCH_*.json``) only materializes
after a run ends; a serving deployment needs the same signals *live*.
:class:`RollingWindow` keeps the last ``window_s`` seconds of query
outcomes in fixed-size time buckets and answers, at any moment:

- throughput (queries per second over the populated part of the window),
- effective-latency percentiles (p50/p95/p99 of ``total_ms``),
- cache hit ratio,
- degradation / stale-answer / error rates.

It doubles as an outcome sink (``emit(record)`` accepts the
``QueryOutcome.as_record()`` dicts that ``Observability`` pushes), so one
``obs.add_outcome_sink(window)`` call makes any instrumented engine --
benchmark harness, chaos soak, or :class:`~repro.service.QueryService` --
feed a live window with zero engine changes.

The clock is injectable (``clock=time.monotonic`` by default) so tests can
drive bucket rotation deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["RollingWindow", "WindowSnapshot"]


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return float("nan")
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


@dataclass
class WindowSnapshot:
    """One consistent reading of a :class:`RollingWindow`.

    Rates are fractions of ``queries`` (``nan`` when the window is empty);
    ``qps`` divides by the populated span of the window, so a burst that
    only filled two seconds of a 60 s window is not under-reported 30x.
    """

    window_s: float
    span_s: float
    queries: int = 0
    errors: int = 0
    cache_hits: int = 0
    degraded: int = 0
    stale: int = 0
    qps: float = 0.0
    p50_ms: float = float("nan")
    p95_ms: float = float("nan")
    p99_ms: float = float("nan")
    mean_ms: float = float("nan")
    rungs: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.queries if self.queries else float("nan")

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.queries if self.queries else float("nan")

    @property
    def stale_rate(self) -> float:
        return self.stale / self.queries if self.queries else float("nan")

    @property
    def error_rate(self) -> float:
        total = self.queries + self.errors
        return self.errors / total if total else float("nan")

    def as_dict(self) -> dict:
        """JSON-serializable rendering (flight-recorder snapshot schema)."""
        return {
            "window_s": self.window_s,
            "span_s": round(self.span_s, 3),
            "queries": self.queries,
            "errors": self.errors,
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "cache_hit_ratio": round(self.hit_ratio, 4),
            "degraded_rate": round(self.degraded_rate, 4),
            "stale_rate": round(self.stale_rate, 4),
            "error_rate": round(self.error_rate, 4),
            "rungs": dict(self.rungs),
        }


class _Bucket:
    """One time bucket's accumulators (latencies capped per bucket)."""

    __slots__ = (
        "index",
        "queries",
        "errors",
        "cache_hits",
        "degraded",
        "stale",
        "latencies",
        "rungs",
    )

    def __init__(self, index: int):
        self.reset(index)

    def reset(self, index: int) -> None:
        self.index = index
        self.queries = 0
        self.errors = 0
        self.cache_hits = 0
        self.degraded = 0
        self.stale = 0
        self.latencies: List[float] = []
        self.rungs: Dict[str, int] = {}


class RollingWindow:
    """A ring of time buckets over the last ``window_s`` seconds.

    ``bucket_s`` trades freshness against memory: with the defaults (60 s
    window, 1 s buckets) at most 61 buckets exist, each retaining up to
    ``max_samples_per_bucket`` latencies for the percentile estimates
    (summary counts stay exact beyond the cap).
    """

    def __init__(
        self,
        window_s: float = 60.0,
        bucket_s: float = 1.0,
        max_samples_per_bucket: int = 2048,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0 or bucket_s <= 0:
            raise ValueError("window_s and bucket_s must be positive")
        if bucket_s > window_s:
            raise ValueError("bucket_s cannot exceed window_s")
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self.max_samples_per_bucket = int(max_samples_per_bucket)
        self.clock = clock
        # +1: the in-progress bucket coexists with a full window of closed ones.
        n = int(round(window_s / bucket_s)) + 1
        self._ring: List[_Bucket] = [_Bucket(-1) for _ in range(n)]
        self._lock = threading.Lock()
        self._epoch = clock()
        self.total_queries = 0
        self.total_errors = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bucket(self, now: float) -> _Bucket:
        index = int((now - self._epoch) / self.bucket_s)
        bucket = self._ring[index % len(self._ring)]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    def record(
        self,
        total_ms: float,
        cache_hit: bool = False,
        degraded: Optional[str] = None,
        stale: bool = False,
    ) -> None:
        """Fold one answered query into the current bucket."""
        with self._lock:
            bucket = self._bucket(self.clock())
            bucket.queries += 1
            self.total_queries += 1
            if cache_hit:
                bucket.cache_hits += 1
            if degraded is not None:
                bucket.degraded += 1
                bucket.rungs[degraded] = bucket.rungs.get(degraded, 0) + 1
            if stale:
                bucket.stale += 1
            if len(bucket.latencies) < self.max_samples_per_bucket:
                bucket.latencies.append(float(total_ms))

    def record_error(self) -> None:
        """Fold one failed query (an exception, not an answer)."""
        with self._lock:
            self._bucket(self.clock()).errors += 1
            self.total_errors += 1

    def emit(self, record: Dict[str, object]) -> None:
        """Outcome-sink entry point: accepts ``QueryOutcome.as_record()``."""
        self.record(
            total_ms=float(record.get("total_ms", 0.0)),
            cache_hit=bool(record.get("cache_hit", False)),
            degraded=record.get("degraded"),  # type: ignore[arg-type]
            stale=bool(record.get("stale", False)),
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> WindowSnapshot:
        """Aggregate every bucket still inside the window."""
        with self._lock:
            now = self.clock()
            current = int((now - self._epoch) / self.bucket_s)
            oldest = current - (len(self._ring) - 1)
            live = [
                b
                for b in self._ring
                if b.index >= max(0, oldest) and b.queries + b.errors > 0
            ]
            snap = WindowSnapshot(
                window_s=self.window_s,
                span_s=self._span_s(live, now),
            )
            latencies: List[float] = []
            for bucket in live:
                snap.queries += bucket.queries
                snap.errors += bucket.errors
                snap.cache_hits += bucket.cache_hits
                snap.degraded += bucket.degraded
                snap.stale += bucket.stale
                for rung, count in bucket.rungs.items():
                    snap.rungs[rung] = snap.rungs.get(rung, 0) + count
                latencies.extend(bucket.latencies)
        if snap.span_s > 0:
            snap.qps = snap.queries / snap.span_s
        if latencies:
            latencies.sort()
            snap.p50_ms = _percentile(latencies, 50)
            snap.p95_ms = _percentile(latencies, 95)
            snap.p99_ms = _percentile(latencies, 99)
            snap.mean_ms = sum(latencies) / len(latencies)
        return snap

    def _span_s(self, live: List[_Bucket], now: float) -> float:
        """Populated extent of the window: oldest live bucket start -> now."""
        if not live:
            return 0.0
        start = self._epoch + min(b.index for b in live) * self.bucket_s
        return min(self.window_s, max(now - start, self.bucket_s))

    def __repr__(self) -> str:
        return (
            f"RollingWindow(window_s={self.window_s}, bucket_s={self.bucket_s}, "
            f"total_queries={self.total_queries})"
        )
