"""Continuous cost-model calibration from explain records.

The plan-accuracy auditor (:mod:`repro.obs.audit`) is a *point check*: one
synthetic workload, one MARE number.  The :class:`CalibrationLedger` turns
calibration into a continuous signal: every explain record produced during
a real run (see :mod:`repro.obs.explain`) contributes its query-level
predicted-vs-actual totals, and the ledger aggregates the mean absolute
relative error per stage -- ``points`` (selectivity estimator), ``pages``
and ``io_ms`` (disk cost model) -- overall, per overlap case, and per cache
search strategy.

The denominator is ``max(|actual|, 1)`` so exact hits (predicted 0, actual
0) contribute a clean zero error and empty boxes never divide by zero:
every reported MARE is finite by construction.

Outputs: registry gauges (``calibration_mare{stage=...}`` plus per-case and
per-strategy variants), a ``calibration.json`` artifact under ``--obs``,
and a section in the obs report.  The ROADMAP's vectorization work gates on
these gauges: an optimisation that silently breaks the estimator shows up
as a MARE jump before it shows up as a wrong plan.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.schema import stamp

#: Prediction stages aggregated by the ledger.
STAGES = ("points", "pages", "io_ms")


class CalibrationLedger:
    """Streaming aggregator of predicted-vs-actual error per stage.

    ``add`` consumes one explain record; records without full actuals
    (degraded queries whose fetch never completed) are counted as skipped,
    never poisoning the error means.  Thread-compatible with the engine's
    emit path: records arrive one at a time from ``ExplainRecorder.record``.
    """

    def __init__(self):
        #: (dimension, key, stage) -> [count, error_sum]
        self._cells: Dict[Tuple[str, str, str], List[float]] = {}
        self.queries = 0
        self.skipped = 0

    def add(self, record: dict) -> bool:
        """Fold one explain record in; returns False when skipped."""
        folded_shard = self._add_shard(record)
        predicted = record.get("predicted")
        actual = record.get("actual")
        if not isinstance(predicted, dict) or not isinstance(actual, dict):
            # A fleet-level sharded record carries no per-box cost totals;
            # its shard-pruning prediction still calibrated above.
            if folded_shard:
                self.queries += 1
                return True
            self.skipped += 1
            return False
        case = str(record.get("case") or "none")
        strategy = str(record.get("strategy") or "?")
        for stage in STAGES:
            p = float(predicted.get(stage, 0) or 0)
            a = float(actual.get(stage, 0) or 0)
            error = abs(p - a) / max(abs(a), 1.0)
            for cell in (
                ("overall", "", stage),
                ("case", case, stage),
                ("strategy", strategy, stage),
            ):
                bucket = self._cells.setdefault(cell, [0, 0.0])
                bucket[0] += 1
                bucket[1] += error
        self.queries += 1
        return True

    def _add_shard(self, record: dict) -> bool:
        """Fold a sharded record's predicted-vs-actual surviving-shard count.

        The shard-pruning planner predicts how many shards must be scanned
        (``predicted_surviving``); after execution the engine counts how
        many actually contributed points (``actual_surviving``).  Their
        MARE -- same ``max(|actual|, 1)`` denominator as the cost stages --
        measures how tight the MBR-based pruning is.
        """
        shard = record.get("shard_pruning")
        if not isinstance(shard, dict):
            return False
        p = float(shard.get("predicted_surviving", 0) or 0)
        a = float(shard.get("actual_surviving", 0) or 0)
        error = abs(p - a) / max(abs(a), 1.0)
        bucket = self._cells.setdefault(("shard", "", "surviving"), [0, 0.0])
        bucket[0] += 1
        bucket[1] += error
        return True

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def mare(self, stage: str, dimension: str = "overall", key: str = "") -> Optional[float]:
        """Mean absolute relative error of one cell, or None when empty."""
        bucket = self._cells.get((dimension, key, stage))
        if not bucket or not bucket[0]:
            return None
        return bucket[1] / bucket[0]

    def _group(self, dimension: str) -> Dict[str, Dict[str, float]]:
        group: Dict[str, Dict[str, float]] = {}
        for (dim, key, stage), (count, total) in sorted(self._cells.items()):
            if dim != dimension or not count:
                continue
            group.setdefault(key, {})[stage] = total / count
        return group

    def summary(self) -> dict:
        """JSON-ready aggregate: the ``calibration.json`` artifact body."""
        overall = {
            stage: {
                "mare": self.mare(stage),
                "count": int(
                    self._cells.get(("overall", "", stage), [0, 0.0])[0]
                ),
            }
            for stage in STAGES
            if self.mare(stage) is not None
        }
        shard_bucket = self._cells.get(("shard", "", "surviving"))
        shard = (
            {
                "surviving": {
                    "mare": shard_bucket[1] / shard_bucket[0],
                    "count": int(shard_bucket[0]),
                }
            }
            if shard_bucket and shard_bucket[0]
            else {}
        )
        return stamp(
            {
                "queries": self.queries,
                "skipped": self.skipped,
                "stages": list(STAGES),
                "overall": overall,
                "per_case": self._group("case"),
                "per_strategy": self._group("strategy"),
                "shard": shard,
            }
        )

    def export_gauges(self, metrics) -> None:
        """Mirror every cell into registry gauges.

        ``calibration_mare{stage=...}`` carries the overall figures;
        per-case and per-strategy splits get their own metric names so no
        single metric mixes label schemas.
        """
        metrics.set_gauge("calibration_queries", float(self.queries))
        for stage in STAGES:
            value = self.mare(stage)
            if value is not None:
                metrics.set_gauge("calibration_mare", value, stage=stage)
        for case, stages in self._group("case").items():
            for stage, value in stages.items():
                metrics.set_gauge(
                    "calibration_case_mare", value, case=case, stage=stage
                )
        for strategy, stages in self._group("strategy").items():
            for stage, value in stages.items():
                metrics.set_gauge(
                    "calibration_strategy_mare",
                    value,
                    strategy=strategy,
                    stage=stage,
                )
        shard_mare = self.mare("surviving", dimension="shard")
        if shard_mare is not None:
            metrics.set_gauge(
                "calibration_shard_mare", shard_mare, stage="surviving"
            )

    def save_json(self, path) -> None:
        """Write :meth:`summary` to ``path`` atomically (temp + rename)."""
        from repro.ioutil import atomic_write_json

        atomic_write_json(path, self.summary())


def render_calibration(summary: dict) -> str:
    """Aligned-text rendering of a :meth:`CalibrationLedger.summary` dict."""
    from repro.bench.reporting import format_table

    queries = summary.get("queries", 0)
    skipped = summary.get("skipped", 0)
    if not queries:
        return (
            "# calibration\n"
            f"(no calibrated queries; {skipped} skipped without actuals)"
        )
    header = (
        f"queries: {queries} calibrated, {skipped} skipped "
        f"(no executed actuals)"
    )
    sections = [f"# calibration\n{header}"]
    overall = summary.get("overall") or {}
    rows = [
        [stage, entry.get("count", 0), f"{entry.get('mare', 0.0):.3f}"]
        for stage, entry in overall.items()
    ]
    if rows:
        sections.append(
            format_table(
                ["stage", "samples", "MARE"],
                rows,
                title="Predicted-vs-actual error (overall)",
            )
        )
    shard = summary.get("shard") or {}
    if shard.get("surviving"):
        entry = shard["surviving"]
        sections.append(
            format_table(
                ["stage", "samples", "MARE"],
                [
                    [
                        "surviving shards",
                        entry.get("count", 0),
                        f"{entry.get('mare', 0.0):.3f}",
                    ]
                ],
                title="Shard-pruning prediction error",
            )
        )
    for dimension, title in (
        ("per_case", "MARE per overlap case"),
        ("per_strategy", "MARE per strategy"),
    ):
        group = summary.get(dimension) or {}
        if not group:
            continue
        stages = [s for s in STAGES if any(s in v for v in group.values())]
        rows = [
            [key]
            + [
                f"{values[s]:.3f}" if s in values else "-"
                for s in stages
            ]
            for key, values in sorted(group.items())
        ]
        sections.append(
            format_table([dimension.split("_")[1]] + stages, rows, title=title)
        )
    return "\n\n".join(sections)
