"""Sampled per-query, per-stage CPU profiling for the serving path.

The upcoming vectorization work needs *attributable* CPU evidence: not
"the bench got slower" but "``sfs_skyline`` burns 40% of the skyline
stage".  :class:`QueryProfiler` produces it with the stdlib ``cProfile``:

- **sampled**: every ``sample_every``-th query is profiled (one at a time
  -- concurrent service workers skip sampling rather than corrupt the
  profile), so the harness can stay on in long runs;
- **per-stage**: each :class:`~repro.stats.Stopwatch` stage of a sampled
  query (``processing``, ``fetch_wall``, ``skyline``) accumulates into its
  own ``cProfile.Profile``, so stage wall-clock from the trace and stage
  CPU from the profile line up;
- **two export formats**: a standard ``pstats`` dump (``profile.pstats``,
  loadable with ``pstats.Stats`` / snakeviz) and a collapsed-stack file
  (``profile.collapsed``, one ``frame;frame;frame count`` line per leaf,
  microsecond counts) ready for ``flamegraph.pl`` or speedscope.

Enable it through the bench CLI (``python -m repro.bench --profile DIR``)
or directly::

    obs = Observability()
    obs.profiler = QueryProfiler(sample_every=4)
    engine = CBCS(table, obs=obs)
    ...
    obs.profiler.save(out_dir)

When no profiler is attached (the default), the engine's only cost is one
attribute read per query.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

__all__ = ["QueryProfiler", "collapse_stats"]


def _frame_name(func) -> str:
    """``file:function`` rendering of a pstats function key."""
    filename, lineno, name = func
    if filename.startswith("<"):  # builtins: ('~', 0, "<method ...>")
        return name
    return f"{Path(filename).name}:{name}"


def collapse_stats(stats: pstats.Stats, root: str = "", max_depth: int = 64) -> List[str]:
    """Render a ``pstats.Stats`` as collapsed (folded) stack lines.

    cProfile keeps a caller *graph*, not full stacks, so each function's
    own-time (``tt``) is attributed to one representative stack: the chain
    of heaviest-cumulative callers up to a root.  That loses minority call
    paths but preserves the flamegraph's defining property -- the width of
    every frame equals the function's measured own-time (microseconds).
    """
    entries = stats.stats  # type: ignore[attr-defined]
    lines: List[str] = []
    for func, (cc, nc, tt, ct, callers) in sorted(entries.items()):
        useconds = int(round(tt * 1_000_000))
        if useconds <= 0:
            continue
        stack = [func]
        seen = {func}
        node = func
        for _ in range(max_depth):
            node_callers = entries.get(node, (0, 0, 0.0, 0.0, {}))[4]
            candidates = [c for c in node_callers if c not in seen]
            if not candidates:
                break
            node = max(candidates, key=lambda c: node_callers[c][3])
            stack.append(node)
            seen.add(node)
        frames = [_frame_name(f) for f in reversed(stack)]
        if root:
            frames.insert(0, root)
        lines.append(f"{';'.join(frames)} {useconds}")
    return lines


class QueryProfiler:
    """Sampled per-stage cProfile harness attached to an Observability.

    Thread model: only one query is profiled at any moment (``maybe``
    try-acquires a lock and skips sampling when another worker holds it);
    the per-stage :class:`cProfile.Profile` objects accumulate across every
    sampled query, so the final stats describe the *sampled population*,
    not a single query.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.sample_every = int(sample_every)
        self.seen = 0
        self.sampled = 0
        self.sampled_query_ids: List[str] = []
        self._profiles: Dict[str, cProfile.Profile] = {}
        self._counter_lock = threading.Lock()
        self._busy = threading.Lock()  # one profiled query at a time
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _should_sample(self) -> bool:
        with self._counter_lock:
            self.seen += 1
            return (self.seen - 1) % self.sample_every == 0

    def is_active(self) -> bool:
        """True while the *current thread* is inside a sampled query."""
        return getattr(self._local, "active", False)

    @contextmanager
    def maybe(self, query_id: Optional[str] = None) -> Iterator[bool]:
        """Mark the enclosed query as sampled (or not); yields the verdict.

        While active, the :class:`~repro.stats.Stopwatch` stages running on
        this thread route through :meth:`stage`.
        """
        if not self._should_sample() or not self._busy.acquire(blocking=False):
            yield False
            return
        self._local.active = True
        try:
            yield True
        finally:
            self._local.active = False
            with self._counter_lock:
                self.sampled += 1
                if query_id is not None:
                    self.sampled_query_ids.append(query_id)
            self._busy.release()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Profile one stage block into the stage's accumulating profile."""
        with self._counter_lock:
            profile = self._profiles.get(name)
            if profile is None:
                profile = self._profiles[name] = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def stats(self) -> Optional[pstats.Stats]:
        """Combined ``pstats.Stats`` over every stage (None if unsampled)."""
        profiles = [p for p in self._profiles.values() if p.getstats()]
        if not profiles:
            return None
        combined = pstats.Stats(profiles[0])
        for profile in profiles[1:]:
            combined.add(profile)
        return combined

    def collapsed_lines(self) -> List[str]:
        """Per-stage collapsed stacks, each stack rooted at its stage name."""
        lines: List[str] = []
        for name in sorted(self._profiles):
            profile = self._profiles[name]
            if not profile.getstats():
                continue
            lines.extend(collapse_stats(pstats.Stats(profile), root=f"stage.{name}"))
        return lines

    def save(self, directory) -> Dict[str, str]:
        """Write ``profile.pstats`` + ``profile.collapsed`` into a directory.

        Returns the written paths keyed by format.  Both files are written
        even when nothing was sampled (empty profile, zero lines), so a
        ``--profile`` run always produces its artifacts.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        pstats_path = directory / "profile.pstats"
        stats = self.stats()
        if stats is None:
            empty = cProfile.Profile()
            empty.enable()
            empty.disable()
            stats = pstats.Stats(empty)
        stats.dump_stats(str(pstats_path))
        collapsed_path = directory / "profile.collapsed"
        lines = self.collapsed_lines()
        collapsed_path.write_text("\n".join(lines) + "\n" if lines else "")
        return {"pstats": str(pstats_path), "collapsed": str(collapsed_path)}

    def render_summary(self, top: int = 8) -> str:
        """Text summary: sampled count plus the hottest functions."""
        stats = self.stats()
        header = (
            f"# profile (sampled {self.sampled} of {self.seen} queries, "
            f"every {self.sample_every})"
        )
        if stats is None:
            return header + "\nno samples collected"
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda kv: kv[1][2],
            reverse=True,
        )[:top]
        lines = [header, f"{'own ms':>10}  {'cum ms':>10}  {'calls':>8}  function"]
        for func, (cc, nc, tt, ct, _callers) in rows:
            lines.append(
                f"{tt * 1000:10.2f}  {ct * 1000:10.2f}  {nc:8d}  {_frame_name(func)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryProfiler(sample_every={self.sample_every}, "
            f"sampled={self.sampled}/{self.seen})"
        )
