"""OpenMetrics/Prometheus text rendering of a metrics snapshot.

The same :class:`~repro.obs.metrics.MetricsRegistry` that drives the bench
reports and ``BENCH_*.json`` snapshots can be scraped from a long-running
deployment: :func:`render_openmetrics` turns a registry (or a saved
``metrics.json`` snapshot) into the OpenMetrics text exposition format --
counters and gauges verbatim, histograms as summaries with ``quantile``
labels (p50/p95) plus ``_count`` and ``_sum`` series.

Usage::

    from repro.obs.export import render_openmetrics
    text = render_openmetrics(obs.metrics)          # scrape endpoint body

    python -m repro.obs.export out/metrics.json     # convert a saved snapshot
    python -m repro.bench --obs out fig5a           # also writes out/metrics.prom

Metric names get a ``repro_`` prefix and are sanitized to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset; label values are escaped per the
spec (backslash, double quote, newline).  The output ends with ``# EOF``
as OpenMetrics requires.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Dict, Iterable, List, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str, prefix: str) -> str:
    """Prefixed, charset-safe metric name."""
    name = _NAME_OK.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return prefix + name


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str], extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _snapshot(metrics) -> dict:
    """Accept a MetricsRegistry, an ``as_dict()`` snapshot, or a JSON path."""
    if hasattr(metrics, "as_dict"):
        return metrics.as_dict()
    if isinstance(metrics, (str, bytes)) or hasattr(metrics, "read_text"):
        with open(metrics) as handle:
            return json.load(handle)
    return metrics


def render_openmetrics(metrics, prefix: str = "repro_") -> str:
    """Render a metrics snapshot in the OpenMetrics text format."""
    snap = _snapshot(metrics)
    lines: List[str] = []

    by_name: Dict[str, List[dict]] = {}
    for rec in snap.get("counters", []):
        by_name.setdefault(rec["name"], []).append(rec)
    for name in sorted(by_name):
        # Prometheus counters end in ``_total``; the TYPE line names the
        # family without the suffix.
        total_name = name if name.endswith("_total") else name + "_total"
        family = _sanitize_name(total_name[: -len("_total")], prefix)
        lines.append(f"# TYPE {family} counter")
        for rec in by_name[name]:
            labels = _format_labels(rec.get("labels", {}))
            lines.append(f"{family}_total{labels} {_format_value(rec['value'])}")

    by_name = {}
    for rec in snap.get("gauges", []):
        by_name.setdefault(rec["name"], []).append(rec)
    for name in sorted(by_name):
        family = _sanitize_name(name, prefix)
        lines.append(f"# TYPE {family} gauge")
        for rec in by_name[name]:
            labels = _format_labels(rec.get("labels", {}))
            lines.append(f"{family}{labels} {_format_value(rec['value'])}")

    by_name = {}
    for rec in snap.get("histograms", []):
        by_name.setdefault(rec["name"], []).append(rec)
    for name in sorted(by_name):
        family = _sanitize_name(name, prefix)
        lines.append(f"# TYPE {family} summary")
        for rec in by_name[name]:
            labels = rec.get("labels", {})
            for q_label, key in (("0.5", "p50"), ("0.95", "p95")):
                if key in rec:
                    q_labels = _format_labels(labels, [("quantile", q_label)])
                    lines.append(f"{family}{q_labels} {_format_value(rec[key])}")
            plain = _format_labels(labels)
            lines.append(f"{family}_count{plain} {_format_value(rec.get('count', 0))}")
            lines.append(f"{family}_sum{plain} {_format_value(rec.get('sum', 0.0))}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def save_openmetrics(metrics, path, prefix: str = "repro_") -> None:
    """Write :func:`render_openmetrics` output to ``path`` (atomically)."""
    from repro.ioutil import atomic_write_text

    atomic_write_text(path, render_openmetrics(metrics, prefix=prefix))


def main(argv=None) -> int:
    """CLI: convert a saved ``metrics.json`` to OpenMetrics text."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Render a saved metrics.json snapshot as OpenMetrics text.",
    )
    parser.add_argument("snapshot", metavar="METRICS_JSON")
    parser.add_argument("-o", "--output", metavar="PATH", help="write here instead of stdout")
    parser.add_argument("--prefix", default="repro_", help="metric name prefix (default: repro_)")
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    try:
        text = render_openmetrics(opts.snapshot, prefix=opts.prefix)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read metrics snapshot {opts.snapshot}: {exc}")
        return 2
    if opts.output:
        with open(opts.output, "w") as handle:
            handle.write(text)
        print(f"[openmetrics written to {opts.output}]")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
