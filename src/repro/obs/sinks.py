"""Span sinks: where finished trace spans go.

Every sink implements one method, ``emit(record)``, receiving the span as a
plain dict (see :meth:`repro.obs.tracing.Span.to_dict`).  Sinks holding OS
resources also implement ``close()``.

- :class:`RingBufferSink` — keeps the last N spans in memory (tests,
  interactive inspection, post-mortem of a single run);
- :class:`JsonlSink` — streams one JSON object per line to ``trace.jsonl``,
  the benchmark harness's trace artifact;
- :class:`LoggingSink` — renders spans as indented human-readable lines via
  the stdlib ``logging`` module.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from typing import Dict, List, Optional


class RingBufferSink:
    """Keep the most recent ``capacity`` spans in memory."""

    def __init__(self, capacity: int = 10000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, record: Dict[str, object]) -> None:
        self._buffer.append(record)

    @property
    def spans(self) -> List[Dict[str, object]]:
        """Buffered spans, oldest first."""
        return list(self._buffer)

    def named(self, name: str) -> List[Dict[str, object]]:
        """Buffered spans with the given name, oldest first."""
        return [r for r in self._buffer if r["name"] == name]

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Append one JSON line per span to a file (opened lazily).

    Every emitted line is flushed to the OS immediately, so the file is
    complete up to the last record even if the process exits without a
    clean ``close()``.  The sink is also a context manager; re-emitting
    after ``close()`` reopens the file in append mode rather than
    truncating what was already written.

    Safe for concurrent writers: each record is serialized *outside* the
    lock, then written to the handle as one string under it, so lines from
    different threads (service workers, parallel executor lanes) can never
    interleave mid-record.  ``close()`` always releases the handle, even
    when the final flush raises (a full disk must not leak the file
    descriptor or wedge later reopens).
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        self.emitted = 0
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, default=_jsonable) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a" if self.emitted else "w")
            self._handle.write(line)
            self._handle.flush()
            self.emitted += 1

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class LoggingSink:
    """Log each span as an indented one-liner (DEBUG level by default)."""

    def __init__(self, logger: Optional[logging.Logger] = None, level: int = logging.DEBUG):
        self.logger = logger if logger is not None else logging.getLogger("repro.obs")
        self.level = level

    def emit(self, record: Dict[str, object]) -> None:
        if not self.logger.isEnabledFor(self.level):
            return
        indent = "  " * int(record.get("depth", 0))
        attrs = record.get("attrs") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        self.logger.log(
            self.level,
            "%s%s %.3fms%s",
            indent,
            record["name"],
            record["duration_ms"],
            suffix,
        )


def _jsonable(value):
    """Fallback serializer for span attributes (numpy scalars etc.)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def read_jsonl(path) -> List[Dict[str, object]]:
    """Load a ``trace.jsonl`` file back into a list of span dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
