"""Plan-accuracy audit: does ``CBCS.explain`` predict what ``query`` does?

Every paper comparison rests on the engine's cost reasoning -- the case
classification (Section 4.2), the MPR decomposition's range-query count, and
the selectivity estimates feeding :class:`~repro.storage.costmodel.DiskCostModel`
arguments.  ``CBCS.explain()`` exposes those predictions, but nothing in the
repo ever checked them against reality.  This module runs a workload calling
``explain()`` immediately before each ``query()`` and reports calibration:

- **case accuracy** -- fraction of queries whose predicted case (miss /
  exact / case_a..d / general_*) matched the executed one (should be 100%:
  both paths run the same deterministic cache search and region computer);
- **range-query accuracy** -- same for the number of range queries issued;
- **estimated-points relative error** -- ``|estimated - actual| /
  max(actual, 1)`` per query, summarized as the mean absolute relative
  error (MARE) of the selectivity estimator.

Results flow into the metrics registry (``plan_case_predictions_total``,
``plan_range_query_predictions_total``, ``plan_points_rel_error``) so they
appear in ``--obs-report`` and OpenMetrics exports, and into a plain dict
summary used by the bench ``--audit`` flag and ``BENCH_*.json`` snapshots.

Usage::

    python -m repro.obs.audit                    # quick seeded workload
    python -m repro.obs.audit --queries 200 --workload independent
    python -m repro.bench --audit --save-bench BENCH_ci.json fig5a
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs import NULL_OBS, current as current_obs


@dataclass
class AuditRecord:
    """Predicted-vs-actual evidence for one audited query."""

    index: int
    predicted_case: str
    actual_case: Optional[str]
    predicted_range_queries: int
    actual_range_queries: int
    estimated_points: int
    actual_points_read: int
    cache_hit: bool
    plan: dict = field(default_factory=dict)

    @property
    def case_match(self) -> bool:
        return self.predicted_case == self.actual_case

    @property
    def range_queries_match(self) -> bool:
        return self.predicted_range_queries == self.actual_range_queries

    @property
    def points_rel_error(self) -> float:
        return abs(self.estimated_points - self.actual_points_read) / max(
            self.actual_points_read, 1
        )

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "predicted_case": self.predicted_case,
            "actual_case": self.actual_case,
            "case_match": self.case_match,
            "predicted_range_queries": self.predicted_range_queries,
            "actual_range_queries": self.actual_range_queries,
            "range_queries_match": self.range_queries_match,
            "estimated_points": self.estimated_points,
            "actual_points_read": self.actual_points_read,
            "points_rel_error": self.points_rel_error,
            "cache_hit": self.cache_hit,
            "plan": self.plan,
        }


class PlanAccuracyAuditor:
    """Runs ``explain()`` before each ``query()`` and scores the plan.

    The engine must use a deterministic cache-search strategy (every
    built-in except :class:`~repro.core.strategies.RandomStrategy` is), so
    that the dry run and the execution select the same cache item.
    """

    def __init__(self, engine, obs=None, keep_plans: bool = False):
        self.engine = engine
        if obs is None:
            obs = engine.obs if engine.obs.enabled else current_obs()
        self.obs = NULL_OBS if obs is None else obs
        self.keep_plans = keep_plans
        self.records: List[AuditRecord] = []

    def audit_query(self, constraints) -> AuditRecord:
        """Explain, then execute, one query; record the comparison."""
        plan = self.engine.explain(constraints)
        outcome = self.engine.query(constraints)
        record = AuditRecord(
            index=len(self.records),
            predicted_case=plan.case,
            actual_case=outcome.case,
            predicted_range_queries=plan.range_queries,
            actual_range_queries=outcome.range_queries,
            estimated_points=plan.estimated_points,
            actual_points_read=outcome.points_read,
            cache_hit=outcome.cache_hit,
            plan=plan.to_dict() if self.keep_plans else {},
        )
        self.records.append(record)
        m = self.obs.metrics
        m.inc(
            "plan_case_predictions_total",
            outcome="correct" if record.case_match else "wrong",
        )
        m.inc(
            "plan_range_query_predictions_total",
            outcome="correct" if record.range_queries_match else "wrong",
        )
        m.observe("plan_points_rel_error", record.points_rel_error)
        return record

    def run(self, queries: Sequence) -> List[AuditRecord]:
        """Audit every query in order; returns the new records."""
        start = len(self.records)
        for constraints in queries:
            self.audit_query(constraints)
        return self.records[start:]

    def summary(self) -> dict:
        """Aggregate calibration metrics over every audited query."""
        n = len(self.records)
        if not n:
            return {"queries": 0}
        case_ok = sum(r.case_match for r in self.records)
        rq_ok = sum(r.range_queries_match for r in self.records)
        errors = [r.points_rel_error for r in self.records]
        by_case: Dict[str, Dict[str, int]] = {}
        for r in self.records:
            entry = by_case.setdefault(
                r.predicted_case, {"count": 0, "correct": 0}
            )
            entry["count"] += 1
            entry["correct"] += int(r.case_match)
        return {
            "queries": n,
            "case_accuracy": case_ok / n,
            "range_query_accuracy": rq_ok / n,
            "points_mare": sum(errors) / n,
            "points_rel_error_max": max(errors),
            "mean_estimated_points": sum(r.estimated_points for r in self.records) / n,
            "mean_actual_points": sum(r.actual_points_read for r in self.records) / n,
            "by_case": by_case,
        }


def run_quick_audit(
    n_points: int = 4000,
    ndim: int = 3,
    n_queries: int = 60,
    exact_repeats: int = 5,
    seed: int = 0,
    distribution: str = "independent",
    workload: str = "interactive",
    obs=None,
    keep_plans: bool = False,
):
    """Build a seeded CBCS engine, audit a workload, return (summary, records).

    The workload is an exploratory (or independent) stream plus
    ``exact_repeats`` verbatim repeats of earlier queries, so the audit
    always exercises misses, hits, *and* the exact-match case.
    """
    from repro.core.cbcs import CBCS
    from repro.data.generator import generate
    from repro.storage.table import DiskTable
    from repro.workload.generator import WorkloadGenerator

    data = generate(distribution, n_points, ndim, seed=seed)
    obs = current_obs() if obs is None else obs
    engine = CBCS(DiskTable(data), obs=obs if obs.enabled else None)
    gen = WorkloadGenerator(data, seed=seed + 1)
    if workload == "independent":
        queries = gen.independent_queries(n_queries)
    else:
        queries = gen.exploratory_stream(n_queries)
    repeats = queries[: max(0, min(exact_repeats, len(queries)))]
    auditor = PlanAccuracyAuditor(engine, obs=obs, keep_plans=keep_plans)
    auditor.run(list(queries) + list(repeats))
    return auditor.summary(), auditor.records


def render_summary(summary: dict) -> str:
    """Aligned-table rendering of :meth:`PlanAccuracyAuditor.summary`."""
    from repro.bench.reporting import format_table

    if not summary.get("queries"):
        return "(no queries audited)"
    rows = [
        ["queries audited", summary["queries"]],
        ["case accuracy", f"{summary['case_accuracy']:.1%}"],
        ["range-query accuracy", f"{summary['range_query_accuracy']:.1%}"],
        ["estimated-points MARE", f"{summary['points_mare']:.3f}"],
        ["worst rel error", f"{summary['points_rel_error_max']:.3f}"],
        ["mean estimated points", f"{summary['mean_estimated_points']:.1f}"],
        ["mean actual points", f"{summary['mean_actual_points']:.1f}"],
    ]
    sections = [format_table(["metric", "value"], rows, title="Plan accuracy")]
    case_rows = [
        [case, entry["count"], entry["correct"]]
        for case, entry in sorted(summary.get("by_case", {}).items())
    ]
    if case_rows:
        sections.append(
            format_table(
                ["predicted case", "queries", "correct"],
                case_rows,
                title="Per-case prediction accuracy",
            )
        )
    return "\n\n".join(sections)


def main(argv=None) -> int:
    """CLI: run the audit on a seeded workload and print calibration."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Audit CBCS.explain() predictions against executed queries.",
    )
    parser.add_argument("--points", type=int, default=4000)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=5,
                        help="verbatim repeats appended to exercise exact matches")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distribution", default="independent",
                        choices=["independent", "correlated", "anticorrelated"])
    parser.add_argument("--workload", default="interactive",
                        choices=["interactive", "independent"])
    parser.add_argument("--json", metavar="PATH",
                        help="also dump summary + per-query records (with plans)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 unless case accuracy is 100%%")
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    summary, records = run_quick_audit(
        n_points=opts.points,
        ndim=opts.dims,
        n_queries=opts.queries,
        exact_repeats=opts.repeats,
        seed=opts.seed,
        distribution=opts.distribution,
        workload=opts.workload,
        keep_plans=opts.json is not None,
    )
    print(render_summary(summary))
    if opts.json:
        with open(opts.json, "w") as handle:
            json.dump(
                {"summary": summary, "records": [r.as_dict() for r in records]},
                handle,
                indent=2,
            )
        print(f"\n[audit records written to {opts.json}]")
    if opts.strict and summary.get("case_accuracy", 0.0) < 1.0:
        print("plan-accuracy audit FAILED: case predictions diverged from execution")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
