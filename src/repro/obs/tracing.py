"""Nested span tracing for the CBCS query path.

A :class:`Tracer` produces :class:`Span` records — named, wall-clock-timed,
attribute-carrying, and nested (each span knows its parent and depth).  The
engine opens spans for the stages the paper's evaluation attributes cost to:
cache search, strategy selection, case dispatch, MPR splitting, every range
query, and the skyline merge.  Finished spans are pushed to pluggable sinks
(:mod:`repro.obs.sinks`): an in-memory ring buffer, a ``trace.jsonl`` file,
or a human-readable ``logging`` stream.

Two entry points exist on purpose:

- :meth:`Tracer.span` — a context manager that times the enclosed block
  itself;
- :meth:`Tracer.record` — attach an *externally measured* duration as a
  completed child span.  :class:`repro.stats.Stopwatch` uses this so the
  milliseconds in ``StageTimings`` and the milliseconds in the trace are
  the *same float*, not two clock readings that could drift.

:class:`NullTracer` is the disabled twin: ``span()`` hands back one shared
no-op span object (no allocation, no clock read), ``record()`` returns
immediately.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from repro.obs.correlate import current_query_id


class Span:
    """One timed, named node of a trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "start_ms",
        "duration_ms",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        start_ms: float,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.attrs: Dict[str, object] = attrs or {}

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_ms": round(self.start_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, depth={self.depth}, "
            f"{self.duration_ms:.3f}ms)"
        )


class _ActiveSpan:
    """Context manager binding one open :class:`Span` to its tracer."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span, t0: float):
        self._tracer = tracer
        self.span = span
        self._t0 = t0

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Builds nested spans and emits them (on close) to every sink."""

    enabled = True

    def __init__(self, sinks=()):
        self.sinks = list(sinks)
        # The open-span stack is thread-local: each executor/service worker
        # builds its own span tree (worker spans are roots in their thread)
        # instead of racing on one shared stack and mis-parenting spans.
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._emit_lock = threading.Lock()
        self._epoch = time.perf_counter()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def add_sink(self, sink) -> "Tracer":
        self.sinks.append(sink)
        return self

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a self-timing span; use as ``with tracer.span(...) as s:``.

        Spans opened inside a :func:`repro.obs.correlate.bind` context are
        stamped with the bound ``query_id``, so every span of one query is
        joinable across threads (worker-thread spans are roots in their
        thread, but they carry the same id).
        """
        t0 = time.perf_counter()
        query_id = current_query_id()
        if query_id is not None:
            attrs["query_id"] = query_id
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            start_ms=(t0 - self._epoch) * 1000.0,
            attrs=attrs or None,
        )
        self._stack.append(span)
        return _ActiveSpan(self, span, t0)

    def record(self, name: str, duration_ms: float, **attrs) -> Span:
        """Attach an externally timed, already-finished span as a child of
        the current span.  The given duration is stored verbatim."""
        now_ms = (time.perf_counter() - self._epoch) * 1000.0
        query_id = current_query_id()
        if query_id is not None:
            attrs["query_id"] = query_id
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            start_ms=now_ms - duration_ms,
            attrs=attrs or None,
        )
        span.duration_ms = duration_ms
        self._emit(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        # Tolerate out-of-order exits (e.g. a sibling leaked by an
        # exception): pop back to and including this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._emit(span)

    def _emit(self, span: Span) -> None:
        if not self.sinks:
            return
        record = span.to_dict()
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(record)

    def close(self) -> None:
        """Close every sink that supports closing (e.g. JSONL files)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class _NullSpan:
    """Shared do-nothing span: its own context manager, reusable forever."""

    __slots__ = ()

    name = "null"
    span_id = 0
    parent_id = None
    depth = 0
    start_ms = 0.0
    duration_ms = 0.0
    attrs: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """No-op tracer: no clock reads, no allocations, no sink traffic."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def record(self, name: str, duration_ms: float, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


#: Shared no-op tracer used wherever observability is disabled.
NULL_TRACER = NullTracer()
