"""Human-readable summary of a metrics snapshot (``--obs-report``).

Renders the registry populated by an instrumented run -- or a saved
``metrics.json`` -- as the tables an experimenter actually wants to read:
queries per method, cache hit rate per strategy, the stable/unstable and
case a-d breakdowns, I/O totals, and p50/p95 stage latencies.

Pointed at a whole ``--obs`` output *directory*, it renders every artifact
it finds -- ``metrics.json``, the ``health.jsonl`` flight recorder,
``cache.json`` introspection, ``trace.jsonl``, ``profile.collapsed`` --
and warns (instead of failing) about the ones a partial or interrupted run
did not produce.

Usage::

    python -m repro.obs.report out/metrics.json
    python -m repro.obs.report out/            # whole obs directory
    python -m repro.bench --obs out --obs-report fig5a
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

from repro.bench.reporting import format_table
from repro.obs.schema import check_version, check_versions

Labeled = List[Tuple[Dict[str, str], Dict[str, float]]]


def _snapshot(metrics) -> dict:
    """Accept a MetricsRegistry, an ``as_dict()`` snapshot, or a JSON path."""
    if hasattr(metrics, "as_dict"):
        return metrics.as_dict()
    if isinstance(metrics, (str, bytes)) or hasattr(metrics, "read_text"):
        with open(metrics) as handle:
            return json.load(handle)
    return metrics


def _series(snapshot: dict, kind: str, name: str) -> Labeled:
    """All records of one metric, as ``(labels, record)`` pairs."""
    return [
        (rec.get("labels", {}), rec)
        for rec in snapshot.get(kind, [])
        if rec.get("name") == name
    ]


def _counter_map(snapshot: dict, name: str) -> Dict[tuple, float]:
    """Counter series keyed by sorted label items."""
    return {
        tuple(sorted(labels.items())): rec["value"]
        for labels, rec in _series(snapshot, "counters", name)
    }


def _label_values(records: Labeled, key: str) -> List[str]:
    seen: List[str] = []
    for labels, _ in records:
        value = labels.get(key, "")
        if value not in seen:
            seen.append(value)
    return seen


def render_report(metrics) -> str:
    """Render the per-run observability summary as aligned text tables."""
    snap = _snapshot(metrics)
    sections: List[str] = []

    queries = _series(snap, "counters", "queries_total")
    if queries:
        io_names = ("points_read", "pages_read", "seeks", "range_queries")
        io_maps = {n: _counter_map(snap, f"{n}_total") for n in io_names}
        rows = []
        for labels, rec in queries:
            method = labels.get("method", "?")
            key = (("method", method),)
            n = rec["value"]
            row = [method, int(n)]
            for name in io_names:
                total = io_maps[name].get(key, 0.0)
                row.append(total / n if n else float("nan"))
            rows.append(row)
        sections.append(
            format_table(
                ["method", "queries", "points/q", "pages/q", "seeks/q", "rq/q"],
                rows,
                title="Queries and I/O per method",
            )
        )

    lookups = _series(snap, "counters", "cache_lookups_total")
    if lookups:
        per_strategy: Dict[str, Dict[str, float]] = {}
        for labels, rec in lookups:
            entry = per_strategy.setdefault(
                labels.get("strategy", "?"), {"hit": 0.0, "miss": 0.0}
            )
            entry[labels.get("outcome", "miss")] = rec["value"]
        rows = []
        for strategy, entry in sorted(per_strategy.items()):
            total = entry["hit"] + entry["miss"]
            rate = entry["hit"] / total if total else float("nan")
            rows.append(
                [strategy, int(entry["hit"]), int(entry["miss"]), f"{rate:.1%}"]
            )
        sections.append(
            format_table(
                ["strategy", "hits", "misses", "hit rate"],
                rows,
                title="Cache lookups per strategy",
            )
        )

    stability = _series(snap, "counters", "query_stability_total")
    if stability:
        per_method: Dict[str, Dict[str, float]] = {}
        for labels, rec in stability:
            entry = per_method.setdefault(
                labels.get("method", "?"), {"stable": 0.0, "unstable": 0.0}
            )
            entry[labels.get("stable", "unstable")] = rec["value"]
        rows = []
        for method, entry in sorted(per_method.items()):
            total = entry["stable"] + entry["unstable"]
            share = entry["stable"] / total if total else float("nan")
            rows.append(
                [method, int(entry["stable"]), int(entry["unstable"]), f"{share:.1%}"]
            )
        sections.append(
            format_table(
                ["method", "stable", "unstable", "stable share"],
                rows,
                title="Stability of cache-hit queries",
            )
        )

    cases = _series(snap, "counters", "query_case_total")
    if cases:
        case_names = sorted(_label_values(cases, "case"))
        per_method = {}
        for labels, rec in cases:
            per_method.setdefault(labels.get("method", "?"), {})[
                labels.get("case", "?")
            ] = rec["value"]
        rows = [
            [method] + [int(entry.get(c, 0)) for c in case_names]
            for method, entry in sorted(per_method.items())
        ]
        sections.append(
            format_table(
                ["method"] + case_names, rows, title="Query case breakdown"
            )
        )

    stages = _series(snap, "histograms", "stage_ms")
    if stages:
        rows = []
        for labels, rec in stages:
            if not rec.get("count"):
                continue
            rows.append(
                [
                    labels.get("method", "?"),
                    labels.get("stage", "?"),
                    int(rec["count"]),
                    rec.get("mean", float("nan")),
                    rec.get("p50", float("nan")),
                    rec.get("p95", float("nan")),
                ]
            )
        if rows:
            sections.append(
                format_table(
                    ["method", "stage", "count", "mean ms", "p50 ms", "p95 ms"],
                    rows,
                    title="Stage latencies",
                )
            )

    rects = _series(snap, "histograms", "mpr_rectangles_per_query")
    if rects:
        rows = [
            [
                labels.get("region", "") or "-",
                int(rec.get("count", 0)),
                rec.get("mean", float("nan")),
                rec.get("p50", float("nan")),
                rec.get("p95", float("nan")),
                rec.get("max", float("nan")),
            ]
            for labels, rec in rects
        ]
        sections.append(
            format_table(
                ["region", "computations", "mean boxes", "p50", "p95", "max"],
                rows,
                title="MPR rectangles per computation",
            )
        )

    plan_cases = _series(snap, "counters", "plan_case_predictions_total")
    if plan_cases:
        rows = []
        for counter, label in (
            ("plan_case_predictions_total", "case"),
            ("plan_range_query_predictions_total", "range queries"),
        ):
            by_outcome = {"correct": 0.0, "wrong": 0.0}
            for labels, rec in _series(snap, "counters", counter):
                by_outcome[labels.get("outcome", "wrong")] = rec["value"]
            total = by_outcome["correct"] + by_outcome["wrong"]
            accuracy = by_outcome["correct"] / total if total else float("nan")
            rows.append(
                [
                    label,
                    int(by_outcome["correct"]),
                    int(by_outcome["wrong"]),
                    f"{accuracy:.1%}",
                ]
            )
        for labels, rec in _series(snap, "histograms", "plan_points_rel_error"):
            if rec.get("count"):
                rows.append(
                    [
                        "points rel error",
                        int(rec["count"]),
                        "-",
                        f"mean {rec.get('mean', float('nan')):.3f} "
                        f"p95 {rec.get('p95', float('nan')):.3f}",
                    ]
                )
        sections.append(
            format_table(
                ["prediction", "correct", "wrong", "accuracy"],
                rows,
                title="Plan accuracy (explain vs execute)",
            )
        )

    cache_rows = []
    for name in (
        "cache_insertions_total",
        "cache_evictions_total",
        "cache_refreshes_total",
        "cache_quarantined_total",
    ):
        for labels, rec in _series(snap, "counters", name):
            label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            cache_rows.append([name, label or "-", int(rec["value"])])
    if cache_rows:
        sections.append(
            format_table(
                ["counter", "labels", "value"], cache_rows, title="Cache churn"
            )
        )

    resilience_rows = []
    for labels, rec in _series(snap, "counters", "faults_injected_total"):
        resilience_rows.append(
            [
                "faults injected",
                f"kind={labels.get('kind', '?')},op={labels.get('op', '?')}",
                int(rec["value"]),
            ]
        )
    for labels, rec in _series(snap, "counters", "storage_retries_total"):
        resilience_rows.append(
            ["storage retries", f"op={labels.get('op', '?')}", int(rec["value"])]
        )
    for labels, rec in _series(snap, "counters", "degraded_queries_total"):
        resilience_rows.append(
            [
                "degraded queries",
                f"method={labels.get('method', '?')},"
                f"rung={labels.get('rung', '?')}",
                int(rec["value"]),
            ]
        )
    for labels, rec in _series(snap, "counters", "stale_serves_total"):
        resilience_rows.append(
            [
                "stale serves",
                f"method={labels.get('method', '?')}",
                int(rec["value"]),
            ]
        )
    for labels, rec in _series(snap, "counters", "breaker_transitions_total"):
        resilience_rows.append(
            [
                "breaker transitions",
                f"{labels.get('from_state', '?')}->{labels.get('to_state', '?')}",
                int(rec["value"]),
            ]
        )
    if resilience_rows:
        sections.append(
            format_table(
                ["counter", "labels", "value"],
                resilience_rows,
                title="Resilience (faults, retries, degradation)",
            )
        )

    calibration = _series(snap, "gauges", "calibration_mare")
    if calibration:
        rows = [
            [labels.get("stage", "?"), f"{rec['value']:.3f}"]
            for labels, rec in sorted(
                calibration, key=lambda lr: lr[0].get("stage", "")
            )
        ]
        for labels, rec in _series(snap, "gauges", "calibration_queries"):
            rows.append(["(queries calibrated)", int(rec["value"])])
        sections.append(
            format_table(
                ["stage", "MARE"],
                rows,
                title="Cost-model calibration (predicted vs actual)",
            )
        )

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def _read_jsonl(path: Path) -> List[dict]:
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_health_section(records: List[dict]) -> str:
    """Render the last flight-recorder snapshot plus the verdict history."""
    if not records:
        return "# health\n(no snapshots recorded)"
    last = records[-1]
    window = last.get("window") or {}
    statuses: Dict[str, int] = {}
    for rec in records:
        status = str(rec.get("status", "?"))
        statuses[status] = statuses.get(status, 0) + 1
    history = ", ".join(f"{k}: {v}" for k, v in sorted(statuses.items()))
    lines = [
        "# health",
        f"last status: {last.get('status', '?')}"
        + (f" ({'; '.join(last['reasons'])})" if last.get("reasons") else ""),
        f"snapshots: {len(records)} ({history})",
        f"window: qps={window.get('qps', '-')} p50={window.get('p50_ms', '-')}ms "
        f"p95={window.get('p95_ms', '-')}ms p99={window.get('p99_ms', '-')}ms "
        f"hit={window.get('cache_hit_ratio', '-')} "
        f"degraded={window.get('degraded_rate', '-')} "
        f"errors={window.get('errors', '-')}",
    ]
    return "\n".join(lines)


def render_obs_dir(directory) -> Tuple[str, List[str], int]:
    """Render every artifact in an ``--obs`` directory.

    Returns ``(text, warnings, rendered_count)``.  Missing or unreadable
    artifacts produce warnings, never exceptions: a partial directory (an
    interrupted run, a run without ``--trace`` or ``--profile``) still
    yields a report from whatever is there.
    """
    directory = Path(directory)
    sections: List[str] = []
    warnings: List[str] = []

    def missing(name: str, why: str = "missing") -> None:
        warnings.append(f"warning: {directory / name}: {why}")

    def version_warning(record, name: str) -> None:
        warning = check_version(record, str(directory / name))
        if warning is not None:
            warnings.append(f"warning: {warning}")

    metrics_path = directory / "metrics.json"
    if metrics_path.is_file():
        try:
            with open(metrics_path) as handle:
                snap = json.load(handle)
            version_warning(snap, "metrics.json")
            sections.append(render_report(snap))
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            missing("metrics.json", f"unreadable ({exc})")
    else:
        missing("metrics.json")

    health_path = directory / "health.jsonl"
    if health_path.is_file():
        try:
            records = _read_jsonl(health_path)
            for warning in check_versions(records, str(health_path)):
                warnings.append(f"warning: {warning}")
            sections.append(render_health_section(records))
        except (OSError, json.JSONDecodeError) as exc:
            missing("health.jsonl", f"unreadable ({exc})")

    cache_path = directory / "cache.json"
    if cache_path.is_file():
        try:
            from repro.obs.cacheview import render_cacheview

            with open(cache_path) as handle:
                cache_snap = json.load(handle)
            version_warning(cache_snap, "cache.json")
            sections.append(render_cacheview(cache_snap))
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            missing("cache.json", f"unreadable ({exc})")

    try:
        from repro.obs.explain import summarize_obs_dir

        explain_text, explain_warnings = summarize_obs_dir(directory)
        warnings.extend(explain_warnings)
        if explain_text is not None:
            sections.append(explain_text)
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        missing("explain.jsonl", f"unreadable ({exc})")

    calibration_path = directory / "calibration.json"
    if calibration_path.is_file():
        try:
            from repro.obs.calibration import render_calibration

            with open(calibration_path) as handle:
                summary = json.load(handle)
            version_warning(summary, "calibration.json")
            sections.append(render_calibration(summary))
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            missing("calibration.json", f"unreadable ({exc})")

    trace_path = directory / "trace.jsonl"
    if trace_path.is_file():
        try:
            spans = _read_jsonl(trace_path)
            names: Dict[str, int] = {}
            correlated = 0
            for span in spans:
                names[str(span.get("name", "?"))] = (
                    names.get(str(span.get("name", "?")), 0) + 1
                )
                if (span.get("attrs") or {}).get("query_id"):
                    correlated += 1
            top = ", ".join(
                f"{n}: {c}"
                for n, c in sorted(names.items(), key=lambda kv: -kv[1])[:6]
            )
            sections.append(
                "# trace\n"
                f"spans: {len(spans)} ({correlated} carrying a query_id)\n"
                f"top names: {top or '-'}"
            )
        except (OSError, json.JSONDecodeError) as exc:
            missing("trace.jsonl", f"unreadable ({exc})")
    else:
        missing("trace.jsonl")

    if not (directory / "metrics.prom").is_file():
        missing("metrics.prom")

    collapsed = directory / "profile.collapsed"
    if collapsed.is_file():
        try:
            lines = [
                ln for ln in collapsed.read_text().splitlines() if ln.strip()
            ]
            sections.append(f"# profile\ncollapsed stacks: {len(lines)} frames")
        except OSError as exc:
            missing("profile.collapsed", f"unreadable ({exc})")

    return "\n\n".join(sections), warnings, len(sections)


def main(argv=None) -> int:
    """CLI: ``python -m repro.obs.report METRICS_JSON_OR_OBS_DIR``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Render the observability artifacts of an instrumented run: "
            "a metrics.json snapshot, or a whole --obs output directory."
        ),
    )
    parser.add_argument(
        "target", metavar="METRICS_JSON_OR_OBS_DIR",
        help="path to a metrics.json snapshot or an --obs directory",
    )
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    target = Path(opts.target)
    if target.is_dir():
        text, warnings, rendered = render_obs_dir(target)
        for warning in warnings:
            print(warning, file=sys.stderr)
        if rendered == 0:
            print(f"no readable observability artifacts in {target}")
            return 2
        print(text)
        return 0
    try:
        with open(target) as handle:
            snap = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read metrics snapshot {target}: {exc}")
        return 2
    warning = check_version(snap, str(target))
    if warning is not None:
        print(f"warning: {warning}", file=sys.stderr)
    print(render_report(snap))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
