"""A small concurrent serving front for the CBCS engine.

:class:`QueryService` accepts Sky(S, C') requests from many clients at
once, answering them on a bounded worker pool against **one shared
engine** -- one skyline cache, one storage backend, one set of metrics.
This is the layer a driver program talks to; the engine itself stays a
single-query object.

Thread-safety contract: the engine's shared state is individually locked
(cache R*-tree and items, table stats, fault injector, retry budget,
breaker), so concurrent queries are safe and every *answer* is correct.
Per-query I/O attribution (``QueryOutcome.io``) is taken from deltas of the
table's global counters and may therefore include a concurrent neighbour's
reads; the aggregate counters remain exact.  Single-query runs are
unaffected.

Live observability: the service maintains a
:class:`~repro.obs.window.RollingWindow` of recent outcomes and a
:class:`~repro.obs.health.HealthMonitor` judging it against an
:class:`~repro.obs.health.SLOSpec`, so :meth:`QueryService.health` answers
"is the service meeting its objectives right now, and why not?" at any
moment.  When the engine's observability is enabled, every request is also
assigned a ``query_id`` at ingress, correlating its trace spans, outcome
record, and metric exemplars end-to-end.

Example::

    with QueryService(engine, workers=4) as svc:
        report = svc.run(queries)
        print(svc.health().summary())
    print(report.per_worker)   # {'cbcs-svc_0': 13, 'cbcs-svc_1': 12, ...}
"""

from __future__ import annotations

import inspect
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.health import HealthMonitor, HealthReport, SLOSpec
from repro.obs.window import RollingWindow

__all__ = ["QueryService", "ServiceReport"]


@dataclass
class ServiceReport:
    """Outcome of one batch served concurrently.

    ``outcomes`` is ordered like the submitted queries (None where that
    query raised); ``errors`` pairs each failed query's index with the
    exception; ``per_worker`` counts answered queries by worker-thread
    name, showing how the batch spread over the pool.
    """

    outcomes: List[Optional[object]] = field(default_factory=list)
    errors: List[Tuple[int, Exception]] = field(default_factory=list)
    per_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def answered(self) -> int:
        return sum(1 for o in self.outcomes if o is not None)

    def summary(self) -> str:
        lanes = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.per_worker.items())
        )
        return (
            f"{self.answered}/{len(self.outcomes)} answered, "
            f"{len(self.errors)} errors; per worker: {lanes or 'none'}"
        )


class QueryService:
    """Serve constrained skyline queries concurrently from one engine.

    ``workers`` bounds the number of in-flight queries (independent of the
    engine's own fetch parallelism -- a 4-worker service over a 4-worker
    engine can have 16 range queries in flight).  The pool is created
    lazily and shut down by :meth:`close` / the context manager.
    """

    def __init__(
        self,
        engine,
        workers: int = 4,
        slo: Optional[SLOSpec] = None,
        window_s: float = 60.0,
    ):
        """``slo`` tunes the health verdict (defaults to
        :class:`~repro.obs.health.SLOSpec`'s budgets); ``window_s`` sizes
        the rolling window :meth:`health` judges."""
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._per_worker: Dict[str, int] = {}
        # Engines other than CBCS (Baseline, BBS) have no query_id kwarg,
        # no resilience, and no cache; probe once instead of per request.
        self._accepts_query_id = (
            "query_id" in inspect.signature(engine.query).parameters
        )
        obs = getattr(engine, "obs", None)
        self._obs = obs if obs is not None and obs.enabled else None
        resilience = getattr(engine, "resilience", None)
        cache = getattr(engine, "cache", None)
        self.window = RollingWindow(window_s=window_s)
        self.monitor = HealthMonitor(
            self.window,
            slo=slo,
            breaker=getattr(resilience, "breaker", None),
            quarantined=(
                (lambda: cache.quarantined) if cache is not None else None
            ),
            metrics=self._obs.metrics if self._obs is not None else None,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, constraints) -> Future:
        """Enqueue one query; returns a Future of its ``QueryOutcome``."""
        return self._ensure_pool().submit(self._answer, constraints)

    def run(self, queries) -> ServiceReport:
        """Answer a batch concurrently; returns an ordered report.

        Results come back in submission order regardless of completion
        order.  A query that raises (e.g. storage faults with resilience
        off) is reported in ``errors`` instead of aborting the batch.
        """
        baseline = self.per_worker
        futures = [self.submit(c) for c in queries]
        report = ServiceReport()
        for i, future in enumerate(futures):
            try:
                report.outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                report.outcomes.append(None)
                report.errors.append((i, exc))
        report.per_worker = {
            name: count - baseline.get(name, 0)
            for name, count in self.per_worker.items()
            if count - baseline.get(name, 0)
        }
        return report

    def _answer(self, constraints):
        try:
            if self._obs is not None and self._accepts_query_id:
                outcome = self.engine.query(
                    constraints, query_id=self._obs.correlation.new_id()
                )
            else:
                outcome = self.engine.query(constraints)
        except Exception:
            self.window.record_error()
            raise
        self.window.record(
            total_ms=outcome.total_ms,
            cache_hit=outcome.cache_hit,
            degraded=outcome.degraded,
            stale=outcome.stale,
        )
        worker = threading.current_thread().name
        with self._lock:
            self._per_worker[worker] = self._per_worker.get(worker, 0) + 1
        return outcome

    def health(self) -> HealthReport:
        """Judge the current rolling window against the configured SLO."""
        return self.monitor.report()

    @property
    def per_worker(self) -> Dict[str, int]:
        """Lifetime answered-query counts by worker-thread name."""
        with self._lock:
            return dict(self._per_worker)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="cbcs-svc"
                )
            return self._pool

    def close(self) -> None:
        """Drain in-flight queries and shut the pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"QueryService(engine={self.engine!r}, workers={self.workers})"
