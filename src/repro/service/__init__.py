"""Overload-safe concurrent serving for the CBCS engine.

:class:`QueryService` accepts Sky(S, C') requests from many clients at
once and answers them against **one shared engine** -- one skyline cache,
one storage backend, one set of metrics.  Since PR 9 the service is no
longer a plain bounded pool: requests pass through a bounded *priority
ingress queue* with explicit backpressure, *admission control* that sheds
load by priority class under overload, *in-flight deduplication* and
*subsumption coalescing* (identical or pure-shrink regions share one
execution, answered via the paper's case analysis), and optional
*per-request deadlines* that propagate into the engine's retry/degradation
machinery.  Every submitted request terminates explicitly: answered, a
typed :class:`RequestRejected`, or a reported error -- never a silent
drop, never an unbounded wait.

The package splits by stage:

- :mod:`repro.service.queue` -- the bounded priority ingress queue;
- :mod:`repro.service.admission` -- shedding policy and controller;
- :mod:`repro.service.coalesce` -- the in-flight table and the exactness
  condition for piggybacking (generalized Theorem 3);
- :mod:`repro.service.service` -- the :class:`QueryService` orchestrating
  them, plus :class:`ServiceReport`.

Thread-safety contract: the engine's shared state is individually locked
(cache R*-tree and items, table stats, fault injector, retry budget,
breaker), so concurrent queries are safe and every *answer* is correct.
Per-query I/O attribution (``QueryOutcome.io``) is taken from deltas of the
table's global counters and may therefore include a concurrent neighbour's
reads; the aggregate counters remain exact.  Single-query runs are
unaffected.

Live observability: the service maintains a
:class:`~repro.obs.window.RollingWindow` of recent outcomes and a
:class:`~repro.obs.health.HealthMonitor` judging it against an
:class:`~repro.obs.health.SLOSpec`; :meth:`QueryService.health` also
carries the ingress stats (queue depth, in-flight count, shed/rejected
totals) so overload classifies as ``degraded`` with a reason.  When the
engine's observability is enabled, every request -- including shed and
coalesced ones -- is assigned a ``query_id`` at ingress, and coalesced
outcomes name their executing query in ``served_by``.

Example::

    with QueryService(engine, workers=4) as svc:
        future = svc.submit(c, priority="interactive", deadline_ms=250.0)
        report = svc.run(queries)
        print(svc.health().summary())
    print(report.per_worker)   # {'cbcs-svc_0': 13, 'cbcs-svc_1': 12, ...}
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.coalesce import (
    KIND_DEDUP,
    KIND_SUBSUMED,
    InFlightTable,
    can_coalesce,
)
from repro.service.queue import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    IngressQueue,
    QueueStats,
)
from repro.service.service import (
    STATUS_ANSWERED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_REJECTED_QUEUE_FULL,
    STATUS_SHED,
    QueryService,
    RequestRejected,
    ServiceReport,
)

__all__ = [
    "QueryService",
    "ServiceReport",
    "RequestRejected",
    "AdmissionPolicy",
    "AdmissionController",
    "IngressQueue",
    "QueueStats",
    "InFlightTable",
    "can_coalesce",
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "KIND_DEDUP",
    "KIND_SUBSUMED",
    "STATUS_ANSWERED",
    "STATUS_REJECTED_QUEUE_FULL",
    "STATUS_SHED",
    "STATUS_DEADLINE_EXCEEDED",
]
