"""Bounded priority ingress queue with explicit backpressure.

The queue in front of :class:`~repro.service.service.QueryService` is the
overload boundary: it has a hard capacity, enqueueing *never blocks* (a
full queue is reported to the caller as a typed ``rejected_queue_full``
outcome, not an unbounded wait), and requests drain in priority order --
``interactive`` before ``normal`` before ``batch``, FIFO within a class.

This mirrors PartitionCache's two-tier ``queue_handler`` split between
accepting work and executing it: producers only ever pay an O(log n) heap
push under a lock, and the service's worker threads block on the consumer
side where blocking is cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PRIORITIES",
    "PRIORITY_RANK",
    "DEFAULT_PRIORITY",
    "IngressQueue",
    "QueueStats",
]

#: Priority classes, highest first.  Shedding drops the back of this list
#: first; the queue drains the front of it first.
PRIORITIES: Tuple[str, ...] = ("interactive", "normal", "batch")
PRIORITY_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(PRIORITIES)}
DEFAULT_PRIORITY = "normal"


def priority_rank(priority: str) -> int:
    """Validate a priority-class name and return its drain rank."""
    try:
        return PRIORITY_RANK[priority]
    except KeyError:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}"
        ) from None


@dataclass
class QueueStats:
    """Monotonic counters describing one queue's lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    rejected_full: int = 0
    high_watermark: int = 0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "rejected_full": self.rejected_full,
            "high_watermark": self.high_watermark,
        }


@dataclass(order=True)
class _HeapItem:
    rank: int
    seq: int
    item: object = field(compare=False)


class IngressQueue:
    """A bounded, priority-ordered, close-drainable MPMC queue.

    - :meth:`try_put` is non-blocking: it returns False when the queue is
      at capacity (the caller turns that into a typed rejection).
    - :meth:`get` blocks until an item is available or the queue is closed
      *and* drained, then returns None -- the consumer's exit signal.
    - ``force=True`` puts bypass the capacity bound and the closed flag;
      they exist for re-dispatching already-admitted work (coalesced
      followers falling back to their own execution) which must not be
      re-rejected at the door it already passed through.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = int(capacity)
        self.stats = QueueStats()
        self._heap: List[_HeapItem] = []
        self._seq = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def try_put(self, item, priority: str = DEFAULT_PRIORITY, *, force: bool = False) -> bool:
        """Enqueue without blocking; False when full (or closed) and not
        forced."""
        import heapq

        rank = priority_rank(priority)
        with self._lock:
            if not force and (self._closed or len(self._heap) >= self.capacity):
                self.stats.rejected_full += 1
                return False
            self._seq += 1
            heapq.heappush(self._heap, _HeapItem(rank, self._seq, item))
            self.stats.enqueued += 1
            self.stats.high_watermark = max(
                self.stats.high_watermark, len(self._heap)
            )
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None):
        """Dequeue the highest-priority item, blocking while the queue is
        open and empty.  Returns None once the queue is closed and drained
        (or on timeout)."""
        import heapq

        with self._not_empty:
            while True:
                if self._heap:
                    entry = heapq.heappop(self._heap)
                    self.stats.dequeued += 1
                    return entry.item
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def close(self) -> None:
        """Refuse further (unforced) puts and wake every blocked consumer;
        items already queued still drain."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngressQueue(depth={self.depth}, capacity={self.capacity}, "
            f"closed={self.closed})"
        )
