"""In-flight deduplication and subsumption coalescing.

Two requests for the same constraint region should share one execution;
so should a request whose region is *answerable from* an in-flight
query's result.  The :class:`InFlightTable` tracks every leader request
currently queued or executing and lets later submissions join it as
followers; when the leader finishes, the service derives each follower's
answer from the leader's skyline and resolves its future -- one storage
execution, many answered clients.

**When is piggybacking exact?**  The paper's case analysis (Section 5)
answers this.  For min-skylines, filtering a result Sky(S, C) down to a
smaller region C' is bit-exact iff C' only *shrinks upper bounds*:

    C'.lo == C.lo  (element-wise)   and   C'.hi <= C.hi  (element-wise)

which is the multi-dimensional generalization of Theorem 3 (case b: upper
constraint decreased -> "just filter", no fetch, provably stable).  Plain
region containment is **not** sufficient: raising a lower bound is the
paper's unstable case d -- a point's dominators may lie between the old
and new lower bound, so points absent from Sky(S, C) can *resurface* in
Sky(S, C') and no filter of the parent's answer can produce them.  The
containment predicate below therefore accepts exactly the equal-``lo``,
shrunken-``hi`` geometry and nothing else; everything riskier executes on
its own.

Followers also never inherit a parent's failure or degradation: if the
leader errors, exceeds its deadline, or answers from a non-exact rung
(``stale``/``unavailable``/ladder), every follower falls back to its own
execution via a forced re-enqueue.  Coalescing may only ever substitute a
bit-identical answer.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cases import classify_change
from repro.geometry.constraints import Constraints

__all__ = ["KIND_DEDUP", "KIND_SUBSUMED", "InFlightEntry", "InFlightTable", "can_coalesce"]

#: follower kinds
KIND_DEDUP = "dedup"  # identical constraints
KIND_SUBSUMED = "subsumed"  # pure upper-bound shrink of the leader's region


def can_coalesce(parent: Constraints, child: Constraints) -> bool:
    """True iff ``child``'s exact answer is a pure filter of ``parent``'s.

    Requires ``child.lo == parent.lo`` element-wise and
    ``child.hi <= parent.hi`` element-wise (generalized Theorem 3).  Equal
    constraints qualify too (the filter is the identity); the service
    prefers the cheaper dedup path for those.
    """
    if parent.ndim != child.ndim:
        return False
    return bool(
        np.array_equal(child.lo, parent.lo) and np.all(child.hi <= parent.hi)
    )


def derive_follower_skyline(
    parent: Constraints, child: Constraints, parent_skyline: np.ndarray
) -> np.ndarray:
    """The child's exact skyline, filtered from the parent's answer.

    Only valid when :func:`can_coalesce` holds -- asserted, because a
    wrong coalesce is a silent wrong answer.
    """
    assert can_coalesce(parent, child), "coalescing an unsafe containment"
    return parent_skyline[child.satisfied_mask(parent_skyline)].copy()


def follower_case(parent: Constraints, child: Constraints) -> str:
    """The overlap-case label stamped on a coalesced outcome (``exact``
    for identical constraints, ``case_b``/``general_stable`` for
    upper-bound shrinks)."""
    return classify_change(parent, child)


class InFlightEntry:
    """One leader request plus the followers piggybacking on it."""

    __slots__ = ("leader", "followers", "done")

    def __init__(self, leader):
        self.leader = leader
        self.followers: List[Tuple[object, str]] = []
        self.done = False


class InFlightTable:
    """Registry of queued/executing leader requests, keyed by constraints.

    All transitions run under one lock, so a follower can never attach to
    an entry whose leader has already been finished (the join and the
    finish race is decided atomically; the loser executes on its own).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[object, InFlightEntry] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _find(self, constraints: Constraints) -> Tuple[Optional[InFlightEntry], Optional[str]]:
        entry = self._entries.get(constraints.key())
        if entry is not None and not entry.done:
            return entry, KIND_DEDUP
        for candidate in self._entries.values():
            if candidate.done:
                continue
            if can_coalesce(candidate.leader.constraints, constraints):
                return candidate, KIND_SUBSUMED
        return None, None

    def try_join(self, request) -> Optional[str]:
        """Attach ``request`` as a follower of a compatible in-flight
        leader; returns the follower kind, or None when nothing matches."""
        with self._lock:
            entry, kind = self._find(request.constraints)
            if entry is None:
                return None
            entry.followers.append((request, kind))
            request.entry = entry
            return kind

    def register(self, request) -> Optional[str]:
        """Make ``request`` a leader (returns None), unless a compatible
        leader appeared since the caller's :meth:`try_join` -- then join it
        instead and return the follower kind."""
        with self._lock:
            entry, kind = self._find(request.constraints)
            if entry is not None:
                entry.followers.append((request, kind))
                request.entry = entry
                return kind
            entry = InFlightEntry(request)
            self._entries[request.constraints.key()] = entry
            request.entry = entry
            return None

    def finish(self, request) -> List[Tuple[object, str]]:
        """Retire ``request``'s leadership; returns the followers to
        resolve.  Idempotent and a no-op for non-leaders."""
        entry = getattr(request, "entry", None)
        if entry is None or entry.leader is not request:
            return []
        with self._lock:
            if entry.done:
                return []
            entry.done = True
            key = request.constraints.key()
            if self._entries.get(key) is entry:
                del self._entries[key]
            followers, entry.followers = entry.followers, []
            return followers
