"""Admission control: load shedding by priority class.

The admission controller sits between :meth:`QueryService.submit` and the
ingress queue.  It answers one question per request -- *admit or shed?* --
from two observable overload signals:

- **queue depth**: each priority class owns a fraction of the queue's
  capacity; once depth crosses ``capacity * fraction`` that class is shed.
  With the default fractions, ``batch`` traffic sheds at half a queue,
  ``normal`` near a full one, and ``interactive`` only when the queue is
  genuinely full -- graceful brownout instead of a cliff.
- **observed p99 latency** (optional): when the service's rolling-window
  p99 crosses a per-class threshold, that class is shed even if the queue
  looks short (the queue being short *because* every request is slow is
  still overload).

Shedding is always explicit: a shed request resolves to a typed
``shed`` outcome carrying the reason string, never an exception, never a
silent drop.  Requests that join an in-flight execution (deduplicated or
subsumption-coalesced) bypass admission entirely -- piggybacking costs no
queue slot and no storage work, so coalescing is the overload *remedy*,
not more load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.service.queue import PRIORITIES, priority_rank

__all__ = ["AdmissionPolicy", "AdmissionController"]

#: Default per-class queue-depth shed fractions.  1.0 means "only the hard
#: capacity bound applies" (the queue itself rejects when full).
_DEFAULT_DEPTH_FRACTIONS = {
    "interactive": 1.0,
    "normal": 0.9,
    "batch": 0.5,
}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tunables for admission control; the defaults never shed below a
    90%-full queue, so a service with headroom behaves exactly like the
    pre-admission-control one.

    - ``capacity``: the ingress queue's hard bound.
    - ``depth_shed_fractions``: per-class fraction of ``capacity`` above
      which that class sheds; classes absent from the map use 1.0.
    - ``p99_shed_ms``: optional per-class p99 threshold (milliseconds,
      judged against the service's rolling window); absent classes are
      never latency-shed.
    - ``min_window_queries``: latency-shedding needs at least this many
      recent samples before the p99 is trusted.
    """

    capacity: int = 4096
    depth_shed_fractions: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_DEPTH_FRACTIONS)
    )
    p99_shed_ms: Dict[str, float] = field(default_factory=dict)
    min_window_queries: int = 20

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        for mapping in (self.depth_shed_fractions, self.p99_shed_ms):
            for name in mapping:
                priority_rank(name)  # validates the class name
        for name, frac in self.depth_shed_fractions.items():
            if not 0.0 < frac <= 1.0:
                raise ValueError(
                    f"depth_shed_fractions[{name!r}] must be in (0, 1], got {frac}"
                )

    @property
    def latency_aware(self) -> bool:
        return bool(self.p99_shed_ms)


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` to each submission."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        #: lifetime shed counts by priority class
        self.shed_by_class: Dict[str, int] = {name: 0 for name in PRIORITIES}

    def decide(
        self,
        priority: str,
        queue_depth: int,
        window_snapshot=None,
    ) -> Optional[str]:
        """None to admit, or a human-readable shed reason.

        ``window_snapshot`` is a
        :class:`~repro.obs.window.WindowSnapshot` (or None); it is only
        consulted when the policy has p99 thresholds, so the common
        depth-only configuration never pays for percentile computation.
        """
        policy = self.policy
        frac = policy.depth_shed_fractions.get(priority, 1.0)
        threshold = policy.capacity * frac
        if frac < 1.0 and queue_depth >= threshold:
            self.shed_by_class[priority] += 1
            return (
                f"queue depth {queue_depth} >= {threshold:.0f} "
                f"({frac:.0%} of capacity {policy.capacity}) "
                f"for priority {priority!r}"
            )
        p99_limit = policy.p99_shed_ms.get(priority)
        if (
            p99_limit is not None
            and window_snapshot is not None
            and window_snapshot.queries >= policy.min_window_queries
            and window_snapshot.p99_ms == window_snapshot.p99_ms  # not NaN
            and window_snapshot.p99_ms >= p99_limit
        ):
            self.shed_by_class[priority] += 1
            return (
                f"observed p99 {window_snapshot.p99_ms:.1f}ms >= "
                f"{p99_limit:.1f}ms for priority {priority!r}"
            )
        return None

    @property
    def shed_total(self) -> int:
        return sum(self.shed_by_class.values())
