"""The overload-safe concurrent serving front for the CBCS engine.

Requests flow through four stages, each with an explicit, typed outcome:

1. **Coalesce** (:mod:`repro.service.coalesce`): a request identical to an
   in-flight query joins its execution (*dedup*); one whose region is a
   pure upper-bound shrink of an in-flight region is answered from that
   result via the paper's case analysis (*subsumed*).  Joined requests
   consume no queue slot and no storage work.
2. **Admission** (:mod:`repro.service.admission`): under overload --
   queue depth or observed p99 over the per-priority-class thresholds --
   the request resolves to a typed ``shed`` outcome.
3. **Ingress queue** (:mod:`repro.service.queue`): bounded, priority-
   ordered; a full queue resolves the request to ``rejected_queue_full``
   instead of blocking the caller.
4. **Execution**: a worker thread drains the queue and runs the shared
   engine.  A per-request deadline (armed at submit, so queue wait counts)
   rides into the engine's retry/degradation machinery; an expired
   deadline yields the stale-flagged best answer so far or a typed
   ``deadline_exceeded`` outcome -- never a silent hang.

Accounting closes exactly: every submitted request ends as *answered* (a
:class:`~repro.stats.QueryOutcome`), a typed :class:`RequestRejected`
(``shed`` / ``rejected_queue_full`` / ``deadline_exceeded``), or an error
reported through its future.  Coalesced answers are bit-identical to
standalone execution and carry their own ``query_id`` plus ``served_by``
naming the executing query.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cases import CASE_EXACT
from repro.obs import bind
from repro.obs.health import HealthMonitor, HealthReport, SLOSpec
from repro.obs.window import RollingWindow
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.coalesce import (
    KIND_DEDUP,
    InFlightTable,
    derive_follower_skyline,
    follower_case,
)
from repro.service.queue import DEFAULT_PRIORITY, IngressQueue, priority_rank
from repro.stats import QueryOutcome, StageTimings

__all__ = [
    "QueryService",
    "ServiceReport",
    "RequestRejected",
    "STATUS_ANSWERED",
    "STATUS_REJECTED_QUEUE_FULL",
    "STATUS_SHED",
    "STATUS_DEADLINE_EXCEEDED",
]

#: Typed terminal statuses of a submitted request.
STATUS_ANSWERED = "answered"
STATUS_REJECTED_QUEUE_FULL = "rejected_queue_full"
STATUS_SHED = "shed"
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"

REJECTED_STATUSES = (
    STATUS_REJECTED_QUEUE_FULL,
    STATUS_SHED,
    STATUS_DEADLINE_EXCEEDED,
)


@dataclass
class RequestRejected:
    """A typed non-answer: the request was shed, bounced off a full queue,
    or ran out of deadline.  Carries its own correlation ``query_id`` so
    rejected traffic is first-class in logs and joins."""

    status: str
    priority: str
    reason: str
    query_id: Optional[str] = None

    def as_record(self) -> dict:
        return {
            "query_id": self.query_id,
            "status": self.status,
            "priority": self.priority,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (
            f"RequestRejected(status={self.status!r}, "
            f"priority={self.priority!r}, reason={self.reason!r})"
        )


class _Request:
    """One submitted query riding through the ingress pipeline."""

    __slots__ = (
        "constraints",
        "priority",
        "deadline",
        "future",
        "query_id",
        "entry",
        "submitted_at",
    )

    def __init__(self, constraints, priority, deadline, query_id):
        self.constraints = constraints
        self.priority = priority
        self.deadline = deadline
        self.future: Future = Future()
        self.query_id = query_id
        self.entry = None
        self.submitted_at = time.perf_counter()


@dataclass
class ServiceReport:
    """Outcome of one batch served concurrently.

    ``outcomes`` is ordered like the submitted queries: a
    :class:`~repro.stats.QueryOutcome` when answered, a
    :class:`RequestRejected` when typed-rejected, None where that query
    raised; ``errors`` pairs each failed query's index with the exception;
    ``per_worker`` counts answered queries by worker-thread name, showing
    how the batch spread over the pool.
    """

    outcomes: List[Optional[object]] = field(default_factory=list)
    errors: List[Tuple[int, Exception]] = field(default_factory=list)
    per_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def answered(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if o is not None and getattr(o, "skyline", None) is not None
        )

    @property
    def rejections(self) -> List[RequestRejected]:
        return [o for o in self.outcomes if isinstance(o, RequestRejected)]

    def rejected(self, status: Optional[str] = None) -> int:
        """Count of typed rejections, optionally filtered by status."""
        return sum(
            1 for r in self.rejections if status is None or r.status == status
        )

    @property
    def accounted(self) -> bool:
        """True iff every submission ended somewhere explicit: answered,
        typed-rejected, or a reported error.  (None outcomes are exactly
        the errored indices, so this closes by construction -- kept as an
        executable statement of the no-silent-drops invariant.)"""
        return len(self.outcomes) == (
            self.answered + self.rejected() + len(self.errors)
        )

    def summary(self) -> str:
        lanes = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.per_worker.items())
        )
        rejected = self.rejected()
        rej = f", {rejected} rejected" if rejected else ""
        return (
            f"{self.answered}/{len(self.outcomes)} answered{rej}, "
            f"{len(self.errors)} errors; per worker: {lanes or 'none'}"
        )


class QueryService:
    """Serve constrained skyline queries concurrently from one engine.

    ``workers`` bounds the number of concurrently *executing* queries
    (independent of the engine's own fetch parallelism -- a 4-worker
    service over a 4-worker engine can have 16 range queries in flight).
    Worker threads and the ingress queue are created lazily and shut down
    by :meth:`close` / the context manager.

    ``policy`` (an :class:`~repro.service.admission.AdmissionPolicy`)
    sizes the ingress queue and sets the shedding thresholds; the default
    policy never sheds below a 90%-full 4096-slot queue, so a service with
    headroom behaves exactly like a plain bounded pool.  ``coalesce=False``
    disables in-flight deduplication and subsumption coalescing.
    """

    def __init__(
        self,
        engine,
        workers: int = 4,
        slo: Optional[SLOSpec] = None,
        window_s: float = 60.0,
        policy: Optional[AdmissionPolicy] = None,
        coalesce: bool = True,
    ):
        """``slo`` tunes the health verdict (defaults to
        :class:`~repro.obs.health.SLOSpec`'s budgets); ``window_s`` sizes
        the rolling window :meth:`health` judges."""
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.engine = engine
        self.workers = int(workers)
        self._coalesce_enabled = bool(coalesce)
        self._admission = AdmissionController(policy)
        self._queue: Optional[IngressQueue] = None
        self._threads: List[threading.Thread] = []
        self._inflight = InFlightTable()
        self._lock = threading.Lock()
        self._per_worker: Dict[str, int] = {}
        self._executing = 0
        self._counters: Dict[str, int] = {
            "submitted": 0,
            STATUS_ANSWERED: 0,
            STATUS_REJECTED_QUEUE_FULL: 0,
            STATUS_SHED: 0,
            STATUS_DEADLINE_EXCEEDED: 0,
            "errors": 0,
            "coalesced_dedup": 0,
            "coalesced_subsumed": 0,
        }
        # Engines other than CBCS (Baseline, BBS) have no query_id/deadline
        # kwargs, no resilience, and no cache; probe once, not per request.
        params = inspect.signature(engine.query).parameters
        self._accepts_query_id = "query_id" in params
        self._accepts_deadline = "deadline" in params
        obs = getattr(engine, "obs", None)
        self._obs = obs if obs is not None and obs.enabled else None
        resilience = getattr(engine, "resilience", None)
        # A sharded engine runs one SkylineCache per shard; health and
        # stats() aggregate across the whole fleet of caches, a single-cache
        # engine is the one-element special case.
        shard_caches = getattr(engine, "shard_caches", None)
        self._sharded = callable(shard_caches)
        if self._sharded:
            self._caches = list(shard_caches())
        else:
            cache = getattr(engine, "cache", None)
            self._caches = [cache] if cache is not None else []
        caches = self._caches
        self.window = RollingWindow(window_s=window_s)
        self.monitor = HealthMonitor(
            self.window,
            slo=slo,
            breaker=getattr(resilience, "breaker", None),
            quarantined=(
                (lambda: sum(c.quarantined for c in caches)) if caches else None
            ),
            metrics=self._obs.metrics if self._obs is not None else None,
            service_stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        constraints,
        priority: str = DEFAULT_PRIORITY,
        deadline_ms=None,
    ) -> Future:
        """Enqueue one query; returns a Future of its terminal outcome.

        The future resolves to a :class:`~repro.stats.QueryOutcome` when
        answered or a typed :class:`RequestRejected` when shed, bounced off
        a full queue, or expired past its deadline; it raises only when the
        engine itself raised (e.g. storage faults with resilience off).
        ``deadline_ms`` arms the request's end-to-end budget *now*, so time
        spent queued counts against it.
        """
        priority_rank(priority)  # validate before any side effects
        self._ensure_workers()
        query_id = (
            self._obs.correlation.new_id() if self._obs is not None else None
        )
        req = _Request(
            constraints, priority, Deadline.normalize(deadline_ms), query_id
        )
        with self._lock:
            self._counters["submitted"] += 1
        if self._coalesce_enabled and self._inflight.try_join(req) is not None:
            return req.future
        snapshot = (
            self.window.snapshot()
            if self._admission.policy.latency_aware
            else None
        )
        reason = self._admission.decide(priority, self._queue.depth, snapshot)
        if reason is not None:
            return self._reject(req, STATUS_SHED, reason)
        if self._coalesce_enabled and self._inflight.register(req) is not None:
            return req.future  # raced: a compatible leader appeared; joined it
        if not self._queue.try_put(req, priority):
            for follower, _ in self._inflight.finish(req):
                self._redispatch(follower)
            return self._reject(
                req,
                STATUS_REJECTED_QUEUE_FULL,
                f"ingress queue full ({self._queue.capacity} slots)",
            )
        self._publish_gauges()
        return req.future

    def run(
        self,
        queries,
        priority: str = DEFAULT_PRIORITY,
        deadline_ms=None,
    ) -> ServiceReport:
        """Answer a batch concurrently; returns an ordered report.

        Results come back in submission order regardless of completion
        order.  A query that raises (e.g. storage faults with resilience
        off) is reported in ``errors`` instead of aborting the batch;
        typed rejections appear in ``outcomes`` as
        :class:`RequestRejected`.
        """
        baseline = self.per_worker
        futures = [
            self.submit(c, priority=priority, deadline_ms=deadline_ms)
            for c in queries
        ]
        report = ServiceReport()
        for i, future in enumerate(futures):
            try:
                report.outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                report.outcomes.append(None)
                report.errors.append((i, exc))
        report.per_worker = {
            name: count - baseline.get(name, 0)
            for name, count in self.per_worker.items()
            if count - baseline.get(name, 0)
        }
        return report

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self, queue: IngressQueue) -> None:
        while True:
            req = queue.get()
            if req is None:
                return
            self._serve(req)

    def _serve(self, req: _Request) -> None:
        with self._lock:
            self._executing += 1
        try:
            wait_ms = (time.perf_counter() - req.submitted_at) * 1000.0
            if self._obs is not None:
                self._obs.metrics.observe(
                    "service_queue_wait_ms", wait_ms, priority=req.priority
                )
            if req.deadline is not None and req.deadline.expired:
                self._abandon_followers(req)
                self._reject(
                    req,
                    STATUS_DEADLINE_EXCEEDED,
                    f"deadline of {req.deadline.budget_ms:.1f}ms expired "
                    f"before execution ({wait_ms:.1f}ms of it queued)",
                )
                return
            try:
                outcome = self._execute(req)
            except DeadlineExceeded as exc:
                self._abandon_followers(req)
                self._reject(req, STATUS_DEADLINE_EXCEEDED, str(exc))
                return
            except Exception as exc:  # noqa: BLE001 - typed via the future
                self.window.record_error()
                with self._lock:
                    self._counters["errors"] += 1
                if self._obs is not None:
                    self._obs.metrics.inc(
                        "service_requests_total",
                        status="error",
                        priority=req.priority,
                    )
                self._abandon_followers(req)
                req.future.set_exception(exc)
                return
            self._record_answer(req, outcome)
            self._resolve_followers(req, outcome)
        finally:
            with self._lock:
                self._executing -= 1
            self._publish_gauges()

    def _execute(self, req: _Request):
        kwargs = {}
        if req.query_id is not None and self._accepts_query_id:
            kwargs["query_id"] = req.query_id
        if req.deadline is not None and self._accepts_deadline:
            kwargs["deadline"] = req.deadline
        return self.engine.query(req.constraints, **kwargs)

    def _record_answer(self, req: _Request, outcome) -> None:
        self.window.record(
            total_ms=outcome.total_ms,
            cache_hit=outcome.cache_hit,
            degraded=outcome.degraded,
            stale=outcome.stale,
        )
        worker = threading.current_thread().name
        with self._lock:
            self._per_worker[worker] = self._per_worker.get(worker, 0) + 1
            self._counters[STATUS_ANSWERED] += 1
        if self._obs is not None:
            self._obs.metrics.inc(
                "service_requests_total",
                status=STATUS_ANSWERED,
                priority=req.priority,
            )
        req.future.set_result(outcome)

    # ------------------------------------------------------------------
    # Followers (dedup / subsumption coalescing)
    # ------------------------------------------------------------------
    def _resolve_followers(self, req: _Request, outcome) -> None:
        if not self._coalesce_enabled:
            return
        followers = self._inflight.finish(req)
        if not followers:
            return
        # Only a clean exact answer may be shared; a degraded, stale, or
        # unavailable parent would hand followers a flagged/partial answer
        # their own execution might beat -- they fall back instead.
        shareable = outcome.degraded is None and not outcome.stale
        for follower, kind in followers:
            if shareable:
                self._resolve_follower(follower, kind, req, outcome)
            else:
                self._redispatch(follower)

    def _abandon_followers(self, req: _Request) -> None:
        """The leader failed or timed out: its followers must not inherit
        that -- each falls back to its own execution."""
        if not self._coalesce_enabled:
            return
        for follower, _ in self._inflight.finish(req):
            self._redispatch(follower)

    def _resolve_follower(self, follower, kind, leader: _Request, outcome) -> None:
        if kind == KIND_DEDUP:
            skyline = outcome.skyline.copy()
            case = CASE_EXACT
        else:
            skyline = derive_follower_skyline(
                leader.constraints, follower.constraints, outcome.skyline
            )
            case = follower_case(leader.constraints, follower.constraints)
        child = QueryOutcome(
            skyline=skyline,
            method=outcome.method,
            timings=StageTimings(),
            case=case,
            stable=True,
            cache_hit=True,
            query_id=follower.query_id,
            served_by=outcome.query_id or leader.query_id,
        )
        with self._lock:
            self._counters[f"coalesced_{kind}"] += 1
        if self._obs is not None:
            self._obs.metrics.inc("service_coalesced_total", kind=kind)
            with bind(follower.query_id):
                # A zero-duration event span joins the piggybacked request
                # to its own query_id; correlation follows `served_by` from
                # the outcome record to the executing query's spans.
                self._obs.tracer.record(
                    "service.coalesced", 0.0, kind=kind, served_by=child.served_by
                )
            self._obs.record_outcome(child)
        self._record_answer(follower, child)

    def _redispatch(self, req: _Request) -> None:
        """Force-requeue an already-admitted follower for its own
        execution (it may instead join another live leader)."""
        req.entry = None
        if self._coalesce_enabled and self._inflight.register(req) is not None:
            return
        queue = self._queue
        if queue is not None:
            queue.try_put(req, req.priority, force=True)

    # ------------------------------------------------------------------
    # Typed rejections + stats
    # ------------------------------------------------------------------
    def _reject(self, req: _Request, status: str, reason: str) -> Future:
        with self._lock:
            self._counters[status] += 1
        if self._obs is not None:
            self._obs.metrics.inc(
                "service_requests_total", status=status, priority=req.priority
            )
            with bind(req.query_id):
                self._obs.tracer.record(
                    "service.rejected", 0.0, status=status, priority=req.priority
                )
        req.future.set_result(
            RequestRejected(
                status=status,
                priority=req.priority,
                reason=reason,
                query_id=req.query_id,
            )
        )
        return req.future

    def _publish_gauges(self) -> None:
        if self._obs is None:
            return
        queue = self._queue
        with self._lock:
            executing = self._executing
        self._obs.metrics.set_gauge(
            "service_queue_depth", float(queue.depth if queue is not None else 0)
        )
        self._obs.metrics.set_gauge("service_executing", float(executing))

    def stats(self) -> dict:
        """A consistent snapshot of the ingress pipeline: queue depth and
        capacity, executing/in-flight counts, and the typed-outcome
        counters.  This feeds ``health()`` and the ``--watch`` dashboard."""
        with self._lock:
            counters = dict(self._counters)
            executing = self._executing
        queue = self._queue
        return {
            "queue_depth": queue.depth if queue is not None else 0,
            "queue_capacity": self._admission.policy.capacity,
            "queue_high_watermark": (
                queue.stats.high_watermark if queue is not None else 0
            ),
            "executing": executing,
            "in_flight": len(self._inflight),
            "shed_by_class": dict(self._admission.shed_by_class),
            "coalesced": counters["coalesced_dedup"]
            + counters["coalesced_subsumed"],
            **counters,
            "cache": self._cache_stats(),
        }

    def _cache_stats(self) -> Optional[dict]:
        """Fleet cache totals (plus per-shard breakdown when sharded).

        ``hit_rate`` is total hits over total lookups across every cache --
        the number a mean of per-shard rates would misreport under skewed
        tenant traffic.  None when the engine has no cache (Baseline/BBS).
        """
        if not self._caches:
            return None
        stats = [cache.stats() for cache in self._caches]
        hits = sum(s.get("hits", 0) for s in stats)
        lookups = hits + sum(s.get("misses", 0) for s in stats)
        fleet = {
            "caches": len(stats),
            "items": sum(s.get("items", 0) for s in stats),
            "hits": hits,
            "misses": lookups - hits,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "insertions": sum(s.get("insertions", 0) for s in stats),
            "evictions": sum(s.get("evictions", 0) for s in stats),
            "quarantined": sum(s.get("quarantined", 0) for s in stats),
        }
        if self._sharded:
            fleet["per_shard"] = [
                {
                    "shard_id": shard_id,
                    "items": s.get("items", 0),
                    "hit_rate": s.get("hit_rate", 0.0),
                    "insertions": s.get("insertions", 0),
                    "evictions": s.get("evictions", 0),
                    "quarantined": s.get("quarantined", 0),
                }
                for shard_id, s in enumerate(stats)
            ]
        return fleet

    def health(self) -> HealthReport:
        """Judge the current rolling window against the configured SLO."""
        return self.monitor.report()

    @property
    def per_worker(self) -> Dict[str, int]:
        """Lifetime answered-query counts by worker-thread name."""
        with self._lock:
            return dict(self._per_worker)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_workers(self) -> IngressQueue:
        with self._lock:
            if self._queue is None:
                self._queue = IngressQueue(self._admission.policy.capacity)
                self._inflight = InFlightTable()
                self._threads = [
                    threading.Thread(
                        target=self._worker_loop,
                        args=(self._queue,),
                        name=f"cbcs-svc_{i}",
                        daemon=True,
                    )
                    for i in range(self.workers)
                ]
                for thread in self._threads:
                    thread.start()
            return self._queue

    def close(self) -> None:
        """Drain queued and in-flight requests, then stop the workers
        (idempotent; the queue and workers lazily recreate on the next
        submit)."""
        with self._lock:
            queue = self._queue
            threads = list(self._threads)
        if queue is None:
            return
        queue.close()
        for thread in threads:
            thread.join()
        with self._lock:
            if self._queue is queue:
                self._queue = None
                self._threads = []

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"QueryService(engine={self.engine!r}, workers={self.workers})"
