"""repro -- reproduction of "Efficient caching for constrained skyline
queries" (Mortensen, Chester, Assent, Magnani; EDBT 2015).

The library answers constrained skyline queries over a simulated
disk-resident table, reusing an in-memory cache of earlier results via the
paper's Missing Points Region machinery.

Quickstart::

    import numpy as np
    from repro import CBCS, Constraints, DiskTable
    from repro.data import generate

    data = generate("independent", 100_000, 4, seed=0)
    engine = CBCS(DiskTable(data))
    first = engine.query(Constraints([0.2] * 4, [0.8] * 4))
    # a refined query reuses the cached result and reads far fewer points:
    second = engine.query(Constraints([0.2] * 4, [0.8, 0.8, 0.8, 0.85]))

See README.md for the architecture overview, DESIGN.md for the
paper-to-module map, and ``examples/`` for runnable scenarios.
"""

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cache import CacheItem, SkylineCache
from repro.core.cbcs import CBCS
from repro.core.dynamic import DynamicCBCS
from repro.core.multi import MultiItemMPR
from repro.core.mpr import MPRResult, compute_mpr
from repro.core.strategies import (
    CostBased,
    MaxOverlap,
    MaxOverlapSP,
    OptimumDistance,
    Prioritized1D,
    PrioritizedND,
    RandomStrategy,
    default_strategy_suite,
)
from repro.geometry.box import Box
from repro.geometry.constraints import Constraints
from repro.geometry.interval import Interval
from repro.skyline.baseline import BaselineMethod
from repro.skyline.bbs import BBSMethod, BBSScan, bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.cardinality import expected_skyline_size
from repro.skyline.dandc import dandc_skyline
from repro.skyline.nn_method import NNMethod, nn_constrained_skyline
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, StageTimings
from repro.storage.costmodel import DiskCostModel
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "ApproximateMPR",
    "BBSMethod",
    "BBSScan",
    "BaselineMethod",
    "Box",
    "CBCS",
    "CacheItem",
    "Constraints",
    "CostBased",
    "DiskCostModel",
    "DiskTable",
    "DynamicCBCS",
    "ExactMPR",
    "Interval",
    "MPRResult",
    "MaxOverlap",
    "MaxOverlapSP",
    "MultiItemMPR",
    "NNMethod",
    "OptimumDistance",
    "Prioritized1D",
    "PrioritizedND",
    "QueryOutcome",
    "RandomStrategy",
    "SkylineCache",
    "StageTimings",
    "WorkloadGenerator",
    "bbs_skyline",
    "bnl_skyline",
    "bskytree_skyline",
    "compute_mpr",
    "dandc_skyline",
    "expected_skyline_size",
    "nn_constrained_skyline",
    "default_strategy_suite",
    "sfs_skyline",
]
