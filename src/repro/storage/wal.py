"""An append-only write-ahead log with CRC framing and torn-write recovery.

The durability playbook is PostgreSQL's (see ``docs/robustness.md``): every
state mutation is appended to the log -- and fsynced -- *before* it is
applied to the in-memory structures, so after a crash the last checkpoint
plus the log tail reconstructs the exact pre-crash state.

Physical format.  The log is a directory of segment files
(``wal-00000001.log``, ``wal-00000002.log``, ...).  Each record is framed

    [lsn u64][length u32][crc u32][payload bytes]

with the CRC32 computed over ``lsn || length || payload``, so a bit flip in
either the header or the payload is detected.  LSNs (log sequence numbers)
are assigned densely from 1 by :meth:`WriteAheadLog.append`.

Torn writes.  A crash can leave a partial record at the end of the last
segment (a torn write / partial fsync).  :meth:`WriteAheadLog.replay` stops
at the first frame that is short or fails its CRC and reports it via
``tail_status``; reopening the log for append truncates the torn tail to
the last valid record boundary, exactly like PostgreSQL treating the first
invalid record as end-of-log.  A *mid-file* CRC mismatch (valid frames
following a bad one) is real corruption, not a torn tail, and raises
:class:`CorruptWALError`.

Rotation and compaction.  :meth:`rotate` seals the active segment and
starts the next; :meth:`prune` deletes sealed segments whose records are
all covered by a checkpoint.  The checkpointing side
(:class:`repro.storage.durability.DurabilityManager`,
:class:`repro.core.cache_backend.DiskCacheBackend`) calls both after each
successful checkpoint, bounding log size.

Crash points.  An optional fault ``injector``
(:class:`~repro.storage.faults.FaultInjector`) is consulted at
``wal.append`` (before the frame is written; a torn order persists only a
prefix of the frame) and ``wal.fsync`` (frame written, fsync "lost"),
making the crash-recovery drill's schedules seeded and replayable.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.storage.faults import SimulatedCrash

__all__ = ["CorruptWALError", "WalRecord", "WriteAheadLog"]

#: ``[lsn u64][length u32][crc u32]``
_HEADER = struct.Struct("<QII")
#: Sanity bound on one record's payload (a malformed length field must not
#: make replay attempt a multi-gigabyte read).
_MAX_PAYLOAD = 1 << 28
_SEGMENT_GLOB = "wal-*.log"


class CorruptWALError(ValueError):
    """A WAL segment failed integrity validation *before* its tail.

    Sibling of :class:`repro.storage.table.CorruptTableError` and
    :class:`repro.core.cache.CorruptCacheError`: an invalid frame followed
    by valid data is bit rot, not a torn write, and recovery must not
    silently drop the suffix.
    """


@dataclass(frozen=True)
class WalRecord:
    """One replayed record: its LSN and decoded JSON payload."""

    lsn: int
    payload: dict


def _frame(lsn: int, payload: bytes) -> bytes:
    crc = zlib.crc32(struct.pack("<QI", lsn, len(payload)) + payload)
    return _HEADER.pack(lsn, len(payload), crc) + payload


def _segment_path(directory: Path, seq: int) -> Path:
    return directory / f"wal-{seq:08d}.log"


def _segment_seq(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _scan_segment(path: Path) -> Tuple[List[Tuple[int, bytes]], int, str]:
    """Parse one segment; returns ``(records, valid_bytes, tail_status)``.

    ``tail_status`` is ``"clean"`` (file ends exactly on a record boundary)
    or ``"torn"`` (trailing partial/invalid frame).  Raises
    :class:`CorruptWALError` if a bad frame is *followed* by a valid one.
    """
    blob = path.read_bytes()
    records: List[Tuple[int, bytes]] = []
    offset = 0
    while True:
        if offset == len(blob):
            return records, offset, "clean"
        if len(blob) - offset < _HEADER.size:
            break  # short header: torn tail
        lsn, length, crc = _HEADER.unpack_from(blob, offset)
        if length > _MAX_PAYLOAD:
            break  # absurd length: treat the frame as garbage
        start = offset + _HEADER.size
        payload = blob[start : start + length]
        if len(payload) < length:
            break  # short payload: torn tail
        if zlib.crc32(struct.pack("<QI", lsn, length) + payload) != crc:
            break  # CRC mismatch: torn (if at the tail) or corrupt
        records.append((lsn, payload))
        offset = start + length
    # The frame at ``offset`` is invalid.  If anything beyond it parses as
    # a valid frame, this is mid-file corruption, not a torn tail.
    for probe in range(offset + 1, len(blob) - _HEADER.size + 1):
        lsn, length, crc = _HEADER.unpack_from(blob, probe)
        if length > _MAX_PAYLOAD:
            continue
        start = probe + _HEADER.size
        payload = blob[start : start + length]
        if len(payload) == length and zlib.crc32(
            struct.pack("<QI", lsn, length) + payload
        ) == crc:
            raise CorruptWALError(
                f"WAL segment {path}: invalid frame at byte {offset} is "
                f"followed by a valid frame at byte {probe} -- corruption, "
                "not a torn tail"
            )
    return records, offset, "torn"


class WriteAheadLog:
    """Append-only, CRC-framed, segmented write-ahead log.

    ``fsync=True`` (the default) makes :meth:`append` durable before it
    returns -- the commit point.  ``fsync=False`` trades durability of the
    last few records for speed (still torn-write safe on replay); tests and
    quick benchmarks use it.
    """

    def __init__(self, directory, fsync: bool = True, injector=None, metrics=None):
        from repro.obs.metrics import NULL_METRICS

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.injector = injector
        self.metrics = NULL_METRICS if metrics is None else metrics
        #: tail state observed while opening (surfaced in recovery reports)
        self.opened_tail_status = "clean"
        self._handle = None
        self._open_existing()

    # ------------------------------------------------------------------
    # Opening / recovery scan
    # ------------------------------------------------------------------
    def _segments(self) -> List[Path]:
        return sorted(self.directory.glob(_SEGMENT_GLOB), key=_segment_seq)

    def _open_existing(self) -> None:
        """Scan existing segments, truncate any torn tail, position append."""
        segments = self._segments()
        self.last_lsn = 0
        if not segments:
            self._active_seq = 1
            self._active_path = _segment_path(self.directory, 1)
            self._active_path.touch()
            return
        for path in segments[:-1]:
            records, _, tail = _scan_segment(path)
            if tail != "clean":
                raise CorruptWALError(
                    f"WAL segment {path}: torn tail in a sealed (non-final) "
                    "segment -- segments are only ever appended to while last"
                )
            if records:
                self.last_lsn = records[-1][0]
        tail_path = segments[-1]
        records, valid_bytes, tail = _scan_segment(tail_path)
        if records:
            self.last_lsn = records[-1][0]
        self.opened_tail_status = tail
        if tail == "torn":
            # Truncate to the last valid record boundary so future appends
            # never interleave with garbage.
            with open(tail_path, "rb+") as handle:
                handle.truncate(valid_bytes)
            self.metrics.inc("wal_torn_tails_truncated_total")
        self._active_seq = _segment_seq(tail_path)
        self._active_path = tail_path

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self._active_path, "ab")
        return self._handle

    def append(self, payload: dict) -> int:
        """Append one JSON-serializable record; returns its LSN.

        The record is durable (written, and fsynced when ``fsync=True``)
        when this returns -- the WAL contract callers rely on to apply the
        mutation only after logging it.
        """
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        lsn = self.last_lsn + 1
        frame = _frame(lsn, data)
        handle = self._ensure_handle()
        order = (
            self.injector.crashpoint("wal.append")
            if self.injector is not None
            else None
        )
        if order is not None:
            if order.torn_fraction is not None:
                # Torn write: persist only a prefix of the frame, then die.
                handle.write(frame[: max(1, int(len(frame) * order.torn_fraction))])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            raise SimulatedCrash(order.point)
        handle.write(frame)
        handle.flush()
        if self.injector is not None:
            self.injector.crash_check("wal.fsync")
        if self.fsync:
            os.fsync(handle.fileno())
            self.metrics.inc("wal_fsyncs_total")
        self.last_lsn = lsn
        self.metrics.inc("wal_records_total")
        self.metrics.inc("wal_bytes_total", len(frame))
        return lsn

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield every valid record with ``lsn > after_lsn``, in order.

        Stops at a torn tail (see :attr:`tail_status` afterwards); raises
        :class:`CorruptWALError` on mid-file corruption or an undecodable
        payload that passed its CRC (impossible short of a bug, so loud).
        """
        self.tail_status = "clean"
        segments = self._segments()
        for i, path in enumerate(segments):
            records, _, tail = _scan_segment(path)
            if tail == "torn":
                if i != len(segments) - 1:
                    raise CorruptWALError(
                        f"WAL segment {path}: torn tail in a sealed segment"
                    )
                self.tail_status = "torn"
            for lsn, payload in records:
                if lsn <= after_lsn:
                    continue
                try:
                    decoded = json.loads(payload.decode("utf-8"))
                except ValueError as exc:
                    raise CorruptWALError(
                        f"WAL segment {path}: record lsn={lsn} passed its "
                        f"CRC but is not valid JSON: {exc}"
                    ) from exc
                yield WalRecord(lsn=lsn, payload=decoded)

    def records(self, after_lsn: int = 0) -> List[WalRecord]:
        """Eager :meth:`replay` (sets :attr:`tail_status` before returning)."""
        return list(self.replay(after_lsn=after_lsn))

    # ------------------------------------------------------------------
    # Rotation / compaction
    # ------------------------------------------------------------------
    def rotate(self) -> Path:
        """Seal the active segment and open the next; returns the new path."""
        self.close_handle()
        self._active_seq += 1
        self._active_path = _segment_path(self.directory, self._active_seq)
        self._active_path.touch()
        self.metrics.inc("wal_rotations_total")
        return self._active_path

    def prune(self, upto_lsn: int) -> int:
        """Delete sealed segments whose records all have ``lsn <= upto_lsn``.

        The active segment is never deleted.  Returns how many segments
        were removed.  Call after a checkpoint with the checkpoint's LSN.
        """
        removed = 0
        for path in self._segments():
            if path == self._active_path:
                continue
            records, _, _ = _scan_segment(path)
            if records and records[-1][0] > upto_lsn:
                continue
            path.unlink()
            removed += 1
        if removed:
            self.metrics.inc("wal_segments_pruned_total", removed)
        return removed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Total bytes across all live segments."""
        return sum(p.stat().st_size for p in self._segments())

    def close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        self.close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.directory)!r}, last_lsn={self.last_lsn}, "
            f"segments={len(self._segments())}, fsync={self.fsync})"
        )
