"""Page bookkeeping and I/O statistics.

The quantities tracked here are exactly the ones the paper reports in its
performance breakdown (Section 7.3): points read from disk (Figure 8), range
queries generated versus range queries that actually touched data (Figure 9
and its discussion of B-trees discarding empty queries), and the simulated
fetch latency that makes up the "fetching" stage of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Tuple, Union

import numpy as np


@dataclass
class IOStats:
    """Mutable counters for disk activity on one :class:`DiskTable`.

    Every arithmetic helper iterates :func:`dataclasses.fields`, so adding a
    counter field is enough — ``snapshot``/``delta_since``/``add``/``reset``
    (and the observability export, :meth:`as_dict`) pick it up automatically.
    """

    range_queries: int = 0
    empty_queries: int = 0
    points_read: int = 0
    pages_read: int = 0
    seeks: int = 0
    full_scans: int = 0
    simulated_io_ms: float = 0.0
    buffer_hits: int = 0

    def reset(self) -> None:
        """Zero every counter (back to the field defaults)."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return replace(self)

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since an earlier snapshot."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def add(self, other: "IOStats") -> None:
        """Accumulate another stats object into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Plain ``{counter: value}`` mapping (JSON/metrics export)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class BufferPool:
    """An LRU cache of heap pages.

    The paper evaluates with "the DBMS restarted between runs for fair
    comparison" -- i.e. deliberately cold page caches, which is also this
    library's default (no pool).  A :class:`DiskTable` constructed with
    ``buffer_pages=N`` keeps the N most recently used heap pages in memory
    and charges disk latency only for misses, which lets experiments
    separate CBCS's *semantic* caching (fewer tuples examined) from plain
    page caching (same tuples, cheaper re-reads).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._pages: "dict[int, None]" = {}
        self.hits = 0
        self.misses = 0

    def access(self, page_ids: np.ndarray) -> int:
        """Touch pages; returns how many were misses (to be charged)."""
        misses = 0
        for page in np.unique(np.asarray(page_ids, dtype=np.int64)):
            key = int(page)
            if key in self._pages:
                self._pages.pop(key)  # re-insert to refresh recency
                self.hits += 1
            else:
                misses += 1
                self.misses += 1
            self._pages[key] = None
            if len(self._pages) > self.capacity:
                oldest = next(iter(self._pages))
                self._pages.pop(oldest)
        return misses

    def __len__(self) -> int:
        return len(self._pages)


def page_runs(rowids: np.ndarray, page_size: int) -> Tuple[int, int]:
    """Return ``(n_pages, n_runs)`` for fetching the given heap rows.

    ``n_pages`` is the number of distinct pages touched and ``n_runs`` the
    number of contiguous page runs -- each run costs one seek, the classic
    bitmap-heap-scan cost shape.
    """
    if len(rowids) == 0:
        return 0, 0
    pages = np.unique(np.asarray(rowids, dtype=np.int64) // page_size)
    n_runs = 1 + int(np.count_nonzero(np.diff(pages) > 1))
    return len(pages), n_runs
