"""Simulated disk latency model.

The paper's running times are dominated by disk I/O: the authors attribute
CBCS's advantage to "the reduced reads from disk, which reduces both fetching
and skyline computation" and observe that "random access [is] more time
consuming" when many range queries are issued (Section 7.3.3).  Since this
reproduction runs in memory, a cost model assigns a simulated latency to
every fetch so those effects stay visible:

- each *contiguous run* of heap pages costs one seek (``seek_ms``), so many
  small scattered range queries pay more than one big scan, and
- each page read costs ``page_read_ms``.

Defaults are calibrated so that the Baseline method on one million
independent 5-D points (reading on the order of 10^5 points, as in the
paper's Figure 8a) lands near the paper's ≈1 s per query: ≈10^3 pages of 128
points at 0.5 ms plus a few dozen seeks at 5 ms.  Absolute values only scale
the y-axis; the comparisons between methods depend on ratios, not on the
constants themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union


@dataclass(frozen=True)
class FetchForecast:
    """Predicted cost of fetching ``points`` rows in one range query.

    Produced by :meth:`DiskCostModel.predict_fetch` before any I/O happens;
    the executed counterpart is the ``(rows_fetched, pages_read, seeks,
    io_ms)`` stamped onto each :class:`~repro.storage.table.RangeResult`.
    The explain/calibration layer (:mod:`repro.obs.explain`,
    :mod:`repro.obs.calibration`) joins the two per plan box.
    """

    points: int
    pages: int
    seeks: int
    io_ms: float

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "points": self.points,
            "pages": self.pages,
            "seeks": self.seeks,
            "io_ms": round(self.io_ms, 6),
        }


@dataclass(frozen=True)
class DiskCostModel:
    """Latency constants for the simulated disk.

    ``clustered`` selects how heap fetches are charged.  When True (default),
    the heap is assumed clustered in index order (PostgreSQL ``CLUSTER``-style
    or an OS read-ahead regime): one range query reads one contiguous run of
    ``ceil(rows / page_size)`` pages and pays a single seek.  Fetch latency is
    then proportional to the points read plus one random access per range
    query -- exactly the trade-off the paper's MPR/aMPR comparison hinges on
    (few points + many queries versus more points + few queries).  When
    False, fetches are charged by the physical pages and contiguous page runs
    actually touched in the (insertion-ordered) heap.
    """

    seek_ms: float = 5.0
    page_read_ms: float = 0.5
    page_size: int = 128
    clustered: bool = True

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise ValueError("page_size must be positive")
        if self.seek_ms < 0 or self.page_read_ms < 0:
            raise ValueError("latencies must be non-negative")

    def fetch_cost_ms(self, n_seeks: int, n_pages: int) -> float:
        """Return the simulated latency of reading ``n_pages`` pages in
        ``n_seeks`` contiguous runs."""
        return n_seeks * self.seek_ms + n_pages * self.page_read_ms

    def sequential_scan_cost_ms(self, n_pages: int) -> float:
        """Return the simulated latency of one sequential full scan."""
        if n_pages == 0:
            return 0.0
        return self.fetch_cost_ms(1, n_pages)

    def predict_fetch(
        self, n_rows: int, heap_pages: Optional[int] = None
    ) -> FetchForecast:
        """Forecast one range query's fetch of an estimated ``n_rows`` rows.

        Clustered heaps read one contiguous run: ``ceil(rows / page_size)``
        pages behind a single seek -- exactly what :meth:`DiskTable
        ._charge_fetch` will charge, so clustered predictions differ from
        actuals only through the row-count estimate itself.

        Unclustered heaps scatter the rows over ``heap_pages`` physical
        pages; the expected number of *distinct* pages touched follows the
        Yao/Cardenas approximation ``P * (1 - (1 - 1/P)^n)``, and the
        expected number of contiguous runs (seeks) among ``k`` uniformly
        chosen pages out of ``P`` is ``k * (P - k + 1) / P``.  Without a
        ``heap_pages`` hint the unclustered forecast degrades to the
        pessimistic one-page-per-row-capped bound.
        """
        n = max(int(n_rows), 0)
        if n == 0:
            return FetchForecast(points=0, pages=0, seeks=0, io_ms=0.0)
        if self.clustered:
            pages = math.ceil(n / self.page_size)
            seeks = 1
        elif heap_pages is None or heap_pages < 1:
            # No heap-size hint: pessimistic scatter, one page per row.
            pages = n
            seeks = n
        else:
            pool = max(int(heap_pages), 1)
            expected = pool * (1.0 - (1.0 - 1.0 / pool) ** n)
            pages = max(1, min(pool, n, math.ceil(expected)))
            runs = pages * (pool - pages + 1) / pool
            seeks = max(1, min(pages, math.ceil(runs)))
        return FetchForecast(
            points=n,
            pages=pages,
            seeks=seeks,
            io_ms=self.fetch_cost_ms(seeks, pages),
        )
