"""Horizontal partitioning of a dataset into per-shard :class:`DiskTable`\\ s.

The ROADMAP's "partition-aware sharded CBCS" item: real estate listings are
naturally partitioned (by city/region -- here by a *partition key*, one of
the data dimensions), and a constrained skyline query rarely touches every
partition.  :class:`ShardedTable` owns that partitioning at the storage
layer:

- rows are split into N shards by **range** (quantile boundaries over the
  key dimension, the city/region analogue), **hash** (CRC32 of the key
  value -- uniform placement), or **explicit** per-row assignments (tests);
- each shard is an independent :class:`~repro.storage.table.DiskTable`
  (its own heap, indexes, I/O counters, and simulated disk), to be wrapped
  in the usual ``build_backend`` stack by the engine layer;
- alongside every shard the table maintains a :class:`ShardSummary` -- the
  live MBR plus row count -- which is all the shard-pruning planner
  (:mod:`repro.core.shardplan`) needs to classify a shard as
  ``disjoint | dominated | surviving`` for a constraint region without
  touching the shard's disk.

Summaries are maintained, not recomputed: an append extends the MBR (and
reports whether it actually grew -- the engine invalidates its cached
pruning sets exactly then); deletes keep the MBR as a superset, which is
conservative-safe for pruning (a too-large MBR can only under-prune).

With ``shards=1`` the single shard holds the whole dataset and the sharded
stack degenerates to the unsharded engine -- the anchor of the bit-identity
sweep (``repro.bench.shardsweep``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List, Literal, Optional, Sequence

import numpy as np

from repro.storage.pager import IOStats
from repro.storage.table import DiskTable

PartitionMode = Literal["range", "hash", "explicit"]

__all__ = ["ShardSummary", "Shard", "ShardedTable", "hash_key"]


def hash_key(value: float, n_shards: int) -> int:
    """Deterministic shard id for one partition-key value (CRC32 bucket).

    Stable across processes and runs (unlike Python's salted ``hash``), so
    a recovered or restarted deployment routes a row to the same shard.
    """
    payload = np.float64(value).tobytes()
    return zlib.crc32(payload) % n_shards


@dataclass
class ShardSummary:
    """The planner-visible digest of one shard: live MBR + row count.

    ``mbr_lo``/``mbr_hi`` bound every *live* row of the shard (possibly a
    strict superset after deletes -- never an underset, which is the safety
    direction pruning needs).  An empty shard has ``count == 0`` and an
    inverted (+inf/-inf) MBR.
    """

    shard_id: int
    mbr_lo: np.ndarray
    mbr_hi: np.ndarray
    count: int

    @property
    def empty(self) -> bool:
        return self.count == 0

    def extend(self, rows: np.ndarray) -> bool:
        """Grow the MBR to cover ``rows``; True iff it actually changed."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.size == 0:
            return False
        lo = np.minimum(self.mbr_lo, rows.min(axis=0))
        hi = np.maximum(self.mbr_hi, rows.max(axis=0))
        changed = bool(
            self.count == 0
            or np.any(lo < self.mbr_lo)
            or np.any(hi > self.mbr_hi)
        )
        self.mbr_lo, self.mbr_hi = lo, hi
        self.count += len(rows)
        return changed

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "count": int(self.count),
            "mbr_lo": [float(v) for v in self.mbr_lo],
            "mbr_hi": [float(v) for v in self.mbr_hi],
        }


def _summary_of(shard_id: int, rows: np.ndarray, ndim: int) -> ShardSummary:
    if len(rows) == 0:
        return ShardSummary(
            shard_id,
            np.full(ndim, np.inf),
            np.full(ndim, -np.inf),
            0,
        )
    return ShardSummary(
        shard_id, rows.min(axis=0).copy(), rows.max(axis=0).copy(), len(rows)
    )


@dataclass
class Shard:
    """One partition: its table plus the planner-facing summary."""

    shard_id: int
    table: DiskTable
    summary: ShardSummary

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}"


class ShardedTable:
    """A dataset partitioned into per-shard :class:`DiskTable` heaps.

    ``mode="range"`` splits on quantile boundaries of ``data[:, key_dim]``
    (the city/region partitioning of the paper's real-estate scenario);
    ``"hash"`` buckets the key value by CRC32; ``"explicit"`` takes a
    per-row ``assignments`` array (used by tests to place coordinate
    duplicates on different shards).  ``table_factory`` builds each shard's
    table from its rows -- the default plain :class:`DiskTable` -- letting
    callers thread cost models, plans, or fault wrappers per shard.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_shards: int,
        mode: PartitionMode = "range",
        key_dim: int = 0,
        assignments: Optional[Sequence[int]] = None,
        table_factory: Optional[Callable[[np.ndarray], DiskTable]] = None,
    ):
        data = np.ascontiguousarray(np.asarray(data, dtype=float))
        if data.ndim != 2:
            raise ValueError("data must be an (n, d) array")
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if not 0 <= key_dim < data.shape[1]:
            raise ValueError(f"key_dim {key_dim} out of range for {data.shape[1]} dims")
        if mode not in ("range", "hash", "explicit"):
            raise ValueError(f"unknown partition mode {mode!r}")
        if (assignments is None) != (mode != "explicit"):
            raise ValueError("assignments required iff mode='explicit'")
        self.n_shards = int(n_shards)
        self.mode: PartitionMode = mode
        self.key_dim = int(key_dim)
        self.ndim = int(data.shape[1])
        self._boundaries: Optional[np.ndarray] = None

        if mode == "explicit":
            assigned = np.asarray(assignments, dtype=np.int64)
            if assigned.shape != (len(data),):
                raise ValueError("one shard assignment per row required")
            if len(assigned) and (
                assigned.min() < 0 or assigned.max() >= n_shards
            ):
                raise ValueError("assignment out of shard range")
        elif mode == "range":
            keys = data[:, self.key_dim]
            if len(keys) and n_shards > 1:
                self._boundaries = np.quantile(
                    keys, np.arange(1, n_shards) / n_shards
                )
            else:
                self._boundaries = np.empty(0)
            assigned = np.searchsorted(self._boundaries, keys, side="right")
        else:  # hash
            assigned = np.fromiter(
                (hash_key(v, n_shards) for v in data[:, self.key_dim]),
                dtype=np.int64,
                count=len(data),
            )

        factory = table_factory or DiskTable
        self.shards: List[Shard] = []
        for sid in range(self.n_shards):
            rows = data[assigned == sid]
            self.shards.append(
                Shard(
                    shard_id=sid,
                    table=factory(rows),
                    summary=_summary_of(sid, rows, self.ndim),
                )
            )

    # ------------------------------------------------------------------
    # Metadata / aggregates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_shards

    def __iter__(self):
        return iter(self.shards)

    def __getitem__(self, shard_id: int) -> Shard:
        return self.shards[shard_id]

    @property
    def n(self) -> int:
        return sum(s.table.n for s in self.shards)

    @property
    def live_count(self) -> int:
        return sum(s.table.live_count for s in self.shards)

    @property
    def summaries(self) -> List[ShardSummary]:
        return [s.summary for s in self.shards]

    def stats_total(self) -> IOStats:
        """Aggregate I/O counters over every shard's table (fresh object).

        Sums the *base* tables' counters, so a fault-wrapped shard (whose
        decorator delegates ``stats`` to the inner table) reconciles too.
        """
        total = IOStats()
        for shard in self.shards:
            total.add(shard.table.stats)
        return total

    def estimate_count(self, dim: int, lo: float, hi: float) -> int:
        """Fleet-level selectivity estimate: the per-shard sum (no I/O)."""
        return sum(
            s.table.estimate_count(dim, lo, hi)
            for s in self.shards
            if not s.summary.empty
        )

    # ------------------------------------------------------------------
    # Routing + maintenance
    # ------------------------------------------------------------------
    def route(self, row: Sequence[float]) -> int:
        """Shard id a new row belongs to (deterministic per mode)."""
        row = np.asarray(row, dtype=float)
        key = float(row[self.key_dim])
        if self.mode == "range":
            return int(
                np.searchsorted(self._boundaries, key, side="right")
            )
        if self.mode == "hash":
            return hash_key(key, self.n_shards)
        raise ValueError(
            "explicit-mode tables have no routing function; "
            "append through append_to(shard_id, rows)"
        )

    def record_append(self, shard_id: int, rows: np.ndarray) -> bool:
        """Fold appended rows into the shard's summary; True iff the MBR
        grew (the signal that invalidates cached pruning sets)."""
        return self.shards[shard_id].summary.extend(rows)

    def record_delete(self, shard_id: int) -> None:
        """Refresh the shard's live count after a delete.

        The MBR is left as a (safe) superset; only the count -- which the
        planner uses for the empty-shard check -- is re-read.
        """
        summary = self.shards[shard_id].summary
        summary.count = self.shards[shard_id].table.live_count

    def __repr__(self) -> str:
        return (
            f"ShardedTable(shards={self.n_shards}, mode={self.mode!r}, "
            f"key_dim={self.key_dim}, n={self.n})"
        )
