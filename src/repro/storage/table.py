"""A simulated disk-resident table of multidimensional points.

:class:`DiskTable` reproduces the storage substrate of the paper's
experiments: a heap file of points with one B-tree index per dimension
(PostgreSQL-style).  Multidimensional range queries are planned like a DBMS
would; two plan models select how heap I/O is charged:

- ``bitmap`` (default): models PostgreSQL's BitmapAnd over the per-dimension
  B-trees -- row-id sets are intersected inside the (memory-resident)
  indexes and only the exactly-matching heap rows are fetched, so
  ``points_read`` equals the true result size.  This matches the paper's
  reported points-read numbers (Figure 8) and its observation that empty
  queries never reach the disk.
- ``best_index``: a plain single-index scan -- candidate row ids come from
  the most selective dimension's B-tree alone and every candidate row is
  fetched and then filtered, so ``points_read`` includes the plan's false
  positives.

Both plans *execute* the same way in-process (most-selective index slice +
vectorized filter; selectivity estimated in O(log n) from the sorted column,
standing in for an index histogram); they differ only in what disk activity
is charged.

Empty range queries are answered from the index alone with *no* disk seek --
the behaviour the paper observes for PostgreSQL: "the remaining queries were
discarded by the DBMS without any disk seeks because the B-trees detect the
empty queries" (Section 7.3.2).  Under the ``bitmap`` plan a query whose
candidate sets intersect to nothing is likewise detected index-side.

All disk activity is recorded in :attr:`DiskTable.stats`; simulated fetch
latency follows the table's :class:`~repro.storage.costmodel.DiskCostModel`.
"""

from __future__ import annotations

import math
import threading
import zlib
from dataclasses import dataclass, replace
from typing import Iterable, List, Literal, Optional, Sequence

import numpy as np

from repro.geometry.box import Box
from repro.index.btree import BPlusTree
from repro.ioutil import atomic_savez
from repro.obs import NULL_OBS
from repro.storage.costmodel import DiskCostModel
from repro.storage.pager import BufferPool, IOStats, page_runs

PlanKind = Literal["best_index", "bitmap", "seqscan"]


class CorruptTableError(ValueError):
    """A persisted table archive failed integrity validation on load."""


#: Keys every saved table archive must carry (see :meth:`DiskTable.save`).
_REQUIRED_ARCHIVE_KEYS = frozenset(
    {
        "data",
        "alive",
        "columns",
        "has_columns",
        "plan",
        "leaf_capacity",
        "buffer_pages",
        "cost_model",
    }
)


def _archive_checksum(data: np.ndarray, alive: np.ndarray) -> int:
    """CRC32 over the heap payload and tombstone bitmap."""
    crc = zlib.crc32(np.ascontiguousarray(data).tobytes())
    return zlib.crc32(np.ascontiguousarray(alive).tobytes(), crc)


@dataclass(frozen=True)
class RangeResult:
    """Result of one range query: matching points, their row ids, and the
    number of heap rows fetched to produce them (candidates incl. false
    positives of the chosen plan).

    ``io_ms`` is the simulated disk latency this one call charged (stamped
    under the table lock); the concurrent executor schedules per-box
    ``io_ms`` values onto its worker lanes to derive the effective parallel
    fetch latency.  ``pages_read`` and ``seeks`` are the physical-I/O
    counters this one call added to :attr:`DiskTable.stats` -- the
    per-range-query *actuals* the explain/calibration layer joins against
    the cost model's :class:`~repro.storage.costmodel.FetchForecast`.
    """

    points: np.ndarray
    rowids: np.ndarray
    rows_fetched: int
    io_ms: float = 0.0
    pages_read: int = 0
    seeks: int = 0

    def __len__(self) -> int:
        return len(self.rowids)


class DiskTable:
    """A read-mostly table of ``(n, d)`` float points with per-dim B-trees."""

    def __init__(
        self,
        data: np.ndarray,
        cost_model: Optional[DiskCostModel] = None,
        plan: PlanKind = "bitmap",
        leaf_capacity: int = 256,
        buffer_pages: Optional[int] = None,
        columns: Optional[Sequence[str]] = None,
        obs=None,
    ):
        """``buffer_pages`` enables an LRU heap-page cache (default off --
        the paper's cold-cache methodology; see
        :class:`~repro.storage.pager.BufferPool`).  ``columns`` optionally
        names the dimensions, enabling :meth:`constraints` by name.
        ``obs`` attaches an :class:`~repro.obs.Observability`: every range
        query then runs inside a ``table.range_query`` span and feeds the
        ``table_*`` counters."""
        data = np.ascontiguousarray(np.asarray(data, dtype=float))
        if data.ndim != 2:
            raise ValueError("data must be an (n, d) array")
        if data.size and not np.isfinite(data).all():
            raise ValueError("data must be finite (no NaN/inf coordinates)")
        if plan not in ("best_index", "bitmap", "seqscan"):
            raise ValueError(f"unknown plan kind: {plan!r}")
        self._data = data
        self.cost_model = cost_model or DiskCostModel()
        self.plan: PlanKind = plan
        self.stats = IOStats()
        # One disk head: concurrent range queries serialize on this lock, so
        # IOStats read-modify-writes stay exact under a parallel executor.
        self._lock = threading.RLock()
        self.obs = NULL_OBS if obs is None else obs
        self._leaf_capacity = leaf_capacity
        self._alive = np.ones(len(data), dtype=bool)
        self._vacuumable = np.ones(len(data), dtype=bool)  # index entries present
        self.buffer = BufferPool(buffer_pages) if buffer_pages else None
        if columns is not None:
            columns = tuple(columns)
            if len(columns) != data.shape[1]:
                raise ValueError("one column name per dimension required")
            if len(set(columns)) != len(columns):
                raise ValueError("column names must be unique")
        self.columns: Optional[tuple] = columns

        n, d = data.shape
        rowids = np.arange(n, dtype=np.int64)
        self._sorted_vals: List[np.ndarray] = []
        self._indexes: List[BPlusTree] = []
        for i in range(d):
            column = data[:, i]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            self._sorted_vals.append(sorted_col)
            self._indexes.append(
                BPlusTree.bulk_load(
                    sorted_col, rowids[order], leaf_capacity=leaf_capacity,
                    presorted=True,
                )
            )
        if n:
            self.domain_lo = data.min(axis=0)
            self.domain_hi = data.max(axis=0)
        else:
            self.domain_lo = np.zeros(d)
            self.domain_hi = np.zeros(d)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Heap size, including rows deleted but not yet vacuumed."""
        return len(self._data)

    @property
    def live_count(self) -> int:
        """Number of rows not marked deleted."""
        return int(self._alive.sum())

    @property
    def ndim(self) -> int:
        return self._data.shape[1]

    @property
    def n_pages(self) -> int:
        return math.ceil(self.n / self.cost_model.page_size)

    def index(self, dim: int) -> BPlusTree:
        """Return the B-tree index on dimension ``dim``."""
        return self._indexes[dim]

    def constraints(self, **ranges) -> "Constraints":
        """Build constraints by column name; unnamed dimensions default to
        the full data domain.

        Each value is ``(lo, hi)``; ``None`` on either side means
        unconstrained on that side.  Requires the table to have been
        constructed with ``columns``::

            table = DiskTable(rows, columns=("price", "distance"))
            c = table.constraints(price=(60, 160), distance=(None, 4.0))
        """
        from repro.geometry.constraints import Constraints

        if self.columns is None:
            raise ValueError("this table has no column names; pass columns=")
        lo = self.domain_lo.copy()
        hi = self.domain_hi.copy()
        for name, bound in ranges.items():
            if name not in self.columns:
                raise KeyError(
                    f"unknown column {name!r}; available: {self.columns}"
                )
            dim = self.columns.index(name)
            low, high = bound
            if low is not None:
                lo[dim] = float(low)
            if high is not None:
                hi[dim] = float(high)
        return Constraints(lo, hi)

    def data_view(self) -> np.ndarray:
        """Return a read-only view of the raw data (for index building by
        other components, e.g. the BBS R-tree; charges no simulated I/O)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------
    # Selectivity estimation (histogram stand-in; O(log n), no I/O)
    # ------------------------------------------------------------------
    def estimate_count(self, dim: int, lo: float, hi: float) -> int:
        """Estimate how many rows fall in ``[lo, hi]`` on one dimension."""
        vals = self._sorted_vals[dim]
        left = int(np.searchsorted(vals, lo, side="left"))
        right = int(np.searchsorted(vals, hi, side="right"))
        return max(0, right - left)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def bind_obs(self, obs) -> "DiskTable":
        """Attach (or detach, with None) observability to this table."""
        self.obs = NULL_OBS if obs is None else obs
        return self

    def range_query(self, box: Box) -> RangeResult:
        """Execute one range query for the points inside ``box``.

        Each call models one SQL range predicate sent to the DBMS; the MPR
        fetch issues one call per decomposed hyper-rectangle.
        """
        obs = self.obs
        if not obs.enabled:
            return self._locked_range_query(box)
        # Instrumented path: one span per range query plus table counters.
        # The span's I/O figures come from the result itself (stamped under
        # the table lock), so they stay exact under concurrent fetches.
        with obs.tracer.span("table.range_query", plan=self.plan) as span:
            result = self._locked_range_query(box)
            span.set(
                rows=len(result),
                rows_fetched=result.rows_fetched,
                points_read=result.rows_fetched,
                simulated_io_ms=round(result.io_ms, 6),
            )
        m = obs.metrics
        m.inc("table_range_queries_total", plan=self.plan)
        if result.rows_fetched == 0:
            m.inc("table_empty_queries_total", plan=self.plan)
        else:
            m.inc("table_points_read_total", result.rows_fetched, plan=self.plan)
        return result

    def _locked_range_query(self, box: Box) -> RangeResult:
        """Run one range query under the table lock, stamping its I/O cost."""
        with self._lock:
            io_before = self.stats.simulated_io_ms
            pages_before = self.stats.pages_read
            seeks_before = self.stats.seeks
            result = self._execute_range_query(box)
            io_ms = self.stats.simulated_io_ms - io_before
            pages = self.stats.pages_read - pages_before
            seeks = self.stats.seeks - seeks_before
        if io_ms or pages or seeks:
            result = replace(
                result, io_ms=io_ms, pages_read=pages, seeks=seeks
            )
        return result

    def charge_io(self, ms: float) -> None:
        """Charge extra simulated I/O latency (e.g. an injected latency
        spike) to the table's stats, safely under the table lock."""
        with self._lock:
            self.stats.simulated_io_ms += ms

    def _execute_range_query(self, box: Box) -> RangeResult:
        if box.ndim != self.ndim:
            raise ValueError("box dimensionality does not match the table")
        self.stats.range_queries += 1
        if self.n == 0 or box.is_empty():
            self.stats.empty_queries += 1
            return self._empty_result()

        if self.plan == "seqscan":
            return self._seqscan_query(box)

        candidates = self._best_index_candidates(box)
        if candidates is None or len(candidates) == 0:
            self.stats.empty_queries += 1
            return self._empty_result()

        points = self._data[candidates]
        keep = box.mask(points)
        matches = candidates[keep]
        if self.plan == "bitmap":
            # BitmapAnd plan: the indexes intersect to the exact row set;
            # only matching heap rows are read (none, if the set is empty).
            if len(matches) == 0:
                self.stats.empty_queries += 1
                return self._empty_result()
            self._charge_fetch(matches)
            rows_fetched = len(matches)
        else:
            self._charge_fetch(candidates)
            rows_fetched = len(candidates)
        return RangeResult(
            points=points[keep],
            rowids=matches,
            rows_fetched=rows_fetched,
        )

    def fetch_boxes(self, boxes: Iterable[Box]) -> RangeResult:
        """Execute one range query per box and concatenate the results.

        Boxes produced by the MPR decomposition are disjoint, so the union
        needs no deduplication.
        """
        if self.obs.enabled:
            boxes = list(boxes)
            with self.obs.tracer.span("table.fetch_boxes", boxes=len(boxes)) as span:
                result = self._fetch_boxes(boxes)
                span.set(rows=len(result), rows_fetched=result.rows_fetched)
            return result
        return self._fetch_boxes(boxes)

    def _fetch_boxes(self, boxes: Iterable[Box]) -> RangeResult:
        all_points: List[np.ndarray] = []
        all_rows: List[np.ndarray] = []
        fetched = 0
        io_total = 0.0
        pages_total = 0
        seeks_total = 0
        for box in boxes:
            result = self.range_query(box)
            fetched += result.rows_fetched
            io_total += result.io_ms
            pages_total += result.pages_read
            seeks_total += result.seeks
            if len(result):
                all_points.append(result.points)
                all_rows.append(result.rowids)
        if not all_rows:
            return replace(
                self._empty_result(),
                io_ms=io_total,
                pages_read=pages_total,
                seeks=seeks_total,
            )
        return RangeResult(
            points=np.concatenate(all_points),
            rowids=np.concatenate(all_rows),
            rows_fetched=fetched,
            io_ms=io_total,
            pages_read=pages_total,
            seeks=seeks_total,
        )

    def full_scan(self) -> RangeResult:
        """Sequentially scan the whole table."""
        if self.obs.enabled:
            self.obs.metrics.inc("table_full_scans_total")
            with self.obs.tracer.span("table.full_scan", rows=self.n):
                return self._execute_full_scan()
        return self._execute_full_scan()

    def _execute_full_scan(self) -> RangeResult:
        with self._lock:
            self.stats.full_scans += 1
            n_pages = self.n_pages
            scan_ms = self.cost_model.sequential_scan_cost_ms(n_pages)
            self.stats.pages_read += n_pages
            self.stats.seeks += 1 if n_pages else 0
            self.stats.points_read += self.n
            self.stats.simulated_io_ms += scan_ms
            alive_ids = np.flatnonzero(self._alive)
        return RangeResult(
            points=self._data[alive_ids].copy(),
            rowids=alive_ids,
            rows_fetched=self.n,
            io_ms=scan_ms,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path, crashpoint=None) -> None:
        """Save the table (rows, tombstones, schema, cost model) to ``.npz``.

        Indexes are rebuilt on load; vacuumed-away index entries therefore
        reappear as vacuumable tombstones, with identical query behaviour.
        A CRC32 checksum over the heap payload and tombstone bitmap is
        stored and verified by :meth:`load`.

        The archive is committed atomically (temp file + rename), so a
        crash mid-save leaves the previous checkpoint intact;
        ``crashpoint`` threads the fault injector's seeded crash hook into
        the commit (point ``"table.checkpoint"``) for the recovery drill.
        """
        atomic_savez(
            path,
            crashpoint=crashpoint,
            point="table.checkpoint",
            data=self._data,
            alive=self._alive,
            checksum=np.array(
                _archive_checksum(self._data, self._alive), dtype=np.uint32
            ),
            columns=np.array(self.columns or (), dtype="U64"),
            has_columns=np.array(self.columns is not None),
            plan=np.array(self.plan),
            leaf_capacity=np.array(self._leaf_capacity),
            buffer_pages=np.array(
                self.buffer.capacity if self.buffer is not None else 0
            ),
            cost_model=np.array(
                [
                    self.cost_model.seek_ms,
                    self.cost_model.page_read_ms,
                    float(self.cost_model.page_size),
                    1.0 if self.cost_model.clustered else 0.0,
                ]
            ),
        )

    @classmethod
    def load(cls, path) -> "DiskTable":
        """Load a table saved with :meth:`save`, validating its integrity.

        Raises :class:`CorruptTableError` when the archive is missing
        required keys, carries a malformed heap or tombstone bitmap,
        contains non-finite rows, or fails its stored checksum.  Archives
        written before checksums existed (no ``checksum`` key) are accepted
        after the structural checks.
        """
        with np.load(path, allow_pickle=False) as archive:
            missing = _REQUIRED_ARCHIVE_KEYS - set(archive.files)
            if missing:
                raise CorruptTableError(
                    f"table archive {path} is missing required keys: "
                    f"{sorted(missing)}"
                )
            data = np.asarray(archive["data"])
            alive = np.asarray(archive["alive"])
            if data.ndim != 2:
                raise CorruptTableError(
                    f"table archive {path}: data must be 2-D, got {data.ndim}-D"
                )
            if not np.issubdtype(data.dtype, np.number):
                raise CorruptTableError(
                    f"table archive {path}: data has non-numeric dtype {data.dtype}"
                )
            if alive.ndim != 1 or len(alive) != len(data):
                raise CorruptTableError(
                    f"table archive {path}: alive bitmap length {alive.shape} "
                    f"does not match {len(data)} heap rows"
                )
            if alive.dtype != np.bool_:
                raise CorruptTableError(
                    f"table archive {path}: alive bitmap has dtype "
                    f"{alive.dtype}, expected bool"
                )
            if data.size and not np.isfinite(data).all():
                live_bad = bool(np.any(~np.isfinite(data[alive])))
                where = "live rows" if live_bad else "tombstoned rows"
                raise CorruptTableError(
                    f"table archive {path}: non-finite values in {where}"
                )
            if "checksum" in archive.files:
                stored = int(archive["checksum"])
                actual = _archive_checksum(data, alive)
                if stored != actual:
                    raise CorruptTableError(
                        f"table archive {path}: checksum mismatch "
                        f"(stored {stored:#010x}, computed {actual:#010x})"
                    )
            cost = np.asarray(archive["cost_model"], dtype=float)
            if cost.shape != (4,):
                raise CorruptTableError(
                    f"table archive {path}: cost_model must hold 4 values, "
                    f"got shape {cost.shape}"
                )
            plan = str(archive["plan"])
            if plan not in ("best_index", "bitmap", "seqscan"):
                raise CorruptTableError(
                    f"table archive {path}: unknown plan kind {plan!r}"
                )
            model = DiskCostModel(
                seek_ms=float(cost[0]),
                page_read_ms=float(cost[1]),
                page_size=int(cost[2]),
                clustered=bool(cost[3]),
            )
            buffer_pages = int(archive["buffer_pages"])
            columns = (
                tuple(str(c) for c in archive["columns"])
                if bool(archive["has_columns"])
                else None
            )
            try:
                table = cls(
                    data,
                    cost_model=model,
                    plan=plan,
                    leaf_capacity=int(archive["leaf_capacity"]),
                    buffer_pages=buffer_pages or None,
                    columns=columns,
                )
            except ValueError as exc:
                raise CorruptTableError(
                    f"table archive {path} failed validation: {exc}"
                ) from exc
            table._alive = alive.copy()
        return table

    # ------------------------------------------------------------------
    # Updates (Section 6.2 dynamic-data support)
    # ------------------------------------------------------------------
    def append(self, rows: np.ndarray) -> np.ndarray:
        """Append rows to the heap and maintain every index; returns the new
        row ids.  Writes are charged one page per touched heap page."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[1] != self.ndim:
            raise ValueError("appended rows must match the table's dimensionality")
        if rows.size and not np.isfinite(rows).all():
            raise ValueError("appended rows must be finite")
        with self._lock:
            start = self.n
            new_ids = np.arange(start, start + len(rows), dtype=np.int64)
            self._data = np.ascontiguousarray(np.vstack([self._data, rows]))
            self._alive = np.concatenate(
                [self._alive, np.ones(len(rows), dtype=bool)]
            )
            self._vacuumable = np.concatenate(
                [self._vacuumable, np.ones(len(rows), dtype=bool)]
            )
            for i in range(self.ndim):
                column = rows[:, i]
                for value, rowid in zip(column, new_ids):
                    self._indexes[i].insert(float(value), int(rowid))
                positions = np.searchsorted(self._sorted_vals[i], column)
                self._sorted_vals[i] = np.insert(
                    self._sorted_vals[i], positions, column
                )
            self.domain_lo = np.minimum(self.domain_lo, rows.min(axis=0))
            self.domain_hi = np.maximum(self.domain_hi, rows.max(axis=0))
            n_pages = math.ceil(len(rows) / self.cost_model.page_size)
            self.stats.pages_read += n_pages
            self.stats.seeks += 1
            self.stats.simulated_io_ms += self.cost_model.fetch_cost_ms(1, n_pages)
        return new_ids

    def delete(self, rowids: np.ndarray) -> int:
        """Mark rows deleted (tombstones, PostgreSQL-style: indexes keep the
        entries, queries filter dead rows).  Returns how many rows died."""
        rowids = np.atleast_1d(np.asarray(rowids, dtype=np.int64))
        with self._lock:
            if len(rowids) and (rowids.min() < 0 or rowids.max() >= self.n):
                raise IndexError("row id out of range")
            killed = int(self._alive[rowids].sum())
            self._alive[rowids] = False
        return killed

    def vacuum(self) -> int:
        """Remove dead rows' entries from every index (PostgreSQL VACUUM).

        Heap row ids stay stable (no physical compaction); index scans and
        selectivity estimates stop seeing the dead rows.  Returns the number
        of rows vacuumed.
        """
        with self._lock:
            dead = np.flatnonzero(~self._alive & self._vacuumable)
            if len(dead) == 0:
                return 0
            for i in range(self.ndim):
                column = self._data[:, i]
                for rowid in dead:
                    self._indexes[i].delete(float(column[rowid]), int(rowid))
                alive_vals = column[self._alive]
                self._sorted_vals[i] = np.sort(alive_vals)
            self._vacuumable[dead] = False
        return len(dead)

    def row(self, rowid: int) -> np.ndarray:
        """Return one live row's values (no I/O charge; test/maintenance aid)."""
        if not self._alive[rowid]:
            raise KeyError(f"row {rowid} is deleted")
        return self._data[rowid].copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _empty_result(self) -> RangeResult:
        return RangeResult(
            points=np.empty((0, self.ndim)),
            rowids=np.empty(0, dtype=np.int64),
            rows_fetched=0,
        )

    def _seqscan_query(self, box: Box) -> RangeResult:
        """Answer a range query by scanning the whole heap.

        The paper's preliminary experiments "also tested a baseline using
        sequential scan, but it was consistently slower than the baseline
        using the indexes"; this plan exists to reproduce that comparison.
        """
        n_pages = self.n_pages
        self.stats.pages_read += n_pages
        self.stats.seeks += 1 if n_pages else 0
        self.stats.points_read += self.n
        self.stats.simulated_io_ms += self.cost_model.sequential_scan_cost_ms(n_pages)
        keep = box.mask(self._data) & self._alive
        rowids = np.flatnonzero(keep)
        return RangeResult(
            points=self._data[rowids], rowids=rowids, rows_fetched=self.n
        )

    def _best_index_candidates(self, box: Box) -> Optional[np.ndarray]:
        best_dim, best_count = 0, None
        for i, iv in enumerate(box.intervals):
            count = self.estimate_count(i, iv.lo, iv.hi)
            if best_count is None or count < best_count:
                best_dim, best_count = i, count
            if count == 0:
                return None
        iv = box.intervals[best_dim]
        candidates = self._indexes[best_dim].range_rows(
            iv.lo, iv.hi, lo_open=iv.lo_open, hi_open=iv.hi_open
        )
        return candidates[self._alive[candidates]]

    def _charge_fetch(self, rowids: np.ndarray) -> None:
        """Account for reading the given heap rows from disk."""
        if self.buffer is not None:
            page_ids = np.asarray(rowids, dtype=np.int64) // self.cost_model.page_size
            total_pages = len(np.unique(page_ids))
            n_pages = self.buffer.access(page_ids)
            self.stats.buffer_hits += total_pages - n_pages
            n_runs = 1 if n_pages else 0
        elif self.cost_model.clustered:
            n_pages = math.ceil(len(rowids) / self.cost_model.page_size)
            n_runs = 1 if n_pages else 0
        else:
            rowids_sorted = np.sort(rowids)
            n_pages, n_runs = page_runs(rowids_sorted, self.cost_model.page_size)
        self.stats.pages_read += n_pages
        self.stats.seeks += n_runs
        self.stats.points_read += len(rowids)
        self.stats.simulated_io_ms += self.cost_model.fetch_cost_ms(n_runs, n_pages)
