"""Deterministic storage fault injection for resilience testing.

Production storage fails in ways a reproduction on an in-process table
never would: transient I/O errors, latency spikes, short reads, and bit
rot.  This module makes every one of those failure modes *reproducible*:

- :class:`FaultProfile` describes per-call fault rates (and magnitudes);
  the named profiles in :data:`PROFILES` are shared by tests, the chaos
  soak (``python -m repro.bench --chaos``), and CI.
- :class:`FaultInjector` draws faults from a seeded PRNG and records every
  injected fault in a trace, so the same seed over the same call sequence
  yields an identical fault schedule (deterministic replay).
- :class:`FaultyDiskTable` wraps a :class:`~repro.storage.table.DiskTable`
  and applies the injector's verdicts to the read path: transient
  :class:`TransientStorageError` (an ``IOError``), extra simulated latency,
  truncated :class:`~repro.storage.table.RangeResult` payloads (row-count
  header kept intact, modelling a short read), and NaN-corrupted rows.

Truncation and corruption are *detectable* by design -- a truncated result
has ``len(points) != len(rowids)`` and a corrupted one carries non-finite
values -- which is exactly what
:func:`repro.resilience.validate.validate_range_result` checks, so the
retry/degradation machinery treats them like any other transient fault
instead of silently computing a wrong skyline.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Union

import numpy as np

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.storage.table import DiskTable, RangeResult


class TransientStorageError(IOError):
    """A storage operation failed in a way that a retry may fix."""


class SimulatedCrash(BaseException):
    """The process "died" at an armed crash point.

    Raised by durable-write sites (WAL append/fsync, checkpoint commit,
    cache snapshot commit) when the fault injector has armed that point.
    Deliberately *not* an :class:`Exception`: nothing in the engine --
    retry loops, the degradation ladder, the chaos soak's catch-all --
    may swallow a crash; only the crash-recovery drill's harness catches
    it, models the process death, and drives ``recover()``.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point}")
        self.point = point


@dataclass(frozen=True)
class CrashOrder:
    """The injector's verdict at one armed crash point.

    ``torn_fraction`` is None for a clean crash (die before the write);
    a value in (0, 1) orders a *torn write*: the site persists only that
    prefix of the frame's bytes -- modelling a partial fsync / torn sector
    -- and then dies.  Replay must detect the torn tail by CRC.
    """

    point: str
    torn_fraction: Optional[float] = None


#: Fault kinds, in the fixed order the injector's single uniform draw walks.
FAULT_KINDS = ("transient_io", "latency", "truncate", "corrupt")


@dataclass(frozen=True)
class FaultProfile:
    """Per-call fault rates (probabilities) plus fault magnitudes.

    Rates are independent per table call; their sum is the overall fault
    rate.  ``latency_ms`` is the extra simulated I/O charged by one latency
    spike.
    """

    name: str = "custom"
    transient_io: float = 0.0
    latency: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    latency_ms: float = 25.0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault rates sum to {self.total_rate:.3f}; must be <= 1"
            )

    @property
    def total_rate(self) -> float:
        return self.transient_io + self.latency + self.truncate + self.corrupt

    def scaled(self, factor: float) -> "FaultProfile":
        """Return a copy with every rate multiplied by ``factor``."""
        return replace(
            self,
            name=f"{self.name}*{factor:g}",
            transient_io=self.transient_io * factor,
            latency=self.latency * factor,
            truncate=self.truncate * factor,
            corrupt=self.corrupt * factor,
        )


#: Named profiles shared by tests, the chaos soak, and CI.  ``default`` is
#: the acceptance profile: a 5% overall fault rate.
PROFILES = {
    "none": FaultProfile(name="none"),
    "default": FaultProfile(
        name="default",
        transient_io=0.02,
        latency=0.01,
        truncate=0.01,
        corrupt=0.01,
    ),
    "heavy": FaultProfile(
        name="heavy",
        transient_io=0.08,
        latency=0.04,
        truncate=0.04,
        corrupt=0.04,
        latency_ms=50.0,
    ),
}


def get_profile(profile: Union[str, FaultProfile]) -> FaultProfile:
    """Resolve a profile name (see :data:`PROFILES`) or pass one through."""
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; available: {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: which call, which operation, which kind."""

    index: int  # 1-based injector call index
    op: str
    kind: str


class FaultInjector:
    """Seeded, deterministic source of fault verdicts.

    One :meth:`draw` per table call; the same seed over the same call
    sequence produces the identical :attr:`trace`.  A forced outage
    (:meth:`force_outage`) makes the next ``n`` draws transient I/O errors
    regardless of the profile -- the chaos soak's circuit-breaker drill --
    without consuming PRNG state, so the post-outage schedule is unchanged.
    """

    def __init__(
        self,
        profile: Union[str, FaultProfile] = "default",
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.profile = get_profile(profile)
        self.seed = seed
        self._rng = random.Random(seed)
        self.calls = 0
        self.trace: List[FaultEvent] = []
        self.metrics = NULL_METRICS if metrics is None else metrics
        self._outage_remaining = 0
        #: armed crash points: point -> [remaining_hits, torn_fraction]
        self._crashes: dict = {}
        #: every crash order fired, for drill reporting/replay audits
        self.crash_trace: List[CrashOrder] = []
        # Guards the PRNG, call counter, trace, and outage budget so
        # concurrent executor workers draw verdicts without corruption.
        self._lock = threading.RLock()

    def bind_metrics(self, metrics: Optional[MetricsRegistry]) -> "FaultInjector":
        """Attach (or detach, with None) a shared metrics registry."""
        self.metrics = NULL_METRICS if metrics is None else metrics
        return self

    # ------------------------------------------------------------------
    # Outage control (chaos drills)
    # ------------------------------------------------------------------
    def force_outage(self, calls: int) -> None:
        """Make the next ``calls`` draws fail with transient I/O errors."""
        if calls < 0:
            raise ValueError("outage length must be non-negative")
        with self._lock:
            self._outage_remaining = calls

    def clear_outage(self) -> None:
        """End a forced outage immediately."""
        with self._lock:
            self._outage_remaining = 0

    @property
    def in_outage(self) -> bool:
        return self._outage_remaining > 0

    # ------------------------------------------------------------------
    # Crash points (crash-recovery drills)
    # ------------------------------------------------------------------
    def arm_crash(
        self,
        point: str,
        after: int = 0,
        torn_fraction: Optional[float] = None,
    ) -> None:
        """Arm ``point`` to fire a :class:`SimulatedCrash` on a future hit.

        ``after`` skips that many hits first (0 = the very next one), so a
        drill can seed the crash mid-sequence deterministically.  With a
        ``torn_fraction`` in (0, 1) the site is ordered to persist only
        that prefix of its frame before dying -- a torn write.  Each armed
        point fires exactly once, then disarms.
        """
        if after < 0:
            raise ValueError("after must be non-negative")
        if torn_fraction is not None and not 0.0 < torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")
        with self._lock:
            self._crashes[point] = [after, torn_fraction]

    def disarm_crashes(self) -> None:
        """Disarm every pending crash point."""
        with self._lock:
            self._crashes.clear()

    def crashpoint(self, point: str) -> Optional[CrashOrder]:
        """Consult the injector at a named crash point.

        Returns None (carry on) or a :class:`CrashOrder`.  Sites that
        support torn writes inspect ``torn_fraction``, persist the ordered
        prefix, then raise :class:`SimulatedCrash`; plain sites raise
        immediately.  :func:`crash_check` wraps the plain case.
        """
        with self._lock:
            armed = self._crashes.get(point)
            if armed is None:
                return None
            if armed[0] > 0:
                armed[0] -= 1
                return None
            del self._crashes[point]
            order = CrashOrder(point=point, torn_fraction=armed[1])
            self.crash_trace.append(order)
        self.metrics.inc("crashes_injected_total", point=point)
        return order

    def crash_check(self, point: str) -> None:
        """Raise :class:`SimulatedCrash` if ``point`` is armed and due."""
        if self.crashpoint(point) is not None:
            raise SimulatedCrash(point)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def draw(self, op: str) -> Optional[str]:
        """Return the fault kind for the next call, or None (no fault)."""
        with self._lock:
            self.calls += 1
            if self._outage_remaining > 0:
                self._outage_remaining -= 1
                kind: Optional[str] = "transient_io"
            else:
                u = self._rng.random()
                kind = None
                acc = 0.0
                for candidate in FAULT_KINDS:
                    acc += getattr(self.profile, candidate)
                    if u < acc:
                        kind = candidate
                        break
            if kind is not None:
                self.trace.append(FaultEvent(self.calls, op, kind))
        if kind is not None:
            self.metrics.inc("faults_injected_total", kind=kind, op=op)
        return kind

    def pick_index(self, n: int) -> int:
        """Deterministically pick an index in ``[0, n)`` (fault targeting)."""
        with self._lock:
            return self._rng.randrange(n)

    def fault_counts(self) -> dict:
        """Injected-fault totals by kind (from the trace)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self.trace:
            counts[event.kind] += 1
        return counts


class FaultyDiskTable:
    """A :class:`DiskTable` wrapper that injects faults on the read path.

    Everything not overridden delegates to the wrapped table (metadata,
    persistence, updates, stats); ``range_query``/``fetch_boxes``/
    ``full_scan`` consult the injector first.  ``fetch_boxes`` is re-routed
    through this wrapper's ``range_query`` so every decomposed MPR box is an
    independent fault opportunity, exactly like separate SQL range queries
    against a flaky disk.
    """

    def __init__(self, inner: DiskTable, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (
            f"FaultyDiskTable({self.inner!r}, "
            f"profile={self.injector.profile.name!r})"
        )

    # ------------------------------------------------------------------
    # Faulted read path
    # ------------------------------------------------------------------
    def range_query(self, box) -> RangeResult:
        kind = self.injector.draw("range_query")
        if kind == "transient_io":
            raise TransientStorageError("injected transient I/O failure")
        result = self.inner.range_query(box)
        if kind == "latency":
            # The spike is charged to the table's aggregate stats *and* to
            # this call's io_ms, so the parallel executor's lane schedule
            # sees the per-box latency it can hide behind other boxes.
            latency_ms = self.injector.profile.latency_ms
            self.inner.charge_io(latency_ms)
            result = replace(result, io_ms=result.io_ms + latency_ms)
        elif kind == "truncate" and len(result) > 0:
            # Short read: payload loses a suffix, header row count intact
            # (len(points) != len(rowids) is the detectable signature).
            keep = self.injector.pick_index(len(result))
            result = replace(result, points=result.points[:keep])
        elif kind == "corrupt" and len(result) > 0:
            points = result.points.copy()
            row = self.injector.pick_index(len(points))
            col = self.injector.pick_index(points.shape[1])
            points[row, col] = float("nan")
            result = replace(result, points=points)
        return result

    def fetch_boxes(self, boxes) -> RangeResult:
        all_points = []
        all_rows = []
        fetched = 0
        io_total = 0.0
        for box in boxes:
            result = self.range_query(box)
            fetched += result.rows_fetched
            io_total += result.io_ms
            # Concatenate points and rowids independently: a truncated box
            # (len(points) < len(rowids)) keeps its detectable length
            # mismatch in the aggregate instead of silently losing rows.
            if len(result.points):
                all_points.append(result.points)
            if len(result.rowids):
                all_rows.append(result.rowids)
        if not all_rows and not all_points:
            empty = self.inner._empty_result()
            return RangeResult(
                points=empty.points,
                rowids=empty.rowids,
                rows_fetched=fetched,
                io_ms=io_total,
            )
        return RangeResult(
            points=(
                np.concatenate(all_points)
                if all_points
                else self.inner._empty_result().points
            ),
            rowids=(
                np.concatenate(all_rows)
                if all_rows
                else self.inner._empty_result().rowids
            ),
            rows_fetched=fetched,
            io_ms=io_total,
        )

    def full_scan(self) -> RangeResult:
        kind = self.injector.draw("full_scan")
        if kind == "transient_io":
            raise TransientStorageError("injected transient I/O failure")
        result = self.inner.full_scan()
        if kind == "latency":
            latency_ms = self.injector.profile.latency_ms
            self.inner.charge_io(latency_ms)
            result = replace(result, io_ms=result.io_ms + latency_ms)
        return result
