"""Simulated disk-resident storage.

The paper evaluates against data "stored in PostgreSQL 9.1.13 with each
dimension indexed by a standard B-tree" (Section 7).  This subpackage
reproduces that substrate in-process:

- :class:`~repro.storage.table.DiskTable` -- a heap file of points split into
  fixed-size pages, with one :class:`~repro.index.btree.BPlusTree` per
  dimension and a simple range-query planner;
- :class:`~repro.storage.costmodel.DiskCostModel` -- charges simulated
  latency for seeks and page reads so that experiments expose the paper's
  dominant cost (random access to fetch points) without real spinning rust;
- :class:`~repro.storage.pager.IOStats` -- counters for range queries,
  empty queries, seeks, pages and points read, matching the quantities
  reported in the paper's Figures 8 and 9;
- :class:`~repro.storage.backend.StorageBackend` -- the structural protocol
  every storage layer satisfies, with the stacking decorators
  (:class:`~repro.storage.backend.ResilientBackend`,
  :class:`~repro.storage.backend.InstrumentedBackend`) that compose fault
  tolerance and instrumentation over a base table.
"""

from repro.storage.backend import (
    BackendDecorator,
    InstrumentedBackend,
    ResilientBackend,
    StorageBackend,
    build_backend,
)
from repro.storage.costmodel import DiskCostModel
from repro.storage.pager import IOStats
from repro.storage.table import CorruptTableError, DiskTable, RangeResult

__all__ = [
    "BackendDecorator",
    "CorruptTableError",
    "DiskCostModel",
    "DiskTable",
    "IOStats",
    "InstrumentedBackend",
    "RangeResult",
    "ResilientBackend",
    "StorageBackend",
    "build_backend",
]

