"""Durable table state: WAL-backed writes, checkpoints, crash recovery.

:class:`DurabilityManager` gives :class:`~repro.core.dynamic.DynamicCBCS`
the PostgreSQL write path for its table updates:

1. **Log.** Every ``insert_points`` / ``delete_points`` batch is appended
   to a :class:`~repro.storage.wal.WriteAheadLog` -- and fsynced -- *before*
   it touches the :class:`~repro.storage.table.DiskTable`.  The update is
   committed the moment its WAL record is durable.
2. **Checkpoint.** Periodically (and at shutdown) the whole table is
   snapshotted atomically (checksummed ``.npz``, temp file + rename), the
   checkpoint LSN recorded, and the covered WAL segments pruned.
3. **Recover.** :meth:`recover` loads the last checkpoint, replays the WAL
   tail past its LSN (torn tails truncated, mid-file corruption loud), and
   returns a table provably equal to "checkpoint + committed updates" --
   the contract the crash drill (:mod:`repro.bench.crashdrill`) asserts
   bit-exactly against an uncrashed reference.

Directory layout::

    durability-dir/
      table.npz     last table checkpoint (atomic replace, CRC-validated)
      meta.json     {"checkpoint_lsn": N} (atomic replace)
      wal/wal-*.log update journal ({"op": "insert"|"delete"} records)

Single-writer assumption: like the engine's update path itself, the
manager serializes log-then-apply per batch; concurrent *queries* are fine
(they never touch the WAL), concurrent *updates* must be externally
serialized.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.ioutil import atomic_write_json, decode_array, encode_array
from repro.obs.metrics import NULL_METRICS
from repro.storage.table import CorruptTableError, DiskTable
from repro.storage.wal import WriteAheadLog

__all__ = ["DurabilityManager", "RecoveryReport"]

_TABLE_NAME = "table.npz"
_META_NAME = "meta.json"


@dataclass
class RecoveryReport:
    """What :meth:`DurabilityManager.recover` reconstructed, and how.

    ``replayed`` keeps the decoded tail operations (op kind + row payload)
    so the engine can reconcile its cache with updates whose in-memory
    maintenance the crash swallowed; :meth:`to_dict` serializes only the
    scalar evidence for the recovery-report artifact.
    """

    checkpoint_lsn: int
    last_lsn: int
    replayed_ops: int
    tail_status: str
    live_rows: int
    #: decoded tail ops: ``[("insert"|"delete", (k, d) rows array), ...]``
    replayed: List[Tuple[str, np.ndarray]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "checkpoint_lsn": self.checkpoint_lsn,
            "last_lsn": self.last_lsn,
            "replayed_ops": self.replayed_ops,
            "tail_status": self.tail_status,
            "live_rows": self.live_rows,
        }


class DurabilityManager:
    """WAL + checkpoint + recovery for one engine's table updates.

    ``checkpoint_every=N`` checkpoints after every N logged update batches
    (None leaves checkpointing to explicit :meth:`checkpoint` calls);
    ``fsync=False`` trades commit durability for speed in tests.  The
    optional ``injector`` threads seeded crash points into every commit
    site (``wal.append``, ``wal.fsync``, ``table.checkpoint``).
    """

    def __init__(
        self,
        directory,
        fsync: bool = True,
        checkpoint_every: Optional[int] = 64,
        injector=None,
        metrics=None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.table_path = self.directory / _TABLE_NAME
        self.meta_path = self.directory / _META_NAME
        self.checkpoint_every = checkpoint_every
        self.injector = injector
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.wal = WriteAheadLog(
            self.directory / "wal",
            fsync=fsync,
            injector=injector,
            metrics=self.metrics,
        )
        # Checkpoints prune covered segments, so a reopened WAL may hold no
        # record of the LSN horizon -- restore it from the checkpoint meta,
        # or fresh appends would reuse LSNs that replay then skips.
        self.wal.last_lsn = max(self.wal.last_lsn, self._checkpoint_lsn())
        self._ops_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Logging (call BEFORE applying the update to the table)
    # ------------------------------------------------------------------
    def log_insert(self, rows: np.ndarray, start: int) -> int:
        """Journal one insert batch; returns its LSN (durable on return).

        ``start`` is the heap size the batch will be appended at.  Replay
        uses it to recognize batches already covered by a newer snapshot
        (a crash can land between the snapshot replace and the meta
        replace), making insert replay idempotent.
        """
        return self._log(
            {"op": "insert", "start": int(start), "rows": encode_array(rows)}
        )

    def log_delete(self, rowids, coords: np.ndarray) -> int:
        """Journal one delete batch (ids + their coordinates, so recovery
        and cache reconciliation never need the pre-delete heap)."""
        return self._log(
            {
                "op": "delete",
                "rowids": [int(r) for r in np.atleast_1d(rowids)],
                "rows": encode_array(coords),
            }
        )

    def _log(self, payload: dict) -> int:
        lsn = self.wal.append(payload)
        self._ops_since_checkpoint += 1
        return lsn

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, table: DiskTable) -> None:
        """Snapshot ``table`` atomically, then prune the covered WAL.

        Commit order mirrors :meth:`DiskCacheBackend.checkpoint
        <repro.core.cache_backend.DiskCacheBackend.checkpoint>`: table
        replace -> meta replace -> rotate + prune.  A crash between steps
        replays a few extra records onto the newer snapshot; deletes are
        idempotent and inserts are covered by the checkpoint-LSN horizon,
        so recovery still converges.
        """
        crashpoint = (
            self.injector.crash_check if self.injector is not None else None
        )
        lsn = self.wal.last_lsn
        table.save(self.table_path, crashpoint=crashpoint)
        atomic_write_json(self.meta_path, {"checkpoint_lsn": lsn})
        self.wal.rotate()
        self.wal.prune(lsn)
        self._ops_since_checkpoint = 0
        self.metrics.inc("table_checkpoints_total")

    def ensure_checkpoint(self, table: DiskTable) -> None:
        """Write the base checkpoint if this directory has none yet.

        Recovery rebuilds "checkpoint + tail"; without a base snapshot the
        initial dataset would be unrecoverable, so a durable engine seeds
        one the moment it adopts a fresh directory.
        """
        if not self.table_path.exists():
            self.checkpoint(table)

    def maybe_checkpoint(self, table: DiskTable) -> bool:
        """Auto-checkpoint once ``checkpoint_every`` batches accumulated."""
        if (
            self.checkpoint_every is not None
            and self._ops_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint(table)
            return True
        return False

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _checkpoint_lsn(self) -> int:
        try:
            with open(self.meta_path) as handle:
                return int(json.load(handle).get("checkpoint_lsn", 0))
        except (OSError, ValueError):
            return 0

    def recover(self) -> Tuple[DiskTable, RecoveryReport]:
        """Rebuild the table: last checkpoint + WAL tail replay.

        Raises :class:`~repro.storage.table.CorruptTableError` when the
        checkpoint is corrupt or absent -- unlike the cache, the table is
        the source of truth and cannot be cold-started from nothing.
        """
        if not self.table_path.exists():
            raise CorruptTableError(
                f"no table checkpoint at {self.table_path}; nothing to recover"
            )
        table = DiskTable.load(self.table_path)
        checkpoint_lsn = self._checkpoint_lsn()
        replayed: List[Tuple[str, np.ndarray]] = []
        for record in self.wal.replay(after_lsn=checkpoint_lsn):
            payload = record.payload
            op = payload.get("op")
            rows = decode_array(payload["rows"])
            if op == "insert":
                start = int(payload.get("start", table.n))
                if start > table.n:
                    raise CorruptTableError(
                        f"WAL record lsn={record.lsn} appends at heap "
                        f"offset {start} but the table holds {table.n} "
                        "rows -- a batch is missing"
                    )
                if start == table.n:
                    table.append(rows)
                # else: the batch is already inside the checkpoint (crash
                # landed between snapshot and meta replace) -- skip.
            elif op == "delete":
                # Tombstoning is idempotent: rows already dead (a crash
                # *after* apply, checkpoint behind) just stay dead.
                table.delete(np.asarray(payload["rowids"], dtype=np.int64))
            else:
                raise CorruptTableError(
                    f"WAL record lsn={record.lsn} has unknown op {op!r}"
                )
            replayed.append((op, rows))
        report = RecoveryReport(
            checkpoint_lsn=checkpoint_lsn,
            last_lsn=self.wal.last_lsn,
            replayed_ops=len(replayed),
            # A torn tail is truncated the moment the WAL reopens, so the
            # replay above always sees a clean log; report what the open
            # found -- that truncation *is* the torn-write recovery.
            tail_status=(
                "torn"
                if self.wal.opened_tail_status == "torn"
                else self.wal.tail_status
            ),
            live_rows=table.live_count,
            replayed=replayed,
        )
        if replayed:
            self.metrics.inc("table_recovered_ops_total", len(replayed))
        return table, report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, table: Optional[DiskTable] = None) -> None:
        """Optionally checkpoint ``table`` one last time, then close."""
        if table is not None:
            self.checkpoint(table)
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurabilityManager({str(self.directory)!r}, "
            f"last_lsn={self.wal.last_lsn})"
        )
