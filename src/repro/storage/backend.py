"""The formal storage-backend protocol and its stacking decorators.

The CBCS engine does all of its I/O through :class:`StorageBackend`, a
structural protocol satisfied by :class:`~repro.storage.table.DiskTable`,
:class:`~repro.storage.faults.FaultyDiskTable`, and the decorators below.
Cross-cutting storage concerns -- fault tolerance, instrumentation -- are
composed by *wrapping* rather than branching inside the engine:

    DiskTable                      the simulated disk
    -> FaultyDiskTable             (optional) deterministic fault injection
    -> ResilientBackend            (optional) validation + retry + breaker
    -> InstrumentedBackend         (optional) spans + counters per call
    -> CBCS / Executor             issues plain ``range_query(box)`` calls

Order matters: faults are injected *below* the resilience decorator (so
retries re-draw the fault schedule, like re-issuing a real SQL query), and
instrumentation sits *outside* resilience (so a retried call shows up as
one logical backend operation).  :meth:`repro.core.cbcs.CBCS.__init__`
builds exactly this stack from its ``resilience``/``obs`` flags.

``retry_state`` threading: the executor passes the query's shared
:class:`~repro.resilience.retry.RetryState` as a keyword argument;
:class:`ResilientBackend` consumes it (per-box retry against one per-query
budget) and the layers below it never see the kwarg.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

from repro.geometry.box import Box
from repro.obs import NULL_OBS
from repro.resilience.retry import RetryState
from repro.resilience.validate import validate_range_result
from repro.storage.table import RangeResult


@runtime_checkable
class StorageBackend(Protocol):
    """What the executor needs from a storage layer.

    Structural: anything with these members qualifies -- ``DiskTable``,
    ``FaultyDiskTable``, and the decorators in this module all do.
    ``estimate_count`` must be free of (simulated) disk I/O, because the
    planner calls it while planning.
    """

    @property
    def ndim(self) -> int: ...

    def range_query(self, box: Box) -> RangeResult: ...

    def fetch_boxes(self, boxes: Iterable[Box]) -> RangeResult: ...

    def estimate_count(self, dim: int, lo: float, hi: float) -> int: ...


def unwrap(backend) -> object:
    """Peel every decorator off a backend stack, returning the base table."""
    while hasattr(backend, "inner"):
        backend = backend.inner
    return backend


class BackendDecorator:
    """Base class for stacking backends: delegate everything to ``inner``."""

    def __init__(self, inner):
        self.inner = inner

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class ResilientBackend(BackendDecorator):
    """Validation + retry + circuit breaker around every backend call.

    Each ``range_query`` is one protected operation: the breaker admits it
    *before* any storage (or fault-injector) activity, the result is
    validated (truncation/corruption become retryable errors), retries
    re-issue the call against the shared per-query budget, and the breaker
    records one success/failure for the whole retried unit.
    """

    def __init__(self, inner, resilience, metrics=None):
        super().__init__(inner)
        self.resilience = resilience
        self.metrics = metrics

    def _guarded(self, fn, retry_state: Optional[RetryState], op: str):
        from repro.resilience.retry import call_with_retry

        res = self.resilience
        state = retry_state if retry_state is not None else res.new_state()
        # An already-expired per-request deadline fails fast without
        # touching the disk or charging the breaker: rejected work is not
        # evidence of storage health either way.
        if state.deadline is not None:
            state.deadline.check(op)
        res.breaker.allow()  # raises CircuitOpenError while open

        def attempt():
            result = fn()
            validate_range_result(result)
            return result

        try:
            result = call_with_retry(attempt, state, metrics=self.metrics, op=op)
        except Exception:
            res.breaker.record_failure()
            raise
        res.breaker.record_success()
        if state.deadline is not None:
            # Simulated disk time counts against the request budget just
            # like real wall-clock time; expiry surfaces at the next box.
            state.deadline.charge(result.io_ms)
        return result

    def range_query(
        self, box: Box, *, retry_state: Optional[RetryState] = None
    ) -> RangeResult:
        return self._guarded(
            lambda: self.inner.range_query(box), retry_state, "fetch"
        )

    def fetch_boxes(
        self, boxes: Iterable[Box], *, retry_state: Optional[RetryState] = None
    ) -> RangeResult:
        # Each decomposed box is its own protected operation, exactly like
        # the executor's per-box path.
        from dataclasses import replace

        import numpy as np

        parts = [
            self.range_query(box, retry_state=retry_state) for box in boxes
        ]
        if not parts:
            return unwrap(self.inner)._empty_result()
        if len(parts) == 1:
            return parts[0]
        points = [p.points for p in parts if len(p.points)]
        rowids = [p.rowids for p in parts if len(p.rowids)]
        empty = unwrap(self.inner)._empty_result()
        return replace(
            empty,
            points=np.concatenate(points) if points else empty.points,
            rowids=np.concatenate(rowids) if rowids else empty.rowids,
            rows_fetched=sum(p.rows_fetched for p in parts),
            io_ms=sum(p.io_ms for p in parts),
        )


class InstrumentedBackend(BackendDecorator):
    """Per-call observability on top of any backend.

    Adds a ``backend.range_query`` counter (labeled by the logical outcome)
    and forwards ``retry_state`` only when set, so a resilience-free stack
    underneath never sees the kwarg.
    """

    def __init__(self, inner, obs=None):
        super().__init__(inner)
        self.obs = NULL_OBS if obs is None else obs

    def range_query(
        self, box: Box, *, retry_state: Optional[RetryState] = None
    ) -> RangeResult:
        m = self.obs.metrics
        try:
            if retry_state is not None:
                result = self.inner.range_query(box, retry_state=retry_state)
            else:
                result = self.inner.range_query(box)
        except Exception as exc:
            m.inc("backend_range_queries_total", outcome=type(exc).__name__)
            # Zero-duration event span: joins the failure to the query via
            # the bound query_id (stamped by the tracer) for correlation.
            self.obs.tracer.record("backend.error", 0.0, error=type(exc).__name__)
            raise
        m.inc("backend_range_queries_total", outcome="ok")
        return result

    def fetch_boxes(
        self, boxes: Iterable[Box], *, retry_state: Optional[RetryState] = None
    ) -> RangeResult:
        if retry_state is not None:
            return self.inner.fetch_boxes(boxes, retry_state=retry_state)
        return self.inner.fetch_boxes(boxes)


def build_backend(table, resilience=None, obs=None):
    """Compose the canonical decorator stack over a base table.

    ``table`` may already be fault-wrapped; ``resilience`` (a
    :class:`repro.resilience.Resilience` or None) adds the resilient layer,
    and an enabled ``obs`` adds instrumentation outermost.
    """
    backend = table
    if resilience is not None:
        metrics = obs.metrics if obs is not None and obs.enabled else None
        backend = ResilientBackend(backend, resilience, metrics=metrics)
    if obs is not None and obs.enabled:
        backend = InstrumentedBackend(backend, obs)
    return backend
