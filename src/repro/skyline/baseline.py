"""The naive constrained-skyline plan of Börzsönyi et al. [3].

"The naive approach ... is to execute a range query to fetch points
satisfying the constraints, and then compute the skyline over those points
using an efficient skyline algorithm" (paper Section 1).  The paper's
Baseline uses SFS for the skyline stage, as do we.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.table import DiskTable


def naive_constrained_skyline(
    table: DiskTable, constraints: Constraints
) -> Tuple[np.ndarray, int]:
    """Fetch ``S_C`` with one range query and run SFS over it.

    Returns ``(skyline_points, rows_fetched)``.
    """
    result = table.range_query(constraints.region())
    skyline = result.points[sfs_skyline(result.points)]
    return skyline, result.rows_fetched


class BaselineMethod:
    """Query-method wrapper around the naive plan for the harness."""

    name = "Baseline"

    def __init__(self, table: DiskTable, obs=None):
        self.table = table
        self.obs = NULL_OBS if obs is None else obs

    def query(self, constraints: Constraints) -> QueryOutcome:
        """Answer one constrained skyline query."""
        obs = self.obs
        watch = Stopwatch(tracer=obs.tracer)
        before = self.table.stats.snapshot()
        with obs.tracer.span("baseline.query"):
            with watch.stage("fetch_wall"):
                result = self.table.range_query(constraints.region())
            with watch.stage("skyline"):
                skyline = result.points[sfs_skyline(result.points)]
        io = self.table.stats.delta_since(before)
        watch.timings.fetch_io_ms = io.simulated_io_ms
        outcome = QueryOutcome(
            skyline=skyline, method=self.name, timings=watch.timings, io=io
        )
        obs.record_outcome(outcome)
        return outcome
