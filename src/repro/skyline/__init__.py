"""Skyline algorithms.

In-memory algorithms (operating on an ``(n, d)`` array, returning the indices
of skyline rows):

- :func:`~repro.skyline.reference.brute_force_skyline` -- the O(n^2)
  definition, used as the oracle in tests;
- :func:`~repro.skyline.bnl.bnl_skyline` -- Block-Nested-Loops [3];
- :func:`~repro.skyline.sfs.sfs_skyline` -- Sort-Filter Skyline [8], the
  algorithm the paper uses inside both its Baseline and CBCS;
- :func:`~repro.skyline.dandc.dandc_skyline` -- divide-and-conquer [3],
  demonstrating CBCS's independence of the skyline algorithm (Section 7.3).

Index/disk-based:

- :func:`~repro.skyline.bbs.bbs_skyline` -- Branch-and-Bound Skyline [19] on
  an R-tree, the I/O-optimal state of the art for constrained skylines
  without caching, with constraint pruning;
- :class:`~repro.skyline.baseline.BaselineMethod` -- the naive plan of [3]:
  one range query for ``S_C`` followed by SFS;
- :func:`~repro.skyline.nn_method.nn_constrained_skyline` -- the NN method
  [15], the pre-BBS index-based approach (kept to reproduce the related-work
  claim that BBS strictly dominates it).
"""

from repro.skyline.baseline import BaselineMethod, naive_constrained_skyline
from repro.skyline.bbs import BBSMethod, BBSResult, BBSScan, bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.nn_method import NNMethod, nn_constrained_skyline
from repro.skyline.dandc import dandc_skyline
from repro.skyline.reference import brute_force_skyline, is_skyline
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "BBSMethod",
    "BBSResult",
    "BBSScan",
    "BaselineMethod",
    "NNMethod",
    "bbs_skyline",
    "bnl_skyline",
    "bskytree_skyline",
    "dandc_skyline",
    "brute_force_skyline",
    "is_skyline",
    "naive_constrained_skyline",
    "nn_constrained_skyline",
    "sfs_skyline",
]
