"""Brute-force skyline, the executable form of Definition 1.

Quadratic in the input size; used as the test oracle that every other
algorithm (BNL, SFS, BBS, CBCS) must agree with.
"""

from __future__ import annotations

import numpy as np


def brute_force_skyline(points: np.ndarray) -> np.ndarray:
    """Return the indices of the skyline rows of ``points``.

    A row is in the skyline iff no other row dominates it.  Exact coordinate
    duplicates dominate neither each other nor themselves, so all copies of
    an undominated point are returned (standard skyline semantics).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        p = points[i]
        le = np.all(points <= p, axis=1)
        lt = np.any(points < p, axis=1)
        if np.any(le & lt):
            keep[i] = False
    return np.flatnonzero(keep)


def is_skyline(points: np.ndarray, candidate: np.ndarray) -> bool:
    """Return True if ``candidate`` rows are exactly the skyline of
    ``points`` (as multisets of coordinates)."""
    points = np.asarray(points, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    expected = points[brute_force_skyline(points)]
    if len(expected) != len(candidate):
        return False
    return _same_multiset(expected, candidate)


def _same_multiset(a: np.ndarray, b: np.ndarray) -> bool:
    a_sorted = a[np.lexsort(a.T[::-1])]
    b_sorted = b[np.lexsort(b.T[::-1])]
    return bool(np.array_equal(a_sorted, b_sorted))
