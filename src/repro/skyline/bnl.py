"""Block-Nested-Loops skyline (Börzsönyi et al. [3]).

The original skyline algorithm: stream the input against a window of
incomparable points, dropping dominated candidates and evicting window
points that a new candidate dominates.  Included as a secondary comparator
and cross-check for SFS; the window fits in memory throughout (the paper's
setting -- its inputs to the skyline stage are already range-query results).
"""

from __future__ import annotations

from typing import List

import numpy as np


def bnl_skyline(points: np.ndarray) -> np.ndarray:
    """Return the indices of the skyline rows of ``points``."""
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    window: List[int] = []
    window_pts = np.empty((0, points.shape[1]))
    for i in range(n):
        p = points[i]
        if len(window):
            le = np.all(window_pts <= p, axis=1)
            lt = np.any(window_pts < p, axis=1)
            if np.any(le & lt):
                continue  # p dominated by a window point
            ge = np.all(window_pts >= p, axis=1)
            gt = np.any(window_pts > p, axis=1)
            evict = ge & gt
            if np.any(evict):
                keep = ~evict
                window = [w for w, k in zip(window, keep) if k]
                window_pts = window_pts[keep]
        window.append(i)
        window_pts = np.vstack([window_pts, p])
    return np.array(window, dtype=np.int64)
