"""Branch-and-Bound Skyline (Papadias et al. [19]) with constraints.

BBS is "the best known technique ... which uses an R-tree index and a
heap-based priority queue to guide the search for skyline points, while
pruning paths in an R-tree if outside the constraints" (paper Section 1).
It is I/O-optimal among index-based methods and is the state-of-the-art
comparator in the paper's experiments.

Algorithm: entries (nodes or points) are expanded in ascending *mindist*
order, where mindist is the coordinate sum of the entry's lower corner
clipped into the constraint region.  An entry is pruned when its MBR misses
the constraint region or when its clipped lower corner is strictly dominated
by an already-found skyline point; because mindist is monotone, a point
popped undominated is guaranteed final.

Each popped R-tree node models one page read; the count is returned so the
caller can charge simulated random-access I/O for it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.constraints import Constraints
from repro.index.rtree import RTree
from repro.obs import NULL_OBS
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.costmodel import DiskCostModel


@dataclass
class BBSResult:
    """Skyline points plus the number of R-tree nodes read."""

    skyline: np.ndarray
    nodes_accessed: int
    heap_pushes: int


class BBSScan:
    """A *progressive* constrained-BBS scan.

    BBS's defining property [19] is progressiveness: skyline points are
    emitted in ascending mindist (coordinate-sum) order as soon as they are
    confirmed, with only as much R-tree work as needed so far.  Iterate the
    scan to receive points one at a time; :attr:`nodes_accessed` and
    :attr:`heap_pushes` are live counters, so the I/O cost of a partial
    scan (e.g. a top-k preview in a UI) can be measured directly.
    """

    def __init__(self, tree: RTree, constraints: Optional[Constraints] = None):
        ndim = tree.ndim
        if constraints is not None and constraints.ndim != ndim:
            raise ValueError("constraints dimensionality does not match the tree")
        self._c_lo = constraints.lo if constraints is not None else None
        self._c_hi = constraints.hi if constraints is not None else None
        self._ndim = ndim
        self._sky = np.empty((0, ndim))
        self._tiebreak = itertools.count()
        self._heap: list = []
        self.nodes_accessed = 0
        self.heap_pushes = 0

        root = tree.root
        if root.lo is not None and (
            self._c_lo is None
            or (np.all(root.lo <= self._c_hi) and np.all(self._c_lo <= root.hi))
        ):
            self._push(root, None)

    # -- iterator protocol ------------------------------------------------
    def __iter__(self) -> "BBSScan":
        return self

    def __next__(self) -> np.ndarray:
        while self._heap:
            _, _, entry, point = heapq.heappop(self._heap)
            if point is not None:
                if self._corner_dominated(point):
                    continue
                self._sky = np.vstack([self._sky, point])
                return point
            node = entry
            self.nodes_accessed += 1
            if self._corner_dominated(node.lo):
                continue
            if node.is_leaf:
                pts = node.entry_lo
                if self._c_lo is not None:
                    keep = np.all(pts >= self._c_lo, axis=1) & np.all(
                        pts <= self._c_hi, axis=1
                    )
                    pts = pts[keep]
                for p in pts:
                    if not self._corner_dominated(p):
                        self._push(None, p)
            else:
                for child in node.children:
                    if self._c_lo is not None and not (
                        np.all(child.lo <= self._c_hi)
                        and np.all(self._c_lo <= child.hi)
                    ):
                        continue
                    if not self._corner_dominated(child.lo):
                        self._push(child, None)
        raise StopIteration

    # -- internals ---------------------------------------------------------
    def _push(self, node, point) -> None:
        lo = point if point is not None else node.lo
        heapq.heappush(
            self._heap, (self._mindist(lo), next(self._tiebreak), node, point)
        )
        self.heap_pushes += 1

    def _mindist(self, lo: np.ndarray) -> float:
        if self._c_lo is None:
            return float(lo.sum())
        return float(np.maximum(lo, self._c_lo).sum())

    def _corner_dominated(self, lo: np.ndarray) -> bool:
        if not len(self._sky):
            return False
        best = lo if self._c_lo is None else np.maximum(lo, self._c_lo)
        le = np.all(self._sky <= best, axis=1)
        lt = np.any(self._sky < best, axis=1)
        return bool(np.any(le & lt))


def bbs_skyline(tree: RTree, constraints: Optional[Constraints] = None) -> BBSResult:
    """Run constrained BBS over an R-tree of points to completion.

    ``constraints`` of None computes the unconstrained skyline.  Use
    :class:`BBSScan` directly to consume skyline points progressively.
    """
    scan = BBSScan(tree, constraints)
    skyline_rows = list(scan)
    if skyline_rows:
        result = np.array(skyline_rows)
    else:
        result = np.empty((0, tree.ndim))
    return BBSResult(
        skyline=result,
        nodes_accessed=scan.nodes_accessed,
        heap_pushes=scan.heap_pushes,
    )


class BBSMethod:
    """Query-method wrapper around BBS for the benchmark harness.

    Builds (or accepts) an STR-packed R-tree over the dataset and charges
    one random page read per node access under the given cost model.
    """

    name = "BBS"

    def __init__(
        self,
        data: np.ndarray,
        cost_model: Optional[DiskCostModel] = None,
        max_entries: int = 128,
        tree: Optional[RTree] = None,
        obs=None,
    ):
        self.cost_model = cost_model or DiskCostModel()
        # explicit None check: an empty RTree is falsy (len 0)
        if tree is None:
            tree = RTree.bulk_load_points(
                np.asarray(data, dtype=float), max_entries=max_entries
            )
        self.tree = tree
        self.obs = NULL_OBS if obs is None else obs

    def query(self, constraints: Constraints) -> QueryOutcome:
        """Answer one constrained skyline query."""
        obs = self.obs
        watch = Stopwatch(tracer=obs.tracer)
        with obs.tracer.span("bbs.query") as span:
            with watch.stage("fetch_wall"):
                result = bbs_skyline(self.tree, constraints)
            if obs.enabled:
                span.set(
                    nodes_accessed=result.nodes_accessed,
                    heap_pushes=result.heap_pushes,
                    skyline=len(result.skyline),
                )
        io_ms = result.nodes_accessed * self.cost_model.fetch_cost_ms(1, 1)
        watch.timings.fetch_io_ms = io_ms
        outcome = QueryOutcome(
            skyline=result.skyline,
            method=self.name,
            timings=watch.timings,
            nodes_accessed=result.nodes_accessed,
        )
        outcome.io.pages_read = result.nodes_accessed
        outcome.io.seeks = result.nodes_accessed
        outcome.io.simulated_io_ms = io_ms
        if obs.enabled:
            obs.metrics.inc("bbs_heap_pushes_total", result.heap_pushes)
        obs.record_outcome(outcome)
        return outcome
