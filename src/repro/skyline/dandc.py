"""Divide-and-conquer skyline (Börzsönyi et al. [3], basic variant).

The third in-memory skyline algorithm of the library (besides BNL and SFS),
used to demonstrate the paper's claim that CBCS's benefit "is independent of
the skyline algorithm used" (Section 7.3): any of the three can be plugged
into the engine's ``skyline_algorithm`` parameter.

The classic scheme: split the input by the median of one dimension into a
strictly-lower part ``P1`` and a strictly-upper part ``P2`` (ties stay in
``P1``), recurse on both, then merge.  Because every ``P2`` point is
strictly larger than every ``P1`` point in the split dimension, no ``P2``
point can dominate a ``P1`` point; the merge only filters ``P2``'s local
skyline against ``P1``'s.  (This is the simple quadratic-merge variant, not
the asymptotically optimal multidimensional merge -- the inputs here are
range-query results, where simplicity wins.)
"""

from __future__ import annotations

import numpy as np

from repro.skyline.bnl import bnl_skyline

_BASE_CASE = 64


def dandc_skyline(points: np.ndarray) -> np.ndarray:
    """Return the indices of the skyline rows of ``points``."""
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        return np.empty(0, dtype=np.int64)
    indices = _dandc(points, np.arange(len(points), dtype=np.int64), dim=0)
    return np.sort(indices)


def _dandc(points: np.ndarray, indices: np.ndarray, dim: int) -> np.ndarray:
    n = len(indices)
    if n <= _BASE_CASE:
        local = points[indices]
        return indices[bnl_skyline(local)]
    ndim = points.shape[1]

    # Find a dimension along which the set actually splits; a set constant
    # in every dimension is a block of exact duplicates (all skyline).
    for probe in range(ndim):
        d = (dim + probe) % ndim
        column = points[indices, d]
        median = float(np.median(column))
        low_mask = column <= median
        if low_mask.all() or not low_mask.any():
            # Median equals the max (or min): split strictly instead.
            low_mask = column < median
            if not low_mask.any():
                continue
        low = indices[low_mask]
        high = indices[~low_mask]
        sky_low = _dandc(points, low, (d + 1) % ndim)
        sky_high = _dandc(points, high, (d + 1) % ndim)
        return np.concatenate(
            [sky_low, _filter_dominated(points, sky_high, sky_low)]
        )
    return indices  # all coordinates identical: mutual non-dominance


def _filter_dominated(
    points: np.ndarray, candidates: np.ndarray, dominators: np.ndarray
) -> np.ndarray:
    """Drop candidate rows dominated by any dominator row."""
    if len(candidates) == 0 or len(dominators) == 0:
        return candidates
    cand = points[candidates]
    keep = np.ones(len(candidates), dtype=bool)
    for d_idx in dominators:
        d_row = points[d_idx]
        le = np.all(d_row <= cand, axis=1)
        lt = np.any(d_row < cand, axis=1)
        keep &= ~(le & lt)
        if not keep.any():
            break
    return candidates[keep]
