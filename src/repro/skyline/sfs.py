"""Sort-Filter Skyline (Chomicki et al. [8]).

The algorithm the paper runs "in both the Baseline method and our own CBCS
method" (Section 7).  The input is first sorted by a monotone scoring
function; in that order no point can dominate an earlier one, so a single
pass against a window of confirmed skyline points suffices and the window is
never revised.

We use the coordinate sum as the monotone score (any strictly monotone
function works; the original paper proposes entropy).  Dominance tests
against the window are vectorized, giving O(n * |skyline|) numpy work.
"""

from __future__ import annotations

import numpy as np


def sfs_skyline(points: np.ndarray) -> np.ndarray:
    """Return the indices of the skyline rows of ``points``."""
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    d = points.shape[1]

    # Sort by coordinate sum (monotone: a dominator's sum is never larger),
    # breaking exact sum ties lexicographically by coordinates.  The
    # tie-break matters: floating-point absorption can give a dominator and
    # its victim identical sums, and lexicographic order still places the
    # dominator first (it is <= in every coordinate).
    keys = tuple(points[:, i] for i in range(d - 1, -1, -1)) + (
        points.sum(axis=1),
    )
    order = np.lexsort(keys)
    ordered = points[order]

    window = np.empty((n, d))  # preallocated; first w rows are the skyline
    window_idx = np.empty(n, dtype=np.int64)
    w = 0
    for pos in range(n):
        p = ordered[pos]
        if w:
            view = window[:w]
            le = np.all(view <= p, axis=1)
            if np.any(le & np.any(view < p, axis=1)):
                continue
        window[w] = p
        window_idx[w] = order[pos]
        w += 1
    return np.sort(window_idx[:w])
