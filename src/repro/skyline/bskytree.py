"""BSkyTree-style lattice-partitioned skyline (Lee & Hwang [16], lite).

The paper singles this algorithm out: "more complex skyline algorithms,
e.g., BSkyTree [16], might produce faster overall runtimes", while arguing
CBCS's benefit is independent of the choice (Section 7).  This module
implements the algorithm's core ideas in a documented "lite" form so that
claim can be exercised with a fourth in-memory algorithm:

1. **Balanced pivot selection** -- pick a skyline point of the current
   subset whose dominance region prunes a large, balanced share of the
   space (here: among the sum-sorted incomparable prefix, maximize the
   normalized volume of the region it dominates).
2. **Lattice partitioning** -- assign every point a ``d``-bit code, bit
   ``i`` set iff ``p[i] >= pivot[i]``.  Code ``2^d - 1`` is the pivot's
   dominance region: everything there except exact duplicates of the pivot
   is discarded wholesale.  Code ``0`` is provably empty (such a point
   would dominate the pivot).
3. **Recursion + lattice-guided merge** -- each partition's skyline is
   computed recursively; a point with code ``c`` can only be dominated by
   points whose code is a *bitwise subset* of ``c``, so the merge filters
   each partition only against the partitions below it in the subset
   lattice.

Differences from the full BSkyTree: no incremental skytree structure and a
simpler pivot scoring -- the asymptotics of the partition-and-prune scheme
are preserved, the constant factors of the original are not.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.skyline.bnl import bnl_skyline

_BASE_CASE = 64
_PIVOT_SCAN = 32


def bskytree_skyline(points: np.ndarray) -> np.ndarray:
    """Return the indices of the skyline rows of ``points``."""
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        return np.empty(0, dtype=np.int64)
    indices = _recurse(points, np.arange(len(points), dtype=np.int64))
    return np.sort(indices)


def _recurse(points: np.ndarray, indices: np.ndarray) -> np.ndarray:
    if len(indices) <= _BASE_CASE:
        return indices[bnl_skyline(points[indices])]
    ndim = points.shape[1]
    subset = points[indices]

    pivot_pos = _select_pivot(subset)
    pivot = subset[pivot_pos]

    codes = np.zeros(len(indices), dtype=np.int64)
    for i in range(ndim):
        codes |= (subset[:, i] >= pivot[i]).astype(np.int64) << i
    full = (1 << ndim) - 1

    # The full-code partition is dominated by the pivot except for exact
    # duplicates of the pivot itself.
    full_mask = codes == full
    duplicates = full_mask & np.all(subset == pivot, axis=1)

    partitions: Dict[int, np.ndarray] = {}
    for code in np.unique(codes):
        code = int(code)
        if code == full:
            continue
        partitions[code] = indices[codes == code]

    local: Dict[int, np.ndarray] = {
        code: _recurse(points, members) for code, members in partitions.items()
    }
    local[full] = indices[duplicates]  # pivot + its duplicates survive

    result: List[np.ndarray] = []
    for code, sky_idx in local.items():
        if len(sky_idx) == 0:
            continue
        survivors = sky_idx
        for other, other_sky in local.items():
            if other == code or len(other_sky) == 0:
                continue
            if other & ~code:
                continue  # not a subset: cannot dominate anything in `code`
            survivors = _filter_against(points, survivors, other_sky)
            if len(survivors) == 0:
                break
        result.append(survivors)
    return np.concatenate(result) if result else np.empty(0, dtype=np.int64)


def _select_pivot(subset: np.ndarray) -> int:
    """Pick a skyline point of ``subset`` with high, balanced pruning power.

    Scans the coordinate-sum-sorted prefix, keeps the mutually incomparable
    ones (guaranteed skyline points), and returns the one whose dominance
    region covers the largest normalized volume of the subset's bounding
    box.
    """
    lo = subset.min(axis=0)
    hi = subset.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    order = np.argsort(subset.sum(axis=1), kind="stable")[:_PIVOT_SCAN]
    best_pos, best_score = int(order[0]), -1.0
    window: List[np.ndarray] = []
    for pos in order:
        p = subset[pos]
        if any(np.all(w <= p) and np.any(w < p) for w in window):
            continue
        window.append(p)
        score = float(np.prod((hi - p) / span))
        if score > best_score:
            best_pos, best_score = int(pos), score
    return best_pos


def _filter_against(
    points: np.ndarray, candidates: np.ndarray, dominators: np.ndarray
) -> np.ndarray:
    cand = points[candidates]
    keep = np.ones(len(candidates), dtype=bool)
    for d_idx in dominators:
        d_row = points[d_idx]
        le = np.all(d_row <= cand, axis=1)
        lt = np.any(d_row < cand, axis=1)
        keep &= ~(le & lt)
        if not keep.any():
            break
    return candidates[keep]
