"""Skyline cardinality estimation (the role of the paper's citation [4]).

Chaudhuri et al. "estimate the cardinality of (constrained) skylines in a
DBMS and can be used to assess which skyline algorithm to apply in the
naive approach" (paper Section 2).  This module provides the classical
estimator for statistically independent dimensions plus a small advisor.

For ``n`` i.i.d. points with continuous independent coordinates, the
expected number of skyline (minima) points satisfies the classic recurrence

    V(n, 1) = 1,        V(n, d) = sum_{k=1..n} V(k, d-1) / k,

which evaluates to generalized harmonic sums: ``V(n, 2) = H_n ~ ln n`` and
in general ``V(n, d) ~ (ln n)^(d-1) / (d-1)!``.  Correlated data has far
smaller skylines and anti-correlated far larger ones; the estimator is the
independent-case reference the paper's Figure 5 intuition is built on.
"""

from __future__ import annotations

import math

import numpy as np


def expected_skyline_size(n: int, ndim: int) -> float:
    """Return the expected skyline size of ``n`` i.i.d. independent points.

    Exact evaluation of the harmonic recurrence in O(n * ndim) vectorized
    work; use :func:`expected_skyline_size_asymptotic` for very large ``n``.
    """
    if n < 0 or ndim < 1:
        raise ValueError("n must be non-negative and ndim positive")
    if n == 0:
        return 0.0
    if ndim == 1:
        return 1.0
    inv_k = 1.0 / np.arange(1, n + 1)
    level = np.ones(n)  # V(k, 1) for k = 1..n
    for _ in range(ndim - 1):
        level = np.cumsum(level * inv_k)
    return float(level[-1])


def expected_skyline_size_asymptotic(n: int, ndim: int) -> float:
    """Return the asymptotic estimate ``(ln n)^(d-1) / (d-1)!``."""
    if n < 0 or ndim < 1:
        raise ValueError("n must be non-negative and ndim positive")
    if n <= 1:
        return float(min(n, 1))
    return math.log(n) ** (ndim - 1) / math.factorial(ndim - 1)


def constrained_skyline_estimate(
    n: int, ndim: int, selectivity: float
) -> float:
    """Estimate ``|Sky(S, C)|`` for a constraint region keeping a fraction
    ``selectivity`` of independent data: the skyline of the constrained
    subset behaves like the skyline of ``n * selectivity`` points."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be within [0, 1]")
    return expected_skyline_size(max(0, round(n * selectivity)), ndim)


def advise_skyline_algorithm(n: int, ndim: int) -> str:
    """Advise an in-memory algorithm for the naive plan, per [4]'s use.

    A small expected skyline keeps BNL's window tiny (cheap, no sort);
    otherwise SFS's presorting pays for itself by never revising the window.
    """
    if n <= 0:
        return "bnl"
    expected = expected_skyline_size(min(n, 1_000_000), ndim)
    return "bnl" if expected <= 0.01 * n + 10 else "sfs"
