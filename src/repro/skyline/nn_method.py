"""The NN (nearest-neighbour) skyline method (Kossmann et al. [15]),
constraint-based variant.

The paper's related work notes that a constraint-based version of the NN
method was "shown in [19] to be inferior to BBS for constrained skylines";
implementing it lets the benchmark suite reproduce that comparison as well.

Algorithm ("shooting stars"): the point with the minimal coordinate sum
inside a region is always a skyline point (nothing in the region can
dominate it).  Find it with a nearest-neighbour search on the R-tree, then
partition the region into ``d`` subregions that each exclude the found
point's dominance region (subregion ``i`` caps dimension ``i`` strictly
below the point), and recurse on a work queue of regions until all are
empty.  Subregions overlap, so the same skyline point can be discovered
repeatedly -- results are deduplicated by row id, which is the method's
well-known inefficiency: every NN query restarts from the R-tree root and
overlapping regions are searched many times, which is exactly why BBS
dominates it.

Exact coordinate duplicates of a found point fall in no subregion, so each
NN hit is followed by a point-lookup collecting all duplicates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.box import Box
from repro.geometry.constraints import Constraints
from repro.index.rtree import RTree
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.costmodel import DiskCostModel


@dataclass
class NNResult:
    """Skyline points plus the method's R-tree work."""

    skyline: np.ndarray
    nodes_accessed: int
    nn_queries: int
    regions_processed: int


def nn_constrained_skyline(
    tree: RTree, constraints: Optional[Constraints] = None
) -> NNResult:
    """Run the constraint-based NN method over an R-tree of points."""
    ndim = tree.ndim
    if constraints is None:
        lo = np.full(ndim, -np.inf)
        hi = np.full(ndim, np.inf)
        root_box = Box.universe(ndim)
    else:
        if constraints.ndim != ndim:
            raise ValueError("constraints dimensionality does not match the tree")
        root_box = constraints.region()

    nodes_accessed = 0
    nn_queries = 0
    regions = 0
    found_rows: dict[int, np.ndarray] = {}
    queue: List[Box] = [root_box]

    while queue:
        box = queue.pop()
        regions += 1
        nn_queries += 1
        hit, accessed = _nearest_in_box(tree, box)
        nodes_accessed += accessed
        if hit is None:
            continue
        point, rowid = hit
        if rowid not in found_rows:
            found_rows[rowid] = point
            dup_ids, accessed = _duplicates_in_box(tree, box, point)
            nodes_accessed += accessed
            for dup in dup_ids:
                found_rows.setdefault(int(dup), point)
        for i in range(ndim):
            sub = box.replace(
                i, _strictly_below(point[i])
            )
            if not sub.is_empty():
                queue.append(sub)

    if found_rows:
        skyline = np.array(list(found_rows.values()))
    else:
        skyline = np.empty((0, ndim))
    return NNResult(
        skyline=skyline,
        nodes_accessed=nodes_accessed,
        nn_queries=nn_queries,
        regions_processed=regions,
    )


def _strictly_below(value: float):
    from repro.geometry.interval import Interval

    return Interval(-np.inf, float(value), lo_open=True, hi_open=True)


def _nearest_in_box(
    tree: RTree, box: Box
) -> Tuple[Optional[Tuple[np.ndarray, int]], int]:
    """Best-first search for the minimal-coordinate-sum point inside ``box``.

    Returns ``((point, rowid), nodes_accessed)`` or ``(None, accessed)``.
    """
    lo = box.lo()
    accessed = 0
    tiebreak = itertools.count()
    heap: list = []

    def push_node(node):
        mindist = float(np.maximum(node.lo, lo).sum())
        heapq.heappush(heap, (mindist, next(tiebreak), node, None, None))

    root = tree.root
    if root.lo is not None:
        push_node(root)
    while heap:
        _, _, node, point, rowid = heapq.heappop(heap)
        if point is not None:
            return (point, rowid), accessed
        accessed += 1
        if node.is_leaf:
            inside = box.mask(node.entry_lo)
            for i in np.flatnonzero(inside):
                p = node.entry_lo[i]
                heapq.heappush(
                    heap,
                    (float(p.sum()), next(tiebreak), None, p, int(node.payloads[i])),
                )
        else:
            for child in node.children:
                child_box = Box.closed(child.lo, child.hi)
                if box.overlaps(child_box):
                    push_node(child)
    return None, accessed


def _duplicates_in_box(
    tree: RTree, box: Box, point: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Return all row ids at exactly ``point`` (they are skyline together)."""
    before = tree.nodes_accessed
    ids = tree.search(point, point)
    return np.asarray(ids, dtype=np.int64), tree.nodes_accessed - before


class NNMethod:
    """Query-method wrapper around the NN method for the harness."""

    name = "NN"

    def __init__(
        self,
        data: np.ndarray,
        cost_model: Optional[DiskCostModel] = None,
        max_entries: int = 128,
        tree: Optional[RTree] = None,
    ):
        self.cost_model = cost_model or DiskCostModel()
        if tree is None:
            tree = RTree.bulk_load_points(
                np.asarray(data, dtype=float), max_entries=max_entries
            )
        self.tree = tree

    def query(self, constraints: Constraints) -> QueryOutcome:
        """Answer one constrained skyline query."""
        watch = Stopwatch()
        with watch.stage("fetch_wall"):
            result = nn_constrained_skyline(self.tree, constraints)
        io_ms = result.nodes_accessed * self.cost_model.fetch_cost_ms(1, 1)
        watch.timings.fetch_io_ms = io_ms
        outcome = QueryOutcome(
            skyline=result.skyline,
            method=self.name,
            timings=watch.timings,
            nodes_accessed=result.nodes_accessed,
        )
        outcome.io.pages_read = result.nodes_accessed
        outcome.io.seeks = result.nodes_accessed
        outcome.io.simulated_io_ms = io_ms
        return outcome
