"""Atomic file-write helpers shared by storage and observability.

Every artifact the engine persists -- WAL checkpoints, cache snapshots,
``--obs`` metrics/calibration/cache JSON, ``BENCH_*.json`` snapshots -- is
written with the temp-file + :func:`os.replace` idiom so a crash at any
instant leaves either the previous complete file or the new complete file,
never a torn hybrid.  (POSIX ``rename(2)`` within one directory is atomic;
``os.replace`` gives the same guarantee on Windows.)

The ``crashpoint`` hook threads the fault injector's seeded crash-point
machinery (:meth:`repro.storage.faults.FaultInjector.crashpoint`) into the
commit sequence: a :class:`~repro.storage.faults.SimulatedCrash` raised
after the temp file is written but *before* the rename models a crash
mid-checkpoint -- the stale temp file is left behind and the previous
artifact survives intact, which is exactly what recovery relies on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_savez",
    "encode_array",
    "decode_array",
]

CrashHook = Optional[Callable[[str], None]]


def _tmp_path(path: Path) -> Path:
    """A sibling temp name: same directory, so the rename stays atomic."""
    return path.with_name(f".{path.name}.tmp.{os.getpid()}")


def _commit(tmp: Path, path: Path, fsync: bool, crashpoint: CrashHook, point: str) -> None:
    if crashpoint is not None:
        crashpoint(point)  # may raise SimulatedCrash: temp written, not renamed
    os.replace(tmp, path)
    if fsync:
        # Persist the rename itself (the directory entry).
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def atomic_write_bytes(
    path,
    data: bytes,
    fsync: bool = False,
    crashpoint: CrashHook = None,
    point: str = "atomic-write",
) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        _commit(tmp, path, fsync, crashpoint, point)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path, text: str, fsync: bool = False) -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(path, payload, indent: int = 2, default=None) -> None:
    """Serialize ``payload`` and write it to ``path`` atomically.

    Serialization happens before any filesystem mutation, so a payload that
    fails to encode leaves the previous artifact untouched.
    """
    text = json.dumps(payload, indent=indent, default=default)
    atomic_write_text(path, text)


def encode_array(array) -> dict:
    """Exact (bit-preserving) JSON encoding of a float array.

    WAL payloads are JSON; ``repr(float)`` round-trips in CPython but a
    base64 of the raw bytes is unambiguous and cheaper to validate, so
    replayed skylines and rows compare bit-equal to what was logged.
    """
    import base64

    import numpy as np

    arr = np.ascontiguousarray(array, dtype=float)
    return {
        "shape": list(arr.shape),
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(encoded: dict):
    """Inverse of :func:`encode_array`; returns a fresh writable array."""
    import base64

    import numpy as np

    data = np.frombuffer(
        base64.b64decode(encoded["b64"]), dtype=float
    ).reshape(encoded["shape"])
    return data.copy()


def atomic_savez(
    path,
    fsync: bool = False,
    crashpoint: CrashHook = None,
    point: str = "atomic-write",
    **arrays,
) -> None:
    """``np.savez_compressed`` into ``path`` atomically.

    The archive is written through an open temp-file handle (so numpy never
    appends its own ``.npz`` suffix), then renamed over ``path``.
    """
    import numpy as np

    path = Path(path)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        _commit(tmp, path, fsync, crashpoint, point)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
