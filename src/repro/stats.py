"""Per-query statistics shared by every query method.

The paper's evaluation reports, besides end-to-end running time, a
per-stage breakdown (Figure 10: processing / fetching / skyline
computation), points read from disk (Figure 8), and range queries generated
versus range queries that actually read data (Figure 9).  Every method in
this library -- Baseline, BBS and CBCS -- returns a :class:`QueryOutcome`
carrying exactly those quantities so the benchmark harness can regenerate
each figure from a uniform record.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional

import numpy as np

from repro.obs.tracing import NULL_TRACER, Tracer
from repro.storage.pager import IOStats


@dataclass
class StageTimings:
    """Wall-clock and simulated-latency breakdown of one query.

    - ``processing_ms``: main-memory selection/decomposition of range
      queries (cache search, MPR computation) -- Figure 10's first stage;
    - ``fetch_io_ms``: *effective* simulated disk latency of the fetch
      stage.  With a serial executor this is the summed latency of every
      range query; with ``workers > 1`` it is the makespan of the per-range
      latencies scheduled over the worker lanes (overlapped I/O), which is
      what actually elapses on the critical path;
    - ``fetch_wall_ms``: CPU time spent executing the fetches in-process;
    - ``skyline_ms``: the skyline-algorithm stage;
    - ``io_ms_total``: the *aggregate* simulated I/O charged by every range
      query (retries included) regardless of overlap.  Equal to
      ``fetch_io_ms`` when serial; under parallel fetches the two diverge
      and the Figure-10 breakdown uses the effective number, while this
      field keeps the total-disk-work accounting reconcilable.
    """

    processing_ms: float = 0.0
    fetch_io_ms: float = 0.0
    fetch_wall_ms: float = 0.0
    skyline_ms: float = 0.0
    io_ms_total: float = 0.0

    @property
    def total_ms(self) -> float:
        """End-to-end simulated response time of the query."""
        return (
            self.processing_ms
            + self.fetch_io_ms
            + self.fetch_wall_ms
            + self.skyline_ms
        )

    def as_dict(self) -> dict:
        """Per-stage milliseconds keyed by field name (JSON-serializable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class QueryOutcome:
    """Everything one query produced: the skyline and the cost evidence."""

    skyline: np.ndarray
    method: str
    timings: StageTimings = field(default_factory=StageTimings)
    io: IOStats = field(default_factory=IOStats)
    case: Optional[str] = None  # CBCS overlap case label, None otherwise
    stable: Optional[bool] = None  # CBCS stability of the used cache item
    cache_hit: bool = False
    nodes_accessed: int = 0  # BBS R-tree node reads
    #: degradation-ladder rung that produced this answer (None = normal
    #: path; "ampr" and "bounding" are still exact, "stale"/"unavailable"
    #: are best-effort -- see docs/robustness.md)
    degraded: Optional[str] = None
    #: True iff the skyline may not reflect current data (stale-serve rung);
    #: a stale answer is always also flagged ``degraded``
    stale: bool = False
    #: storage retries consumed while answering (0 on a clean path)
    retries: int = 0
    #: correlation id minted at the serving ingress (None when observability
    #: is disabled); the same id is stamped on every trace span and metric
    #: exemplar of this query -- see :mod:`repro.obs.correlate`
    query_id: Optional[str] = None
    #: for a deduplicated/coalesced request: the ``query_id`` of the
    #: in-flight query whose execution answered this one (the piggybacked
    #: request keeps its *own* ``query_id``; correlation joins follow this
    #: field to the executing query's spans).  None for directly executed
    #: queries.
    served_by: Optional[str] = None

    @property
    def skyline_size(self) -> int:
        return len(self.skyline)

    @property
    def total_ms(self) -> float:
        return self.timings.total_ms

    @property
    def points_read(self) -> int:
        return self.io.points_read

    @property
    def range_queries(self) -> int:
        return self.io.range_queries

    @property
    def nonempty_queries(self) -> int:
        return self.io.range_queries - self.io.empty_queries

    def as_record(self) -> dict:
        """One flat, JSON-serializable record of this query's evidence.

        This is the per-query structured-log schema: everything except the
        skyline points themselves (only their count), suitable for a JSONL
        sink (``repro.obs.Observability.add_outcome_sink``) or any log
        aggregator.
        """
        return {
            "query_id": self.query_id,
            "method": self.method,
            "case": self.case,
            "stable": self.stable,
            "cache_hit": self.cache_hit,
            "skyline_size": self.skyline_size,
            "total_ms": self.total_ms,
            "timings": self.timings.as_dict(),
            "io": self.io.as_dict(),
            "nodes_accessed": self.nodes_accessed,
            "degraded": self.degraded,
            "stale": self.stale,
            "retries": self.retries,
            "served_by": self.served_by,
        }


#: Valid Stopwatch stage names: exactly the ``*_ms``-suffixed *fields* of
#: :class:`StageTimings`.  Derived explicitly from ``dataclasses.fields`` so
#: read-only properties such as ``total_ms`` (which a plain ``hasattr`` check
#: would accept) are rejected; non-stage accounting fields (``io_ms_total``)
#: are excluded by the suffix filter.
STAGE_NAMES = frozenset(
    f.name[: -len("_ms")]
    for f in fields(StageTimings)
    if f.name.endswith("_ms")
)


class Stopwatch:
    """Accumulates wall-clock milliseconds into named stages.

    A thin adapter over :class:`repro.obs.tracing.Tracer`: each completed
    stage is also recorded as a ``stage.<name>`` span carrying *the same*
    measured duration (one clock reading feeds both ``StageTimings`` and the
    trace, so the two timing paths cannot drift).  With the default
    :data:`~repro.obs.tracing.NULL_TRACER` the span recording is a no-op.
    """

    def __init__(self, tracer: Optional[Tracer] = None, profiler=None) -> None:
        self.timings = StageTimings()
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Optional :class:`repro.obs.profiling.QueryProfiler`; when the
        #: current thread is inside a sampled query, each stage body also
        #: runs under that stage's accumulating cProfile.
        self.profiler = profiler

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block and add it to ``timings.<name>_ms``."""
        if name not in STAGE_NAMES:
            raise ValueError(
                f"unknown stage {name!r}; expected one of {sorted(STAGE_NAMES)}"
            )
        attr = f"{name}_ms"
        profiler = self.profiler
        profiled = profiler is not None and profiler.is_active()
        start = time.perf_counter()
        try:
            if profiled:
                with profiler.stage(name):
                    yield
            else:
                yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            setattr(self.timings, attr, getattr(self.timings, attr) + elapsed_ms)
            self.tracer.record(f"stage.{name}", elapsed_ms)
