"""1-D intervals with independently open or closed endpoints.

The MPR algorithm (paper Section 5.2) decomposes a constraint region into
*disjoint* axis-orthogonal range queries.  The paper sidesteps points lying
exactly on a split plane by assuming they do not exist; we instead carry an
open/closed flag on every endpoint, so splits such as ``p[i] < u[i]`` versus
``p[i] >= u[i]`` produce genuinely disjoint pieces even when data points
coincide with split coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A 1-D interval ``{x | lo <? x <? hi}`` with open/closed endpoints.

    ``lo_open`` / ``hi_open`` select strict (`<`) versus non-strict (`<=`)
    comparison at the respective endpoint.  Infinite endpoints are allowed
    (and treated as open, since no finite value equals them).
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    @staticmethod
    def closed(lo: float, hi: float) -> "Interval":
        """Return the closed interval ``[lo, hi]``."""
        return Interval(lo, hi, lo_open=False, hi_open=False)

    @staticmethod
    def universe() -> "Interval":
        """Return the interval covering the whole real line."""
        return Interval(-math.inf, math.inf, lo_open=True, hi_open=True)

    def is_empty(self) -> bool:
        """Return True if no real number satisfies the interval."""
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            return self.lo_open or self.hi_open or math.isinf(self.lo)
        return False

    def contains(self, x: float) -> bool:
        """Return True if ``x`` lies inside the interval."""
        if self.lo_open:
            if not x > self.lo:
                return False
        elif not x >= self.lo:
            return False
        if self.hi_open:
            return x < self.hi
        return x <= self.hi

    def length(self) -> float:
        """Return the (measure-theoretic) length of the interval."""
        if self.is_empty():
            return 0.0
        return self.hi - self.lo

    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection with ``other`` (possibly empty)."""
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif self.lo < other.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif self.hi > other.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval(lo, hi, lo_open=lo_open, hi_open=hi_open)

    def overlaps(self, other: "Interval") -> bool:
        """Return True if the two intervals share at least one point."""
        return not self.intersect(other).is_empty()

    def contains_interval(self, other: "Interval") -> bool:
        """Return True if ``other`` is a subset of this interval.

        An empty ``other`` is a subset of anything.
        """
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        if other.lo < self.lo:
            return False
        if other.lo == self.lo and self.lo_open and not other.lo_open:
            return False
        if other.hi > self.hi:
            return False
        if other.hi == self.hi and self.hi_open and not other.hi_open:
            return False
        return True

    def below(self, x: float, *, strict: bool = True) -> "Interval":
        """Return the part of the interval below ``x``.

        With ``strict`` (default) the result satisfies ``v < x``; otherwise
        ``v <= x``.
        """
        return self.intersect(Interval(-math.inf, x, lo_open=True, hi_open=strict))

    def above(self, x: float, *, strict: bool = False) -> "Interval":
        """Return the part of the interval above ``x``.

        With ``strict`` the result satisfies ``v > x``; by default ``v >= x``
        (the closed corner convention used for dominance regions).
        """
        return self.intersect(Interval(x, math.inf, lo_open=strict, hi_open=True))

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right}"
