"""Constraint pairs ``C = <C_lo, C_hi>`` (paper Section 3).

A set of constraints is a pair of points giving, per dimension, the minimum
and maximum admissible value.  The induced *constraint region* ``R_C`` is the
closed hyper-rectangle spanned by the pair; the *constrained data* ``S_C`` is
the subset of the dataset inside that region.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.box import Box


class Constraints:
    """Orthogonal range constraints: one ``[lo, hi]`` interval per dimension."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo_arr = np.asarray(lo, dtype=float).copy()
        hi_arr = np.asarray(hi, dtype=float).copy()
        if lo_arr.shape != hi_arr.shape or lo_arr.ndim != 1:
            raise ValueError("lo and hi must be 1-D arrays of equal length")
        if np.any(lo_arr > hi_arr):
            raise ValueError("every lower constraint must be <= its upper constraint")
        lo_arr.setflags(write=False)
        hi_arr.setflags(write=False)
        self.lo = lo_arr
        self.hi = hi_arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_box(box: Box) -> "Constraints":
        """Return the constraints whose region is the closure of ``box``."""
        return Constraints(box.lo(), box.hi())

    @staticmethod
    def covering(points: np.ndarray) -> "Constraints":
        """Return the tightest constraints containing every row of ``points``."""
        points = np.asarray(points, dtype=float)
        if len(points) == 0:
            raise ValueError("cannot build covering constraints of an empty set")
        return Constraints(points.min(axis=0), points.max(axis=0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    def region(self) -> Box:
        """Return ``R_C``, the closed constraint region, as a :class:`Box`."""
        return Box.closed(self.lo, self.hi)

    def satisfied_mask(self, points: np.ndarray) -> np.ndarray:
        """Return a boolean mask of rows of ``points`` satisfying C.

        Vectorized form of the paper's ``S_C`` membership test.
        """
        points = np.asarray(points, dtype=float)
        return np.all((points >= self.lo) & (points <= self.hi), axis=1)

    def satisfies(self, point: Sequence[float]) -> bool:
        """Return True if a single point satisfies the constraints."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains(self, other: "Constraints") -> bool:
        """Return True if ``other``'s region is inside this region."""
        return bool(np.all(self.lo <= other.lo) and np.all(self.hi >= other.hi))

    def overlaps(self, other: "Constraints") -> bool:
        """Return True if the two constraint regions intersect."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def volume(self) -> float:
        """Return the volume of the constraint region."""
        return float(np.prod(np.maximum(self.hi - self.lo, 0.0)))

    def overlap_volume(self, other: "Constraints") -> float:
        """Return the volume of the intersection of the two regions."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return 0.0
        return float(np.prod(hi - lo))

    def widths(self) -> np.ndarray:
        """Return per-dimension extents ``hi - lo``."""
        return self.hi - self.lo

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_bound(self, dim: int, *, lower: float = None, upper: float = None) -> "Constraints":
        """Return a copy with one dimension's bound(s) replaced."""
        lo = self.lo.copy()
        hi = self.hi.copy()
        if lower is not None:
            lo[dim] = lower
        if upper is not None:
            hi[dim] = upper
        return Constraints(lo, hi)

    def key(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Return a hashable representation of the constraints."""
        return (tuple(self.lo), tuple(self.hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraints):
            return NotImplemented
        return np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        dims = ", ".join(
            f"[{a:g}, {b:g}]" for a, b in zip(self.lo, self.hi)
        )
        return f"Constraints({dims})"


def overlap_region(old: Constraints, new: Constraints) -> Box:
    """Return the region satisfying both constraint sets (possibly empty)."""
    return old.region().intersect(new.region())


def delta_region(old: Constraints, new: Constraints) -> List[Box]:
    """Return disjoint boxes covering ``R_new \\ R_old``.

    For the paper's incremental cases this is the (rectangular) region
    ``Delta C``; in general it decomposes into up to ``2 * ndim`` slabs.
    """
    return new.region().subtract_box(old.region())
