"""Axis-aligned hyper-rectangles (boxes) with open/closed faces.

A :class:`Box` is the product of one :class:`~repro.geometry.interval.Interval`
per dimension.  Boxes are the working currency of the paper's MPR algorithm
(Section 5.2): the queried constraint region starts as a single box and is
repeatedly split by axis-orthogonal hyperplanes into disjoint pieces, each of
which is ultimately issued as a range query.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.interval import Interval


class Box:
    """An axis-aligned hyper-rectangle with per-face open/closed flags."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval]):
        self.intervals: Tuple[Interval, ...] = tuple(intervals)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def closed(lo: Sequence[float], hi: Sequence[float]) -> "Box":
        """Return the closed box ``[lo[0], hi[0]] x ... x [lo[d-1], hi[d-1]]``."""
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same length")
        return Box(Interval.closed(float(a), float(b)) for a, b in zip(lo, hi))

    @staticmethod
    def universe(ndim: int) -> "Box":
        """Return the box covering all of ``R^ndim``."""
        return Box(Interval.universe() for _ in range(ndim))

    @staticmethod
    def corner_at_least(point: Sequence[float]) -> "Box":
        """Return the closed upper corner region ``{p | p >= point}``.

        This is the (unconstrained) dominance region ``DR(point)`` of the
        paper's Definition 2, closed at the corner.  See
        :mod:`repro.geometry.dominance` for why the closed convention is safe
        in the presence of coordinate duplicates.
        """
        return Box(
            Interval(float(v), math.inf, lo_open=False, hi_open=True) for v in point
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        """Return True if the box contains no point."""
        return any(iv.is_empty() for iv in self.intervals)

    def lo(self) -> np.ndarray:
        """Return the lower corner as a float array."""
        return np.array([iv.lo for iv in self.intervals], dtype=float)

    def hi(self) -> np.ndarray:
        """Return the upper corner as a float array."""
        return np.array([iv.hi for iv in self.intervals], dtype=float)

    def contains_point(self, point: Sequence[float]) -> bool:
        """Return True if ``point`` lies inside the box."""
        return all(iv.contains(float(v)) for iv, v in zip(self.intervals, point))

    def mask(self, points: np.ndarray) -> np.ndarray:
        """Return a boolean mask of which rows of ``points`` lie in the box.

        ``points`` is an ``(n, ndim)`` array; the comparisons respect the
        open/closed flags on every face.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.ndim:
            raise ValueError(
                f"expected points of shape (n, {self.ndim}), got {points.shape}"
            )
        ok = np.ones(len(points), dtype=bool)
        for i, iv in enumerate(self.intervals):
            col = points[:, i]
            if math.isfinite(iv.lo):
                ok &= (col > iv.lo) if iv.lo_open else (col >= iv.lo)
            if math.isfinite(iv.hi):
                ok &= (col < iv.hi) if iv.hi_open else (col <= iv.hi)
        return ok

    def volume(self) -> float:
        """Return the Lebesgue volume of the box (0 for empty boxes)."""
        if self.is_empty():
            return 0.0
        vol = 1.0
        for iv in self.intervals:
            vol *= iv.length()
        return vol

    def to_dict(self) -> dict:
        """Serialize as per-dimension interval dicts (None = unbounded).

        Infinite bounds become ``None`` so the result round-trips through
        strict JSON; used by :meth:`repro.core.planner.QueryPlan.to_dict`
        and the observability exports.
        """
        return {
            "intervals": [
                {
                    "lo": None if math.isinf(iv.lo) else iv.lo,
                    "hi": None if math.isinf(iv.hi) else iv.hi,
                    "lo_open": iv.lo_open,
                    "hi_open": iv.hi_open,
                }
                for iv in self.intervals
            ]
        }

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Box") -> "Box":
        """Return the intersection box (possibly empty)."""
        self._check_ndim(other)
        return Box(a.intersect(b) for a, b in zip(self.intervals, other.intervals))

    def overlaps(self, other: "Box") -> bool:
        """Return True if the boxes share at least one point."""
        self._check_ndim(other)
        return all(a.overlaps(b) for a, b in zip(self.intervals, other.intervals))

    def contains_box(self, other: "Box") -> bool:
        """Return True if ``other`` is a subset of this box."""
        self._check_ndim(other)
        if other.is_empty():
            return True
        return all(
            a.contains_interval(b) for a, b in zip(self.intervals, other.intervals)
        )

    def replace(self, dim: int, interval: Interval) -> "Box":
        """Return a copy of the box with dimension ``dim`` set to ``interval``."""
        ivs = list(self.intervals)
        ivs[dim] = ivs[dim].intersect(interval)
        return Box(ivs)

    def subtract_box(self, other: "Box") -> List["Box"]:
        """Return disjoint boxes covering ``self \\ other``.

        The decomposition carves at most two slabs per dimension: below and
        above ``other``'s extent, with the remaining "middle" band narrowed
        dimension by dimension.  The returned pieces are pairwise disjoint,
        together with ``self & other`` they exactly cover ``self``.
        """
        self._check_ndim(other)
        if self.is_empty():
            return []
        clipped = self.intersect(other)
        if clipped.is_empty():
            return [self]
        pieces: List[Box] = []
        remainder = self
        for i in range(self.ndim):
            cut = clipped.intervals[i]
            below = remainder.replace(
                i, Interval(-math.inf, cut.lo, lo_open=True, hi_open=not cut.lo_open)
            )
            if not below.is_empty():
                pieces.append(below)
            above = remainder.replace(
                i, Interval(cut.hi, math.inf, lo_open=not cut.hi_open, hi_open=True)
            )
            if not above.is_empty():
                pieces.append(above)
            remainder = remainder.replace(i, cut)
        return pieces

    def subtract_corner(self, point: Sequence[float]) -> List["Box"]:
        """Return disjoint boxes covering ``self \\ DR(point)``.

        ``DR(point)`` is the closed upper-corner region ``{p | p >= point}``
        (Definition 2).  This is the primary splitting operation of the MPR
        algorithm: the part of the box inside the dominance region needs no
        fetching, the returned pieces might still hold skyline points.

        The decomposition yields at most ``ndim`` pieces: for each dimension
        ``i``, the slab with ``p[i] < point[i]`` and ``p[j] >= point[j]`` for
        all ``j < i`` (intersected with the box).
        """
        point = [float(v) for v in point]
        if len(point) != self.ndim:
            raise ValueError("point dimensionality mismatch")
        pieces: List[Box] = []
        remainder = self
        for i, v in enumerate(point):
            piece = remainder.replace(
                i, Interval(-math.inf, v, lo_open=True, hi_open=True)
            )
            if not piece.is_empty():
                pieces.append(piece)
            remainder = remainder.replace(
                i, Interval(v, math.inf, lo_open=False, hi_open=True)
            )
            if remainder.is_empty():
                break
        return pieces

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def _check_ndim(self, other: "Box") -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __repr__(self) -> str:
        inside = " x ".join(str(iv) for iv in self.intervals)
        return f"Box({inside})"


def decompose_difference(base: Box, removals: Iterable[Box]) -> List[Box]:
    """Return disjoint boxes covering ``base`` minus the union of ``removals``.

    Repeatedly applies :meth:`Box.subtract_box`, keeping the pieces disjoint
    throughout.  Used for computing the invalidated overlap regions in the
    unstable MPR case.
    """
    pieces = [base] if not base.is_empty() else []
    for removal in removals:
        next_pieces: List[Box] = []
        for piece in pieces:
            next_pieces.extend(piece.subtract_box(removal))
        pieces = next_pieces
        if not pieces:
            break
    return pieces


def total_volume(boxes: Iterable[Box]) -> float:
    """Return the summed volume of an iterable of (disjoint) boxes."""
    return sum(box.volume() for box in boxes)


def union_mask(boxes: Sequence[Box], points: np.ndarray) -> np.ndarray:
    """Return a boolean mask of rows of ``points`` covered by any box."""
    points = np.asarray(points, dtype=float)
    covered = np.zeros(len(points), dtype=bool)
    for box in boxes:
        covered |= box.mask(points)
    return covered


def merge_aligned_boxes(boxes: Sequence[Box]) -> List[Box]:
    """Greedily merge disjoint boxes that tile a larger box.

    Two boxes merge along dimension ``i`` when every other dimension's
    interval is identical (including open/closed flags) and their
    ``i``-intervals abut exactly -- they share the boundary coordinate with
    exactly one side closed, so the union is again a single interval with no
    gap and no double-covered point.  Repeats to a fixpoint.

    Merging never changes the covered point set; it only reduces the number
    of range queries a decomposition issues (less random access), which is
    the aMPR's goal of "fewer, but larger, disjoint range queries".
    """
    pool: List[Box] = [b for b in boxes if not b.is_empty()]
    merged = True
    while merged and len(pool) > 1:
        merged = False
        for i in range(len(pool)):
            if merged:
                break
            for j in range(i + 1, len(pool)):
                union = _try_merge(pool[i], pool[j])
                if union is not None:
                    pool[i] = union
                    pool.pop(j)
                    merged = True
                    break
    return pool


def _try_merge(a: Box, b: Box) -> Optional[Box]:
    """Return the union box if ``a`` and ``b`` tile one, else None."""
    if a.ndim != b.ndim:
        return None
    diff_dim = -1
    for i, (ia, ib) in enumerate(zip(a.intervals, b.intervals)):
        if ia == ib:
            continue
        if diff_dim >= 0:
            return None  # differ in more than one dimension
        diff_dim = i
    if diff_dim < 0:
        return None  # identical boxes (should not occur in disjoint sets)
    ia, ib = a.intervals[diff_dim], b.intervals[diff_dim]
    if ia.lo > ib.lo:
        ia, ib = ib, ia
    if ia.hi != ib.lo or ia.hi_open == ib.lo_open:
        return None  # gap, overlap, or the shared coordinate covered 0/2 times
    joined = Interval(ia.lo, ib.hi, lo_open=ia.lo_open, hi_open=ib.hi_open)
    ivs = list(a.intervals)
    ivs[diff_dim] = joined
    return Box(ivs)


def pairwise_disjoint(boxes: Sequence[Box], samples: Optional[np.ndarray] = None) -> bool:
    """Return True if no two boxes overlap (exact interval test)."""
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            if boxes[i].overlaps(boxes[j]):
                return False
    return True
