"""Pareto dominance tests and dominance regions (paper Definition 2).

Throughout the library (and the paper), smaller is better in every dimension:
``s`` dominates ``t`` (written ``s < t`` in the paper) iff ``s[i] <= t[i]``
for every dimension and ``s[i] < t[i]`` for at least one.

Dominance regions and coordinate duplicates
-------------------------------------------
``DR(s)`` as returned by :func:`dominance_region` is the *closed* corner
region ``{p | p >= s}``, which also contains ``s`` itself and any exact
coordinate duplicates of ``s`` -- points that ``s`` does *not* dominate.
Using the closed region for MPR pruning is nevertheless safe: every exact
duplicate of a cached skyline point shares its constraint membership and its
dominance status, so duplicates are always cached (and survive or fall)
together with the point whose region prunes them.  Tests in
``tests/core/test_cbcs_equivalence.py`` exercise this with duplicated data.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.constraints import Constraints


def dominates(s: Sequence[float], t: Sequence[float]) -> bool:
    """Return True if point ``s`` dominates point ``t``."""
    s_arr = np.asarray(s, dtype=float)
    t_arr = np.asarray(t, dtype=float)
    return bool(np.all(s_arr <= t_arr) and np.any(s_arr < t_arr))


def dominates_all(points: np.ndarray, t: Sequence[float]) -> np.ndarray:
    """Return a mask of which rows of ``points`` dominate point ``t``."""
    points = np.asarray(points, dtype=float)
    t_arr = np.asarray(t, dtype=float)
    le = np.all(points <= t_arr, axis=1)
    lt = np.any(points < t_arr, axis=1)
    return le & lt


def dominated_mask(points: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    """Return a mask of rows of ``points`` dominated by any row of ``dominators``.

    ``points`` is ``(n, d)`` and ``dominators`` is ``(m, d)``; the result has
    length ``n``.  Runs one vectorized pass per dominator, i.e. ``O(m)``
    numpy operations of size ``n`` -- appropriate when ``m`` (e.g. a cached
    skyline) is much smaller than ``n`` (candidate points).
    """
    points = np.asarray(points, dtype=float)
    dominators = np.asarray(dominators, dtype=float)
    out = np.zeros(len(points), dtype=bool)
    for dom in dominators:
        le = np.all(points >= dom, axis=1)
        lt = np.any(points > dom, axis=1)
        out |= le & lt
    return out


def dominance_region(
    s: Sequence[float], constraints: Optional[Constraints] = None
) -> Box:
    """Return ``DR(s)`` or, when constraints are given, ``DR(s, C)``.

    ``DR(s)`` is the closed corner region ``{p | p >= s}``; ``DR(s, C)`` is
    its intersection with the constraint region (paper Definition 2 and the
    constrained variant of Section 3).
    """
    region = Box.corner_at_least(s)
    if constraints is not None:
        region = region.intersect(constraints.region())
    return region
