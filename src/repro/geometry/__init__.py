"""Geometric primitives for constrained skyline processing.

This subpackage provides the low-level spatial algebra that the paper's
Missing Points Region (MPR) machinery is built on:

- :class:`~repro.geometry.interval.Interval` -- a 1-D interval with
  independently open/closed endpoints.
- :class:`~repro.geometry.box.Box` -- an axis-aligned hyper-rectangle made of
  per-dimension intervals, with intersection, containment, subtraction and
  disjoint-decomposition operations.
- :mod:`~repro.geometry.constraints` -- helpers for the paper's constraint
  pairs ``C = <C_lo, C_hi>`` (closed boxes) and their overlap relationships.
- :mod:`~repro.geometry.dominance` -- Pareto dominance tests and dominance
  regions ``DR(s)`` / ``DR(s, C)`` (Definition 2 of the paper).
"""

from repro.geometry.box import Box
from repro.geometry.constraints import (
    Constraints,
    delta_region,
    overlap_region,
)
from repro.geometry.dominance import (
    dominance_region,
    dominates,
    dominates_all,
    dominated_mask,
)
from repro.geometry.interval import Interval

__all__ = [
    "Box",
    "Constraints",
    "Interval",
    "delta_region",
    "dominance_region",
    "dominated_mask",
    "dominates",
    "dominates_all",
    "overlap_region",
]
