"""Ablation experiments for design choices beyond the paper's figures.

The paper defers cache replacement (Section 6.2) and multi-item processing
(Section 6.3) to future work, and its aMPR approximates only the
dominance-pruning loop.  This module measures those choices in isolation:

- ``ablation_replacement``: LRU vs LCU vs an unbounded cache under
  capacity pressure on the interactive workload;
- ``ablation_multi_item``: single-item aMPR vs the multi-item extension on
  a workload of queries that straddle previously cached regions;
- ``ablation_invalidation``: how the unstable-case invalidation-anchor
  budget trades range queries against points read.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bench.harness import make_cbcs, run_queries, scaled
from repro.bench.reporting import format_table
from repro.bench.experiments import FigureReport
from repro.core.ampr import ApproximateMPR
from repro.core.cache import SkylineCache
from repro.core.mpr import compute_mpr
from repro.core.multi import MultiItemMPR
from repro.data.generator import generate
from repro.geometry.box import union_mask
from repro.skyline.sfs import sfs_skyline
from repro.workload.generator import WorkloadGenerator


def ablation_page_cache(seed: int = 0) -> FigureReport:
    """Semantic caching (CBCS) vs plain page caching (a warm buffer pool).

    The paper restarts the DBMS between runs, so its Baseline never benefits
    from a warm OS/DBMS page cache.  This ablation grants the Baseline a
    generous buffer pool and shows the two mechanisms are orthogonal: a page
    cache removes repeated *read latency*, but the Baseline still fetches
    and dominance-tests every point of S_C per query, while CBCS's semantic
    caching avoids examining most of them at all -- the quantity that
    dominates at database scale.
    """
    from repro.skyline.baseline import BaselineMethod
    from repro.storage.table import DiskTable

    n = scaled(30_000, 100_000, 500_000)
    data = generate("independent", n, 4, seed=seed)
    n_queries = scaled(50, 120, 300)
    buffer_pages = 4096  # comfortably holds every hot page

    engines = {
        "Baseline (cold cache)": BaselineMethod(DiskTable(data)),
        "Baseline (warm buffer)": BaselineMethod(
            DiskTable(data, buffer_pages=buffer_pages)
        ),
        "CBCS aMPR (cold cache)": make_cbcs(data, region=ApproximateMPR(1)),
    }
    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label, engine in engines.items():
        gen = WorkloadGenerator(data, seed=seed + 1)
        result = run_queries(engine, gen.exploratory_stream(n_queries))
        io_ms = float(
            np.mean([o.timings.fetch_io_ms for o in result.outcomes])
        )
        cpu_ms = float(
            np.mean(
                [
                    o.timings.processing_ms
                    + o.timings.fetch_wall_ms
                    + o.timings.skyline_ms
                    for o in result.outcomes
                ]
            )
        )
        series[label] = {
            "mean_ms": result.mean_total_ms(),
            "io_ms": io_ms,
            "cpu_ms": cpu_ms,
            "mean_points_read": result.mean_points_read(),
        }
        rows.append([label, result.mean_total_ms(), io_ms, cpu_ms,
                     result.mean_points_read()])
    text = format_table(
        ["configuration", "mean ms", "I/O (ms)", "CPU (ms)", "points read"],
        rows,
        title=f"Semantic vs page caching (|S|={n}, |D|=4, interactive)",
    )
    return FigureReport(
        figure="ablation-page-cache",
        title="CBCS vs a warm buffer pool",
        text=text,
        series=series,
    )


def ablation_skyline_algorithm(seed: int = 0) -> FigureReport:
    """CBCS with SFS vs BNL vs divide-and-conquer (Section 7.3's claim
    that the caching benefit is independent of the skyline algorithm)."""
    from repro.skyline.bnl import bnl_skyline
    from repro.skyline.bskytree import bskytree_skyline
    from repro.skyline.dandc import dandc_skyline
    from repro.skyline.sfs import sfs_skyline
    from repro.storage.table import DiskTable
    from repro.core.cbcs import CBCS

    n = scaled(20_000, 100_000, 500_000)
    data = generate("independent", n, 4, seed=seed)
    n_queries = scaled(40, 100, 300)

    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label, algorithm in [
        ("SFS", sfs_skyline),
        ("BNL", bnl_skyline),
        ("D&C", dandc_skyline),
        ("BSkyTree", bskytree_skyline),
    ]:
        engine = CBCS(DiskTable(data), skyline_algorithm=algorithm)
        gen = WorkloadGenerator(data, seed=seed + 1)
        result = run_queries(engine, gen.exploratory_stream(n_queries))
        skyline_ms = float(
            np.mean([o.timings.skyline_ms for o in result.outcomes])
        )
        series[label] = {
            "mean_ms": result.mean_total_ms(),
            "mean_points_read": result.mean_points_read(),
            "mean_skyline_ms": skyline_ms,
        }
        rows.append(
            [label, result.mean_total_ms(), skyline_ms, result.mean_points_read()]
        )
    text = format_table(
        ["skyline algorithm", "mean ms", "skyline stage (ms)", "mean points read"],
        rows,
        title=f"CBCS independence of the skyline algorithm (|S|={n}, |D|=4)",
    )
    return FigureReport(
        figure="ablation-skyline-algorithm",
        title="CBCS with SFS / BNL / D&C",
        text=text,
        series=series,
    )


def ablation_cost_strategy(seed: int = 0) -> FigureReport:
    """The cost-based strategy (extension) vs the paper's best heuristics
    on the independent multi-user workload."""
    from repro.core.strategies import CostBased, MaxOverlapSP, PrioritizedND
    from repro.storage.table import DiskTable
    from repro.core.cbcs import CBCS
    from repro.bench.harness import run_independent_workload

    n = scaled(20_000, 100_000, 500_000)
    data = generate("independent", n, 4, seed=seed)

    rows = []
    series: Dict[str, Dict[str, float]] = {}
    configs = [
        ("MaxOverlapSP", lambda table: MaxOverlapSP()),
        ("PrioritizednD (Std)", lambda table: PrioritizedND.std()),
        ("CostBased", lambda table: CostBased(table, ApproximateMPR(1))),
    ]
    for label, factory in configs:
        table = DiskTable(data)
        engine = CBCS(
            table, strategy=factory(table), region_computer=ApproximateMPR(1)
        )
        result = run_independent_workload(
            data, {label: engine},
            n_queries=scaled(25, 80, 200),
            warm_queries=scaled(100, 400, 2000),
            seed=seed + 6,
        )[label]
        proc_ms = float(
            np.mean([o.timings.processing_ms for o in result.outcomes])
        )
        series[label] = {
            "mean_ms": result.mean_total_ms(),
            "mean_points_read": result.mean_points_read(),
            "processing_ms": proc_ms,
        }
        rows.append(
            [label, result.mean_total_ms(), result.mean_points_read(), proc_ms]
        )
    text = format_table(
        ["strategy", "mean ms", "mean points read", "selection overhead (ms)"],
        rows,
        title=f"Cost-based cache search (|S|={n}, |D|=4, independent)",
    )
    return FigureReport(
        figure="ablation-cost-strategy",
        title="Heuristic vs cost-based item selection",
        text=text,
        series=series,
    )


def ablation_replacement(seed: int = 0) -> FigureReport:
    """Replacement policies under capacity pressure (Section 6.2)."""
    n = scaled(20_000, 100_000, 500_000)
    data = generate("independent", n, 4, seed=seed)
    gen_seed = seed + 1
    n_queries = scaled(60, 150, 400)
    capacity = 8

    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label, cache in [
        ("unbounded", SkylineCache()),
        ("LRU, cap 8", SkylineCache(capacity=capacity, policy="lru")),
        ("LCU, cap 8", SkylineCache(capacity=capacity, policy="lcu")),
    ]:
        engine = make_cbcs(data, region=ApproximateMPR(1), cache=cache)
        gen = WorkloadGenerator(data, seed=gen_seed)
        result = run_queries(engine, gen.exploratory_stream(n_queries))
        hits = sum(1 for o in result.outcomes if o.cache_hit)
        series[label] = {
            "mean_ms": result.mean_total_ms(),
            "mean_points_read": result.mean_points_read(),
            "hit_rate": hits / len(result),
            "evictions": float(cache.evictions),
        }
        rows.append(
            [label, result.mean_total_ms(), result.mean_points_read(),
             f"{hits}/{len(result)}", cache.evictions]
        )
    text = format_table(
        ["cache", "mean ms", "mean points read", "cache hits", "evictions"],
        rows,
        title=f"Cache replacement under pressure (|S|={n}, |D|=4, interactive)",
    )
    return FigureReport(
        figure="ablation-replacement",
        title="LRU vs LCU vs unbounded cache",
        text=text,
        series=series,
    )


def ablation_multi_item(seed: int = 0) -> FigureReport:
    """Single- vs multi-item region computation (Section 6.3)."""
    n = scaled(20_000, 100_000, 500_000)
    data = generate("independent", n, 3, seed=seed)
    gen = WorkloadGenerator(data, seed=seed + 2)
    # Warm queries tile the space; probe queries straddle several of them.
    warm = gen.independent_queries(scaled(40, 120, 300))
    probes = gen.independent_queries(scaled(25, 60, 120))

    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label, region in [
        ("single item (aMPR 1NN)", ApproximateMPR(1)),
        ("multi item (2 x 1NN)", MultiItemMPR(k=1, max_items=2)),
        ("multi item (3 x 3NN)", MultiItemMPR(k=3, max_items=3)),
    ]:
        engine = make_cbcs(data, region=region)
        engine.warm(warm)
        result = run_queries(engine, probes)
        series[label] = {
            "mean_ms": result.mean_total_ms(),
            "mean_points_read": result.mean_points_read(),
            "mean_range_queries": result.mean_range_queries(),
        }
        rows.append(
            [label, result.mean_total_ms(), result.mean_points_read(),
             result.mean_range_queries()]
        )
    text = format_table(
        ["region computer", "mean ms", "mean points read", "mean range queries"],
        rows,
        title=f"Multi-item cache exploitation (|S|={n}, |D|=3, independent)",
    )
    return FigureReport(
        figure="ablation-multi-item",
        title="Single-item vs multi-item MPR",
        text=text,
        series=series,
    )


def ablation_invalidation(seed: int = 0) -> FigureReport:
    """Invalidation-anchor budget: boxes vs points read (unstable cases)."""
    # Independent 3-D keeps the exact-staircase reference computable; the
    # explosion that motivates the approximation is itself the subject of
    # Figure 9 and needs no re-demonstration here.
    n = 20_000
    ndim = 3
    data = generate("independent", n, ndim, seed=seed)
    gen = WorkloadGenerator(data, seed=seed + 3)

    # Build unstable cache/query pairs: raise a random lower bound.
    rng = np.random.default_rng(seed + 4)
    pairs = []
    while len(pairs) < scaled(20, 40, 80):
        old = gen.initial_query()
        inside = data[old.satisfied_mask(data)]
        if len(inside) < 20:
            continue
        dim = int(rng.integers(ndim))
        width = old.hi[dim] - old.lo[dim]
        new = old.with_bound(dim, lower=float(old.lo[dim] + 0.2 * width))
        pairs.append((old, inside[sfs_skyline(inside)], new))

    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for label, anchors in [
        ("exact staircase", None),
        ("24 anchors", 24),
        ("8 anchors", 8),
        ("1 anchor (collapse)", 1),
    ]:
        boxes_counts: List[int] = []
        reads: List[int] = []
        for old, skyline, new in pairs:
            surviving = skyline[new.satisfied_mask(skyline)]
            result = compute_mpr(
                old, skyline, new,
                prune_with=surviving[:1] if len(surviving) else surviving,
                max_invalidation_pieces=None if anchors is None else 512,
                max_invalidation_anchors=anchors,
                merge_boxes=True,
            )
            boxes_counts.append(len(result.boxes))
            reads.append(int(union_mask(result.boxes, data).sum()))
        series[label] = {
            "mean_boxes": float(np.mean(boxes_counts)),
            "mean_points": float(np.mean(reads)),
        }
        rows.append([label, float(np.mean(boxes_counts)), float(np.mean(reads))])
    text = format_table(
        ["invalidation cover", "mean range queries", "mean points to read"],
        rows,
        title=f"Unstable-case invalidation approximation (independent, |S|={n}, |D|={ndim})",
    )
    return FigureReport(
        figure="ablation-invalidation",
        title="Invalidation-anchor budget trade-off",
        text=text,
        series=series,
    )
