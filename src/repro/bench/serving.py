"""Overload soak: open-loop serving benchmark for the ingress layer.

The acceptance test for the overload-safe serving path (ISSUE PR 9): a
zipf-skewed multi-user workload is submitted on an *open-loop* arrival
schedule -- requests arrive at a fixed rate whether or not the service
keeps up, the regime where a closed-loop benchmark silently self-throttles
and hides overload -- at a configurable multiple of the measured
saturation rate.  The soak then checks the ingress guarantees:

- **accounting closes exactly**: every submitted request terminates as an
  answer, a typed rejection (``shed`` / ``rejected_queue_full`` /
  ``deadline_exceeded``), or a reported error -- zero silent drops;
- **admitted answers are bit-exact**: every non-stale answer (including
  coalesced/deduplicated ones) equals the reference skyline computed
  directly over the dataset; stale serves carry their ``stale`` flag;
- **latency is bounded**: because shedding caps the queue, the answered
  p99 stays under a limit derived from queue capacity and service time --
  independent of how long the overload lasts;
- **coalescing works**: the zipf head plus shrink-variants of it must
  produce in-flight dedup/subsumption hits under backlog.

The engine's cost model charges *simulated* milliseconds, which cost
nearly no wall time -- an arrival schedule could never saturate it.
:class:`PacedEngine` therefore replays each answer's simulated cost as
real ``sleep`` time (with a floor), so saturation, queue growth, and
shedding are all genuine.  Everything is seeded and the report is
serializable; run it via ``python -m repro.bench --overload N`` (exit
code 6 on failure) or directly::

    from repro.bench.serving import run_overload_soak
    report = run_overload_soak(n_requests=200, profile="none", seed=0)
    print(report.render_text())
    assert report.passed
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.chaos import _reference_skyline, _same_multiset
from repro.bench.harness import scaled
from repro.core.cbcs import CBCS, RUNG_STALE, RUNG_UNAVAILABLE
from repro.data.generator import independent
from repro.service import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_REJECTED_QUEUE_FULL,
    STATUS_SHED,
    AdmissionPolicy,
    QueryService,
    RequestRejected,
)
from repro.storage.faults import FaultInjector, FaultyDiskTable, get_profile
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

#: Rungs whose answers may legitimately differ from the reference.
_STALE_RUNGS = (RUNG_STALE, RUNG_UNAVAILABLE)

#: Priority mix of the synthetic client population.
_PRIORITY_MIX = (("interactive", 0.3), ("normal", 0.5), ("batch", 0.2))


class PacedEngine:
    """Replays an engine's *simulated* cost as wall-clock time.

    The repo's timings are simulated milliseconds (cost-model I/O charges),
    so a real engine answers in microseconds of wall time and no arrival
    rate could overload it.  This shim sleeps after each answer until the
    wall time spent matches ``max(outcome.total_ms * pace, floor_ms)``,
    making the open-loop soak's saturation arithmetic honest.  Engine
    exceptions (including :class:`~repro.resilience.errors.DeadlineExceeded`)
    propagate without padding.
    """

    def __init__(self, engine, pace: float = 1.0, floor_ms: float = 2.0):
        self.engine = engine
        self.pace = float(pace)
        self.floor_ms = float(floor_ms)

    # The service probes these on construction; delegate to the real engine.
    @property
    def obs(self):
        return getattr(self.engine, "obs", None)

    @property
    def resilience(self):
        return getattr(self.engine, "resilience", None)

    @property
    def cache(self):
        return getattr(self.engine, "cache", None)

    def query(self, constraints, query_id=None, deadline=None):
        t0 = time.perf_counter()
        outcome = self.engine.query(
            constraints, query_id=query_id, deadline=deadline
        )
        target_s = max(outcome.total_ms * self.pace, self.floor_ms) / 1000.0
        leftover = target_s - (time.perf_counter() - t0)
        if leftover > 0:
            time.sleep(leftover)
        return outcome

    def close(self) -> None:
        self.engine.close()


@dataclass
class ServingReport:
    """Everything the overload soak measured, plus the verdict inputs."""

    profile: str
    seed: int
    workers: int
    n_requests: int
    rate_multiplier: float
    mean_service_ms: float = 0.0
    saturation_rps: float = 0.0
    target_rps: float = 0.0
    achieved_rps: float = 0.0
    queue_capacity: int = 0
    submitted: int = 0
    answered: int = 0
    shed: int = 0
    rejected_queue_full: int = 0
    deadline_exceeded: int = 0
    error_count: int = 0
    coalesced_dedup: int = 0
    coalesced_subsumed: int = 0
    stale_serves: int = 0
    incorrect_answers: int = 0
    unhandled_exceptions: int = 0
    p50_ms: float = float("nan")
    p95_ms: float = float("nan")
    p99_ms: float = float("nan")
    max_ms: float = float("nan")
    p99_limit_ms: float = float("inf")
    min_coalesced: int = 1
    by_priority: Dict[str, Dict[str, int]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def coalesced(self) -> int:
        return self.coalesced_dedup + self.coalesced_subsumed

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions turned away before execution."""
        if not self.submitted:
            return 0.0
        return (self.shed + self.rejected_queue_full) / self.submitted

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submissions answered by piggybacking on another."""
        if not self.submitted:
            return 0.0
        return self.coalesced / self.submitted

    @property
    def accounting_closed(self) -> bool:
        """True iff every submission has exactly one typed terminal state."""
        return self.submitted == (
            self.answered
            + self.shed
            + self.rejected_queue_full
            + self.deadline_exceeded
            + self.error_count
        )

    @property
    def p99_bounded(self) -> bool:
        """Answered p99 under the capacity-derived limit (vacuous if no
        request was answered)."""
        if not self.answered:
            return True
        return self.p99_ms <= self.p99_limit_ms

    @property
    def passed(self) -> bool:
        return (
            self.unhandled_exceptions == 0
            and self.incorrect_answers == 0
            and self.accounting_closed
            and self.coalesced >= self.min_coalesced
            and self.p99_bounded
        )

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "workers": self.workers,
            "n_requests": self.n_requests,
            "rate_multiplier": self.rate_multiplier,
            "mean_service_ms": self.mean_service_ms,
            "saturation_rps": self.saturation_rps,
            "target_rps": self.target_rps,
            "achieved_rps": self.achieved_rps,
            "queue_capacity": self.queue_capacity,
            "submitted": self.submitted,
            "answered": self.answered,
            "shed": self.shed,
            "rejected_queue_full": self.rejected_queue_full,
            "deadline_exceeded": self.deadline_exceeded,
            "error_count": self.error_count,
            "coalesced_dedup": self.coalesced_dedup,
            "coalesced_subsumed": self.coalesced_subsumed,
            "coalesced": self.coalesced,
            "stale_serves": self.stale_serves,
            "incorrect_answers": self.incorrect_answers,
            "unhandled_exceptions": self.unhandled_exceptions,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "p99_limit_ms": self.p99_limit_ms,
            "shed_rate": self.shed_rate,
            "coalesce_rate": self.coalesce_rate,
            "accounting_closed": self.accounting_closed,
            "by_priority": {k: dict(v) for k, v in self.by_priority.items()},
            "errors": list(self.errors),
            "passed": self.passed,
        }

    def render_text(self) -> str:
        lines = [
            f"# overload soak (profile={self.profile}, seed={self.seed}, "
            f"{self.n_requests} requests, {self.workers} workers, "
            f"{self.rate_multiplier:.1f}x saturation)",
            f"service time         : {self.mean_service_ms:.2f}ms mean -> "
            f"saturation {self.saturation_rps:.0f} rps, "
            f"target {self.target_rps:.0f} rps, "
            f"achieved {self.achieved_rps:.0f} rps",
            f"accounting           : {self.submitted} submitted = "
            f"{self.answered} answered + {self.shed} shed + "
            f"{self.rejected_queue_full} queue-full + "
            f"{self.deadline_exceeded} deadline + {self.error_count} errors "
            f"({'CLOSED' if self.accounting_closed else 'LEAK'})",
            f"coalesced            : {self.coalesced} "
            f"({self.coalesced_dedup} dedup, {self.coalesced_subsumed} "
            f"subsumed; rate {self.coalesce_rate:.1%})",
            f"shed rate            : {self.shed_rate:.1%} "
            f"(queue capacity {self.queue_capacity})",
            f"answered latency     : p50={self.p50_ms:.1f}ms "
            f"p95={self.p95_ms:.1f}ms p99={self.p99_ms:.1f}ms "
            f"max={self.max_ms:.1f}ms (limit {self.p99_limit_ms:.0f}ms)",
            f"correctness          : {self.incorrect_answers} incorrect, "
            f"{self.stale_serves} stale-flagged, "
            f"{self.unhandled_exceptions} unhandled exceptions",
        ]
        for priority, counts in sorted(self.by_priority.items()):
            lines.append(
                f"  {priority:<12}: "
                + " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            )
        for err in self.errors[:10]:
            lines.append(f"error: {err}")
        if len(self.errors) > 10:
            lines.append(f"... and {len(self.errors) - 10} more errors")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def run_overload_soak(
    n_requests: int = 200,
    profile: str = "none",
    seed: int = 0,
    workers: int = 4,
    rate_multiplier: float = 2.0,
    n_points: Optional[int] = None,
    ndim: int = 4,
    obs=None,
    queue_capacity: int = 64,
    calibration_queries: int = 25,
    floor_ms: float = 2.0,
    deadline_multiplier: float = 25.0,
    min_coalesced: int = 1,
    p99_limit_ms: Optional[float] = None,
    engine_workers: int = 1,
) -> ServingReport:
    """Run the open-loop overload soak and return its :class:`ServingReport`.

    The calibration phase answers ``calibration_queries`` zipf queries
    serially (warming the cache exactly as steady-state traffic would) to
    measure the mean wall service time; saturation is ``workers`` over
    that, and the arrival schedule draws exponential inter-arrival gaps at
    ``rate_multiplier`` times saturation.  Each request gets a priority
    from a fixed mix, and interactive requests carry a deadline of
    ``deadline_multiplier`` mean service times, so queue backlog produces
    typed ``deadline_exceeded`` rejections alongside shedding.

    ``p99_limit_ms`` defaults to a generous bound derived from the queue
    capacity and calibrated service time -- the worst admitted request
    waits behind at most a full queue -- so a pass certifies that shedding
    (not luck) keeps latency bounded.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be positive")
    if rate_multiplier <= 0:
        raise ValueError("rate_multiplier must be positive")
    fault_profile = get_profile(profile)
    if n_points is None:
        n_points = scaled(2_000, 10_000, 30_000)
    data = independent(n_points, ndim, seed=seed)
    metrics = obs.metrics if obs is not None and obs.enabled else None
    if fault_profile.name == "none":
        table = DiskTable(data)
    else:
        injector = FaultInjector(
            profile=fault_profile, seed=seed, metrics=metrics
        )
        table = FaultyDiskTable(DiskTable(data), injector)
    engine = PacedEngine(
        CBCS(table, obs=obs, resilience=True, workers=engine_workers),
        floor_ms=floor_ms,
    )

    gen = WorkloadGenerator(data, seed=seed)
    universe = max(8, min(25, n_requests // 4))
    stream = gen.zipf_stream(
        calibration_queries + n_requests, universe=universe
    )
    warmup, queries = stream[:calibration_queries], stream[calibration_queries:]

    # Phase 1: serial calibration.  The first half warms the cache; only
    # the second half is timed, so the measured service time reflects the
    # steady state (cold cache misses would inflate it and the derived
    # "2x saturation" rate would never actually overload the service).
    half = max(len(warmup) // 2, 1)
    for constraints in warmup[:half]:
        engine.query(constraints)
    timed = warmup[half:] or warmup[:half]
    t0 = time.perf_counter()
    for constraints in timed:
        engine.query(constraints)
    mean_service_s = max((time.perf_counter() - t0) / len(timed), 1e-4)
    saturation_rps = workers / mean_service_s
    target_rps = rate_multiplier * saturation_rps
    mean_service_ms = mean_service_s * 1000.0

    report = ServingReport(
        profile=fault_profile.name,
        seed=seed,
        workers=workers,
        n_requests=n_requests,
        rate_multiplier=rate_multiplier,
        mean_service_ms=mean_service_ms,
        saturation_rps=saturation_rps,
        target_rps=target_rps,
        queue_capacity=queue_capacity,
        min_coalesced=min_coalesced,
    )
    # The worst admitted request drains behind a full queue on `workers`
    # lanes; everything beyond that must have been shed.  Generous slack
    # absorbs scheduler jitter on loaded CI runners.
    report.p99_limit_ms = (
        p99_limit_ms
        if p99_limit_ms is not None
        else (queue_capacity / workers + 4.0) * mean_service_ms * 8.0 + 250.0
    )

    rng = np.random.default_rng(seed + 1)
    names = [name for name, _ in _PRIORITY_MIX]
    weights = [w for _, w in _PRIORITY_MIX]
    priorities = [names[i] for i in rng.choice(len(names), n_requests, p=weights)]
    gaps = rng.exponential(1.0 / target_rps, size=n_requests)
    deadline_ms = max(deadline_multiplier * mean_service_ms, 10.0)

    policy = AdmissionPolicy(capacity=queue_capacity)
    futures: List[tuple] = []
    done_at: List[Optional[float]] = [None] * n_requests
    service = QueryService(engine, workers=workers, policy=policy)
    try:
        # Phase 2: open-loop submission.  submit() never blocks, so a
        # schedule the service cannot keep up with turns into queue depth
        # and typed rejections, never into client-side self-throttling.
        start = time.perf_counter()
        next_arrival = start
        for i, constraints in enumerate(queries):
            next_arrival += gaps[i]
            delay = next_arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            submitted_at = time.perf_counter()
            future = service.submit(
                constraints,
                priority=priorities[i],
                deadline_ms=(
                    deadline_ms if priorities[i] == "interactive" else None
                ),
            )

            def _stamp(f, i=i):
                done_at[i] = time.perf_counter()

            future.add_done_callback(_stamp)
            futures.append((i, constraints, priorities[i], submitted_at, future))
        # Phase 3: drain.
        latencies: List[float] = []
        for i, constraints, priority, submitted_at, future in futures:
            counts = report.by_priority.setdefault(priority, {})
            try:
                result = future.result()
            except Exception as exc:  # engine error, reported via counters
                report.errors.append(
                    f"request {i}: {type(exc).__name__}: {exc}"
                )
                counts["error"] = counts.get("error", 0) + 1
                continue
            if isinstance(result, RequestRejected):
                counts[result.status] = counts.get(result.status, 0) + 1
                continue
            counts["answered"] = counts.get("answered", 0) + 1
            end = done_at[i] if done_at[i] is not None else time.perf_counter()
            latencies.append((end - submitted_at) * 1000.0)
            if result.degraded in _STALE_RUNGS or result.stale:
                report.stale_serves += 1
                continue
            reference = _reference_skyline(data, constraints)
            if not _same_multiset(np.asarray(result.skyline), reference):
                report.incorrect_answers += 1
                report.errors.append(
                    f"request {i}: non-stale answer differs from reference "
                    f"({len(result.skyline)} vs {len(reference)} points, "
                    f"case={result.case}, served_by={result.served_by})"
                )
        elapsed = time.perf_counter() - start
        report.achieved_rps = n_requests / elapsed if elapsed > 0 else 0.0
    finally:
        service.close()
        engine.close()

    stats = service.stats()
    report.submitted = stats["submitted"]
    report.answered = stats["answered"]
    report.shed = stats["shed"]
    report.rejected_queue_full = stats["rejected_queue_full"]
    report.deadline_exceeded = stats["deadline_exceeded"]
    report.error_count = stats["errors"]
    report.coalesced_dedup = stats["coalesced_dedup"]
    report.coalesced_subsumed = stats["coalesced_subsumed"]
    if len(report.errors) != report.error_count + report.incorrect_answers:
        # A future that raised without a matching service error counter (or
        # vice versa) would be a silent accounting leak; surface it.
        report.unhandled_exceptions += abs(
            len(report.errors) - report.error_count - report.incorrect_answers
        )
    if latencies:
        arr = np.asarray(latencies)
        report.p50_ms = float(np.percentile(arr, 50))
        report.p95_ms = float(np.percentile(arr, 95))
        report.p99_ms = float(np.percentile(arr, 99))
        report.max_ms = float(arr.max())
    return report
