"""Bit-identity sweep: the sharded engine must answer like the unsharded one.

The headline invariant of the sharded refactor (ISSUE PR 10): for every
seed x shard count x strategy cell, :class:`~repro.core.sharded.ShardedCBCS`
returns *exactly* the unsharded engine's answer -- same points, same flags,
same order after canonical sort -- and its I/O accounting reconciles:

- fleet ``points_read`` equals the sum of per-shard ``points_read``;
- ``shards_pruned + shards_scanned == shards_total`` on every query;
- the merge candidates equal the pooled per-shard skyline sizes;
- over a clean run, the accumulated per-query I/O equals the shard tables'
  own counters (nothing reads the disk without being attributed).

With a fault profile, one shard's table is wrapped in a
:class:`~repro.storage.faults.FaultyDiskTable` and every shard engine runs
resilient: non-stale fleet answers must still match the reference skyline
computed directly over the data, stale answers must be flagged
(``stale=True``), and the faulted shard's degradations must surface in the
fleet outcome -- per-shard resilience semantics preserved through the
merge.

Run via ``python -m repro.bench --shard-sweep N [--faults PROFILE]`` (exit
code 7 on failure) or directly::

    from repro.bench.shardsweep import run_shard_sweep
    report = run_shard_sweep(n_queries=40, seeds=(0, 1))
    assert report.passed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.chaos import _reference_skyline, _same_multiset
from repro.bench.harness import scaled
from repro.core.cbcs import CBCS
from repro.core.sharded import ShardedCBCS
from repro.core.strategies import MaxOverlap, MaxOverlapSP
from repro.data.generator import independent
from repro.storage.sharding import ShardedTable
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

#: Strategy factories swept (name -> zero-arg constructor).
SWEEP_STRATEGIES = {
    "max-overlap-sp": MaxOverlapSP,
    "max-overlap": MaxOverlap,
}

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)


@dataclass
class ShardSweepReport:
    """Everything the sweep checked, plus the pass/fail verdict inputs."""

    seeds: Tuple[int, ...]
    shard_counts: Tuple[int, ...]
    strategies: Tuple[str, ...]
    profile: Optional[str]
    workers: int
    n_queries: int
    cells: int = 0
    queries_checked: int = 0
    answer_mismatches: int = 0
    flag_mismatches: int = 0
    io_mismatches: int = 0
    accounting_mismatches: int = 0
    unhandled_exceptions: int = 0
    stale_serves: int = 0
    retries: int = 0
    shards_pruned: int = 0
    shards_scanned: int = 0
    faulted_shard_degradations: int = 0
    pruning_cache_hits: int = 0
    errors: List[str] = field(default_factory=list)
    points_read_by_shards: Dict[int, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (
            self.unhandled_exceptions == 0
            and self.answer_mismatches == 0
            and self.flag_mismatches == 0
            and self.io_mismatches == 0
            and self.accounting_mismatches == 0
        )

    def as_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "shard_counts": list(self.shard_counts),
            "strategies": list(self.strategies),
            "profile": self.profile,
            "workers": self.workers,
            "n_queries": self.n_queries,
            "cells": self.cells,
            "queries_checked": self.queries_checked,
            "answer_mismatches": self.answer_mismatches,
            "flag_mismatches": self.flag_mismatches,
            "io_mismatches": self.io_mismatches,
            "accounting_mismatches": self.accounting_mismatches,
            "unhandled_exceptions": self.unhandled_exceptions,
            "stale_serves": self.stale_serves,
            "retries": self.retries,
            "shards_pruned": self.shards_pruned,
            "shards_scanned": self.shards_scanned,
            "faulted_shard_degradations": self.faulted_shard_degradations,
            "pruning_cache_hits": self.pruning_cache_hits,
            "points_read_by_shards": {
                str(k): v for k, v in sorted(self.points_read_by_shards.items())
            },
            "errors": list(self.errors),
            "passed": self.passed,
        }

    def render_text(self) -> str:
        lines = [
            f"# shard sweep (seeds={list(self.seeds)}, "
            f"shards={list(self.shard_counts)}, "
            f"strategies={list(self.strategies)}, "
            f"faults={self.profile or 'none'}, workers={self.workers})",
            f"cells checked        : {self.cells} "
            f"({self.queries_checked} query comparisons)",
            f"answer mismatches    : {self.answer_mismatches}",
            f"flag mismatches      : {self.flag_mismatches}",
            f"io mismatches        : {self.io_mismatches}",
            f"accounting mismatches: {self.accounting_mismatches}",
            f"unhandled exceptions : {self.unhandled_exceptions}",
            f"shards pruned/scanned: {self.shards_pruned}/{self.shards_scanned}",
            f"pruning cache hits   : {self.pruning_cache_hits}",
        ]
        if self.profile:
            lines.append(
                f"stale serves         : {self.stale_serves} (all flagged); "
                f"retries: {self.retries}; faulted-shard degradations: "
                f"{self.faulted_shard_degradations}"
            )
        for err in self.errors[:20]:
            lines.append(f"error: {err}")
        if len(self.errors) > 20:
            lines.append(f"... and {len(self.errors) - 20} more errors")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _check_accounting(report: ShardSweepReport, outcome, label: str) -> None:
    """Per-query shard accounting + I/O reconciliation checks."""
    ok = (
        outcome.shards_pruned + outcome.shards_scanned == outcome.shards_total
        and len(outcome.per_shard) == outcome.shards_scanned
    )
    if not ok:
        report.accounting_mismatches += 1
        report.errors.append(
            f"{label}: pruned {outcome.shards_pruned} + scanned "
            f"{outcome.shards_scanned} != total {outcome.shards_total}"
        )
    per_shard_points = sum(p["points_read"] for p in outcome.per_shard)
    if outcome.points_read != per_shard_points:
        report.io_mismatches += 1
        report.errors.append(
            f"{label}: fleet points_read {outcome.points_read} != "
            f"sum of per-shard {per_shard_points}"
        )
    pooled = sum(p["skyline_size"] for p in outcome.per_shard)
    if outcome.merge_candidates != pooled:
        report.io_mismatches += 1
        report.errors.append(
            f"{label}: merge candidates {outcome.merge_candidates} != "
            f"pooled per-shard skylines {pooled}"
        )


def run_shard_sweep(
    n_queries: int = 40,
    seeds: Sequence[int] = (0, 1),
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    strategies: Optional[Sequence[str]] = None,
    profile: Optional[str] = None,
    faulted_shard: int = 0,
    n_points: Optional[int] = None,
    ndim: int = 4,
    workers: int = 1,
    obs=None,
) -> ShardSweepReport:
    """Run the bit-identity sweep and return its report.

    Clean mode (``profile=None``): each (seed, strategy) runs an unsharded
    reference engine, then every shard count re-answers the same
    partition-skewed stream on a range-partitioned fleet; every answer must
    match bit-for-bit and every counter must reconcile, including the
    end-of-cell check that accumulated per-query I/O equals the shard
    tables' own counters.

    Fault mode (``profile="default"`` etc.): shard ``faulted_shard`` is
    wrapped in a fault-injecting table and engines run resilient; non-stale
    answers are checked against the reference skyline over the raw data,
    stale answers must be flagged, and the faulted shard must be the one
    degrading.
    """
    strategy_names = tuple(strategies or SWEEP_STRATEGIES)
    for name in strategy_names:
        if name not in SWEEP_STRATEGIES:
            raise ValueError(
                f"unknown sweep strategy {name!r}; "
                f"expected one of {sorted(SWEEP_STRATEGIES)}"
            )
    if n_points is None:
        n_points = scaled(2_000, 8_000, 30_000)
    report = ShardSweepReport(
        seeds=tuple(seeds),
        shard_counts=tuple(shard_counts),
        strategies=strategy_names,
        profile=profile,
        workers=int(workers),
        n_queries=int(n_queries),
    )

    for seed in seeds:
        data = independent(n_points, ndim, seed=seed)
        queries = list(
            WorkloadGenerator(data, seed=seed + 1).partition_stream(
                n_queries, tenants=6, key_dim=0
            )
        )
        for strategy_name in strategy_names:
            make_strategy = SWEEP_STRATEGIES[strategy_name]
            references = None
            if profile is None:
                ref_engine = CBCS(DiskTable(data), strategy=make_strategy())
                references = [ref_engine.query(q) for q in queries]
                ref_engine.close()
            for count in shard_counts:
                label = f"seed={seed} strategy={strategy_name} shards={count}"
                report.cells += 1
                engine = _build_engine(
                    data,
                    count,
                    make_strategy,
                    profile=profile,
                    faulted_shard=faulted_shard,
                    seed=seed,
                    workers=workers,
                    obs=obs,
                )
                _run_cell(
                    report, engine, queries, data, references, label,
                    profile=profile,
                    faulted_shard=faulted_shard % count,
                )
                report.pruning_cache_hits += engine.pruning_cache.hits
                report.points_read_by_shards[count] = (
                    report.points_read_by_shards.get(count, 0)
                    + engine.table.stats_total().points_read
                )
                engine.close()
    return report


def _build_engine(
    data,
    n_shards: int,
    make_strategy,
    profile: Optional[str],
    faulted_shard: int,
    seed: int,
    workers: int,
    obs,
) -> ShardedCBCS:
    table = ShardedTable(data, n_shards, mode="range", key_dim=0)
    wrapper = None
    resilience = None
    if profile is not None:
        from repro.storage.faults import FaultInjector, FaultyDiskTable, get_profile

        fault_profile = get_profile(profile)
        target = faulted_shard % n_shards

        def wrapper(shard_id, shard_table):
            if shard_id != target:
                return shard_table
            return FaultyDiskTable(
                shard_table,
                FaultInjector(profile=fault_profile, seed=seed),
            )

        resilience = True
    return ShardedCBCS(
        table,
        strategy_factory=make_strategy,
        workers=workers,
        obs=obs,
        resilience=resilience,
        shard_table_wrapper=wrapper,
    )


def _run_cell(
    report: ShardSweepReport,
    engine: ShardedCBCS,
    queries,
    data,
    references,
    label: str,
    profile: Optional[str],
    faulted_shard: int,
) -> None:
    io_accum = 0
    for i, constraints in enumerate(queries):
        qlabel = f"{label} query={i}"
        try:
            outcome = engine.query(constraints)
        except Exception as exc:  # must never happen, clean or faulted
            report.unhandled_exceptions += 1
            report.errors.append(f"{qlabel}: {type(exc).__name__}: {exc}")
            continue
        report.queries_checked += 1
        report.shards_pruned += outcome.shards_pruned
        report.shards_scanned += outcome.shards_scanned
        report.retries += outcome.retries
        _check_accounting(report, outcome, qlabel)
        io_accum += outcome.points_read
        if profile is not None:
            for entry in outcome.per_shard:
                if entry["degraded"] is not None:
                    if entry["shard_id"] == faulted_shard:
                        report.faulted_shard_degradations += 1
                    else:
                        report.flag_mismatches += 1
                        report.errors.append(
                            f"{qlabel}: un-faulted shard "
                            f"{entry['shard_id']} degraded "
                            f"({entry['degraded']})"
                        )
            if outcome.stale:
                report.stale_serves += 1
                continue
            reference = _reference_skyline(data, constraints)
            if not _same_multiset(np.asarray(outcome.skyline), reference):
                report.answer_mismatches += 1
                report.errors.append(
                    f"{qlabel}: non-stale answer differs from reference "
                    f"({len(outcome.skyline)} vs {len(reference)} points)"
                )
            continue
        reference = references[i]
        if not _same_multiset(
            np.asarray(outcome.skyline), np.asarray(reference.skyline)
        ):
            report.answer_mismatches += 1
            report.errors.append(
                f"{qlabel}: answer differs from unsharded "
                f"({len(outcome.skyline)} vs {len(reference.skyline)} points)"
            )
        if bool(outcome.stale) != bool(reference.stale) or (
            outcome.degraded is not None
        ) != (reference.degraded is not None):
            report.flag_mismatches += 1
            report.errors.append(
                f"{qlabel}: flags differ (stale {outcome.stale} vs "
                f"{reference.stale}, degraded {outcome.degraded} vs "
                f"{reference.degraded})"
            )
    if profile is None:
        # End-of-cell reconciliation: everything the queries were charged is
        # exactly what the shard tables' own counters saw.
        table_points = engine.table.stats_total().points_read
        if io_accum != table_points:
            report.io_mismatches += 1
            report.errors.append(
                f"{label}: accumulated per-query points_read {io_accum} != "
                f"shard-table counters {table_points}"
            )
