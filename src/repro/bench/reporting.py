"""Plain-text rendering of benchmark results in the paper's figure shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    unit: str = "",
) -> str:
    """Render one figure-style series table: x values as rows, one column
    per method."""
    headers = [x_label] + [
        f"{name} ({unit})" if unit else name for name in series
    ]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def distribution_summary(values: np.ndarray) -> Dict[str, float]:
    """Five-number summary used for the paper's box-plot figures (11, 12)."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return {k: float("nan") for k in ("min", "p25", "median", "p75", "max", "mean")}
    return {
        "min": float(values.min()),
        "p25": float(np.percentile(values, 25)),
        "median": float(np.percentile(values, 50)),
        "p75": float(np.percentile(values, 75)),
        "max": float(values.max()),
        "mean": float(values.mean()),
    }


def format_boxplot_table(
    series: Dict[str, np.ndarray], title: str = "", unit: str = "ms"
) -> str:
    """Render response-time distributions as a table of quantiles."""
    headers = ["method", f"min ({unit})", "p25", "median", "p75", f"max ({unit})", "mean"]
    rows = []
    for name, values in series.items():
        s = distribution_summary(np.asarray(values))
        rows.append(
            [name, s["min"], s["p25"], s["median"], s["p75"], s["max"], s["mean"]]
        )
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
