"""Benchmark snapshots and regression detection (``BENCH_*.json``).

The paper's claims are quantitative -- CBCS reads fewer points and issues
cheaper I/O than Baseline and BBS -- so the repo keeps a *performance
trajectory*: every ``python -m repro.bench --save-bench`` run serializes a
schema-versioned snapshot of per-figure, per-method means (total_ms,
points_read, range_queries, cache hit rate, stage breakdown) plus scale and
git revision, and this module compares two snapshots with noise-aware
thresholds for CI gating.

A regression requires **both** a relative excess and an absolute floor to
trip, so sub-millisecond timing jitter on a 3 ms mean does not page anyone,
while a genuine 2x blow-up in points read does:

- timing metrics (``total_ms``) use ``rel_ms``/``abs_ms`` (wall-clock noise
  on CI runners is large);
- I/O metrics (``points_read``, ``range_queries``) use ``rel_io`` and their
  own absolute floors (deterministic given seed and scale, so tight).

Usage::

    python -m repro.bench --save-bench BENCH_ci.json fig5a fig9a
    python -m repro.bench --baseline benchmarks/BENCH_baseline_quick.json fig5a
    python -m repro.bench.regress BENCH_old.json BENCH_new.json
    python -m repro.bench.regress BENCH_old.json BENCH_new.json --json report.json

The compare CLI exits 0 when no metric regresses beyond threshold, 1 on
regression, and 2 on unreadable/incompatible snapshots.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ioutil import atomic_write_json

SCHEMA = "repro.bench.snapshot"
SCHEMA_VERSION = 1

#: Stages serialized into each method's ``stage_ms`` breakdown.
STAGES = ("processing", "fetch_io", "fetch_wall", "skyline")


class SnapshotError(ValueError):
    """A snapshot file is missing, malformed, or schema-incompatible."""


# ----------------------------------------------------------------------
# Snapshot construction
# ----------------------------------------------------------------------
def summarize_registry(metrics) -> dict:
    """Distill one figure's :class:`~repro.obs.metrics.MetricsRegistry` into
    the per-method means the snapshot stores.

    The registry is the source of truth: ``points_read_total{method=X}`` is
    by construction the sum over X's ``QueryOutcome`` records, so snapshot
    numbers reconcile exactly with the figure tables.
    """
    methods: Dict[str, dict] = {}
    for labels, n in metrics.counters("queries_total"):
        method = labels.get("method", "?")
        if not n:
            continue
        hist = metrics.histogram("query_total_ms", method=method)
        total_ms = (
            {"mean": hist.mean, "p50": hist.percentile(50), "p95": hist.percentile(95)}
            if hist is not None and hist.count
            else {}
        )
        stage_ms = {}
        for stage in STAGES:
            sh = metrics.histogram("stage_ms", method=method, stage=stage)
            if sh is not None and sh.count:
                stage_ms[stage] = sh.mean
        methods[method] = {
            "queries": n,
            "total_ms": total_ms,
            "points_read": metrics.counter_value("points_read_total", method=method) / n,
            "range_queries": metrics.counter_value("range_queries_total", method=method) / n,
            "stage_ms": stage_ms,
        }
    hits = misses = 0.0
    for labels, value in metrics.counters("cache_lookups_total"):
        if labels.get("outcome") == "hit":
            hits += value
        else:
            misses += value
    lookups = hits + misses
    summary = {
        "methods": methods,
        "cache": {
            "lookups": lookups,
            "hit_rate": (hits / lookups) if lookups else None,
        },
    }
    # The warm-restart figure exports its cold/memory/warm comparison as
    # gauges; carry them into the snapshot so the trajectory records the
    # cold-vs-warm gap alongside the per-method means.
    cold_ms = metrics.gauge_value("warmstart_cold_total_ms")
    if cold_ms is not None:
        summary["warmstart"] = {
            "cold_total_ms": cold_ms,
            "mem_total_ms": metrics.gauge_value("warmstart_mem_total_ms"),
            "warm_total_ms": metrics.gauge_value("warmstart_warm_total_ms"),
            "cold_hit_rate": metrics.gauge_value("warmstart_cold_hit_rate"),
            "mem_hit_rate": metrics.gauge_value("warmstart_mem_hit_rate"),
            "warm_hit_rate": metrics.gauge_value("warmstart_warm_hit_rate"),
            "restored_items": metrics.gauge_value("warmstart_restored_items"),
        }
    # The serving figure exports the overload soak's wall-clock latency
    # percentiles and ingress rates as gauges; carry them into the snapshot
    # so the trajectory (and the CI gate, with its own generous serving
    # thresholds) tracks the overload behaviour alongside the per-method
    # means.
    serving_p99 = metrics.gauge_value("serving_p99_ms")
    if serving_p99 is not None:
        summary["serving"] = {
            "p50_ms": metrics.gauge_value("serving_p50_ms"),
            "p95_ms": metrics.gauge_value("serving_p95_ms"),
            "p99_ms": serving_p99,
            "shed_rate": metrics.gauge_value("serving_shed_rate"),
            "coalesce_rate": metrics.gauge_value("serving_coalesce_rate"),
            "deadline_exceeded": metrics.gauge_value(
                "serving_deadline_exceeded"
            ),
            "submitted": metrics.gauge_value("serving_submitted"),
            "answered": metrics.gauge_value("serving_answered"),
            "target_rps": metrics.gauge_value("serving_target_rps"),
        }
    # The sharding figure exports the scale-out curve -- total points read
    # and mean wall-clock per shard count -- as gauges; carry them into the
    # snapshot so the gate holds the points-read curve tight (simulated,
    # deterministic) while treating the fan-out wall-clock generously.
    sharding = {}
    for count in SHARDING_COUNTS:
        points = metrics.gauge_value(f"sharding_points_read_{count}")
        if points is None:
            continue
        sharding[f"points_read_{count}"] = points
        sharding[f"total_ms_{count}"] = metrics.gauge_value(
            f"sharding_total_ms_{count}"
        )
    if sharding:
        summary["sharding"] = sharding
    return summary


def git_rev() -> Optional[str]:
    """Current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_snapshot(
    scale: str,
    figures: Dict[str, dict],
    audit: Optional[dict] = None,
    rev: Optional[str] = None,
    run_id: Optional[str] = None,
    chaos: Optional[dict] = None,
    overload: Optional[dict] = None,
    shard_sweep: Optional[dict] = None,
) -> dict:
    """Assemble the schema-versioned snapshot dict for one bench run."""
    rev = git_rev() if rev is None else rev
    created_at = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    if run_id is None:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        run_id = f"{stamp}-{(rev or 'norev')[:7]}"
    snapshot = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "created_at": created_at,
        "scale": scale,
        "git_rev": rev,
        "figures": figures,
    }
    if audit is not None:
        snapshot["audit"] = audit
    if chaos is not None:
        snapshot["chaos"] = chaos
    if overload is not None:
        snapshot["overload"] = overload
    if shard_sweep is not None:
        snapshot["shard_sweep"] = shard_sweep
    return snapshot


def default_snapshot_name(snapshot: dict) -> str:
    return f"BENCH_{snapshot['run_id']}.json"


def save_snapshot(snapshot: dict, path) -> str:
    """Write a snapshot; a directory path gets ``BENCH_<runid>.json`` inside."""
    from pathlib import Path

    path = Path(path)
    if path.is_dir() or (not path.suffix and not path.exists()):
        path.mkdir(parents=True, exist_ok=True)
        path = path / default_snapshot_name(snapshot)
    # Atomic: a crash mid-save must never leave a torn BENCH_*.json for a
    # later --baseline run to choke on.
    atomic_write_json(path, snapshot)
    return str(path)


def load_snapshot(path) -> dict:
    """Load and schema-validate a ``BENCH_*.json`` snapshot."""
    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("schema") != SCHEMA:
        raise SnapshotError(
            f"snapshot {path} is not a {SCHEMA} file "
            f"(schema={snapshot.get('schema') if isinstance(snapshot, dict) else None!r})"
        )
    version = snapshot.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot {path} has schema_version={version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if not isinstance(snapshot.get("figures"), dict):
        raise SnapshotError(f"snapshot {path} has no figures mapping")
    return snapshot


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Thresholds:
    """Noise-aware regression thresholds.

    A metric regresses only when the relative excess *and* the absolute
    delta both exceed their bound; improvements are reported symmetrically
    but never fail the check.
    """

    rel_ms: float = 0.30
    rel_io: float = 0.10
    abs_ms: float = 2.0
    abs_points: float = 25.0
    abs_range_queries: float = 0.5
    # The serving figure's latency percentiles are pure wall-clock under an
    # intentionally overloaded open-loop schedule, so they are far noisier
    # than the simulated per-method means: tolerate a 2x excess and demand
    # a large absolute delta before failing CI.
    rel_serving: float = 1.0
    abs_serving_ms: float = 50.0


#: metric key -> (snapshot extractor, rel-threshold attr, abs-threshold attr)
_METRICS = {
    "total_ms": (lambda m: m.get("total_ms", {}).get("mean"), "rel_ms", "abs_ms"),
    "points_read": (lambda m: m.get("points_read"), "rel_io", "abs_points"),
    "range_queries": (
        lambda m: m.get("range_queries"),
        "rel_io",
        "abs_range_queries",
    ),
}

#: Serving-section latency metrics gated (generously) by the compare.
_SERVING_METRICS = ("p50_ms", "p95_ms", "p99_ms")

#: Shard counts the sharding figure sweeps (gauge-name suffixes).
SHARDING_COUNTS = (1, 2, 4, 8)

STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"
STATUS_MISSING = "missing"
STATUS_NEW = "new"


@dataclass
class Finding:
    """One compared (figure, method, metric) cell."""

    figure: str
    method: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    status: str

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def rel_delta(self) -> Optional[float]:
        if self.delta is None or not self.baseline:
            return None
        return self.delta / self.baseline

    def as_dict(self) -> dict:
        return {
            "figure": self.figure,
            "method": self.method,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "status": self.status,
        }


@dataclass
class RegressionReport:
    """The full outcome of comparing two snapshots."""

    baseline_id: str
    current_id: str
    scale: str
    thresholds: Thresholds
    findings: List[Finding] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.status == STATUS_REGRESSED]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def as_dict(self) -> dict:
        return {
            "baseline_id": self.baseline_id,
            "current_id": self.current_id,
            "scale": self.scale,
            "thresholds": {
                "rel_ms": self.thresholds.rel_ms,
                "rel_io": self.thresholds.rel_io,
                "abs_ms": self.thresholds.abs_ms,
                "abs_points": self.thresholds.abs_points,
                "abs_range_queries": self.thresholds.abs_range_queries,
                "rel_serving": self.thresholds.rel_serving,
                "abs_serving_ms": self.thresholds.abs_serving_ms,
            },
            "has_regressions": self.has_regressions,
            "findings": [f.as_dict() for f in self.findings],
            "warnings": list(self.warnings),
        }

    def render_text(self, verbose: bool = False) -> str:
        """Aligned-table report; ``verbose`` includes within-noise rows."""
        from repro.bench.reporting import format_table

        interesting = [
            f
            for f in self.findings
            if verbose or f.status != STATUS_OK
        ]
        header = (
            f"# bench regression check: {self.current_id} vs baseline "
            f"{self.baseline_id} (scale={self.scale})"
        )
        if not interesting:
            lines = [header]
            lines.extend(f"warning: {w}" for w in self.warnings)
            lines.append(
                f"OK: {len(self.findings)} compared metrics within thresholds"
            )
            return "\n".join(lines)
        rows = []
        for f in sorted(
            interesting, key=lambda f: (f.status != STATUS_REGRESSED, f.figure, f.method)
        ):
            rel = f"{f.rel_delta:+.1%}" if f.rel_delta is not None else "-"
            rows.append(
                [
                    f.figure,
                    f.method,
                    f.metric,
                    f.baseline if f.baseline is not None else float("nan"),
                    f.current if f.current is not None else float("nan"),
                    rel,
                    f.status.upper() if f.status == STATUS_REGRESSED else f.status,
                ]
            )
        table = format_table(
            ["figure", "method", "metric", "baseline", "current", "delta", "status"],
            rows,
        )
        verdict = (
            f"FAIL: {len(self.regressions)} regression(s) beyond threshold"
            if self.has_regressions
            else f"OK: no regressions ({len(self.findings)} metrics compared)"
        )
        parts = [header, table]
        parts.extend(f"warning: {w}" for w in self.warnings)
        parts.append(verdict)
        return "\n".join(parts)


def _classify(
    baseline: float, current: float, rel_tol: float, abs_floor: float
) -> str:
    if current > baseline * (1.0 + rel_tol) and (current - baseline) > abs_floor:
        return STATUS_REGRESSED
    if current < baseline * (1.0 - rel_tol) and (baseline - current) > abs_floor:
        return STATUS_IMPROVED
    return STATUS_OK


def compare_snapshots(
    baseline: dict,
    current: dict,
    thresholds: Optional[Thresholds] = None,
    require_same_scale: bool = True,
) -> RegressionReport:
    """Compare two loaded snapshots; returns the per-metric findings."""
    thresholds = thresholds or Thresholds()
    if require_same_scale and baseline.get("scale") != current.get("scale"):
        raise SnapshotError(
            f"scale mismatch: baseline ran at {baseline.get('scale')!r}, "
            f"current at {current.get('scale')!r} -- numbers are not comparable "
            f"(pass --allow-scale-mismatch to override)"
        )
    report = RegressionReport(
        baseline_id=str(baseline.get("run_id")),
        current_id=str(current.get("run_id")),
        scale=str(current.get("scale")),
        thresholds=thresholds,
    )
    base_figures = baseline.get("figures", {})
    cur_figures = current.get("figures", {})

    def methods_of(fig_name: str, fig: object, side: str) -> Optional[dict]:
        """The figure's methods mapping, or None (with a warning) if malformed."""
        if not isinstance(fig, dict) or not isinstance(fig.get("methods", {}), dict):
            report.warnings.append(
                f"{side} snapshot: figure {fig_name!r} entry is malformed; skipped"
            )
            return None
        return fig.get("methods", {})

    for fig_name, base_fig in sorted(base_figures.items()):
        base_methods = methods_of(fig_name, base_fig, "baseline")
        if base_methods is None:
            continue
        cur_fig = cur_figures.get(fig_name)
        if cur_fig is None:
            report.warnings.append(
                f"figure {fig_name!r} is in the baseline but missing from the "
                f"current snapshot"
            )
            for method in sorted(base_methods):
                report.findings.append(
                    Finding(fig_name, method, "*", None, None, STATUS_MISSING)
                )
            continue
        cur_methods = methods_of(fig_name, cur_fig, "current")
        if cur_methods is None:
            continue
        for method, base_entry in sorted(base_methods.items()):
            cur_entry = cur_methods.get(method)
            if cur_entry is None:
                report.warnings.append(
                    f"figure {fig_name!r}: method {method!r} is in the baseline "
                    f"but missing from the current snapshot"
                )
                report.findings.append(
                    Finding(fig_name, method, "*", None, None, STATUS_MISSING)
                )
                continue
            if not isinstance(base_entry, dict) or not isinstance(cur_entry, dict):
                report.warnings.append(
                    f"figure {fig_name!r}: method {method!r} entry is malformed; "
                    f"skipped"
                )
                continue
            for metric, (extract, rel_attr, abs_attr) in _METRICS.items():
                try:
                    b, c = extract(base_entry), extract(cur_entry)
                except (AttributeError, TypeError):
                    report.warnings.append(
                        f"figure {fig_name!r}: method {method!r} metric "
                        f"{metric!r} is malformed; skipped"
                    )
                    continue
                if b is None or c is None:
                    continue
                try:
                    b, c = float(b), float(c)
                except (TypeError, ValueError):
                    report.warnings.append(
                        f"figure {fig_name!r}: method {method!r} metric "
                        f"{metric!r} is not numeric; skipped"
                    )
                    continue
                if b != b or c != c:
                    continue
                status = _classify(
                    b,
                    c,
                    getattr(thresholds, rel_attr),
                    getattr(thresholds, abs_attr),
                )
                report.findings.append(
                    Finding(fig_name, method, metric, b, c, status)
                )
        for method in sorted(set(cur_methods) - set(base_methods)):
            report.findings.append(
                Finding(fig_name, method, "*", None, None, STATUS_NEW)
            )
        base_serving = base_fig.get("serving")
        cur_serving = cur_fig.get("serving")
        if isinstance(base_serving, dict) and isinstance(cur_serving, dict):
            for metric in _SERVING_METRICS:
                b, c = base_serving.get(metric), cur_serving.get(metric)
                if b is None or c is None:
                    continue
                try:
                    b, c = float(b), float(c)
                except (TypeError, ValueError):
                    report.warnings.append(
                        f"figure {fig_name!r}: serving metric {metric!r} "
                        f"is not numeric; skipped"
                    )
                    continue
                if b != b or c != c:
                    continue
                status = _classify(
                    b, c, thresholds.rel_serving, thresholds.abs_serving_ms
                )
                report.findings.append(
                    Finding(fig_name, "serving", metric, b, c, status)
                )
        base_sharding = base_fig.get("sharding")
        cur_sharding = cur_fig.get("sharding")
        if isinstance(base_sharding, dict) and isinstance(cur_sharding, dict):
            for metric in sorted(set(base_sharding) & set(cur_sharding)):
                b, c = base_sharding.get(metric), cur_sharding.get(metric)
                if b is None or c is None:
                    continue
                try:
                    b, c = float(b), float(c)
                except (TypeError, ValueError):
                    report.warnings.append(
                        f"figure {fig_name!r}: sharding metric {metric!r} "
                        f"is not numeric; skipped"
                    )
                    continue
                if b != b or c != c:
                    continue
                # points_read is simulated and deterministic: gate tightly.
                # total_ms is fan-out wall-clock: gate like serving latency.
                if metric.startswith("points_read_"):
                    rel, floor = thresholds.rel_io, thresholds.abs_points
                else:
                    rel, floor = (
                        thresholds.rel_serving,
                        thresholds.abs_serving_ms,
                    )
                status = _classify(b, c, rel, floor)
                report.findings.append(
                    Finding(fig_name, "sharding", metric, b, c, status)
                )
    for fig_name in sorted(set(cur_figures) - set(base_figures)):
        report.warnings.append(
            f"figure {fig_name!r} is new in the current snapshot "
            f"(no baseline to compare against)"
        )
        report.findings.append(Finding(fig_name, "*", "*", None, None, STATUS_NEW))
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """CLI: compare two ``BENCH_*.json`` snapshots; non-zero on regression."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Compare two BENCH_*.json snapshots with noise-aware thresholds.",
    )
    parser.add_argument("baseline", metavar="BASELINE_JSON")
    parser.add_argument("current", metavar="CURRENT_JSON")
    defaults = Thresholds()
    parser.add_argument("--rel-ms", type=float, default=defaults.rel_ms,
                        help=f"relative tolerance for total_ms (default {defaults.rel_ms})")
    parser.add_argument("--rel-io", type=float, default=defaults.rel_io,
                        help=f"relative tolerance for I/O metrics (default {defaults.rel_io})")
    parser.add_argument("--abs-ms", type=float, default=defaults.abs_ms,
                        help=f"absolute floor for total_ms deltas (default {defaults.abs_ms})")
    parser.add_argument("--abs-points", type=float, default=defaults.abs_points,
                        help=f"absolute floor for points_read deltas (default {defaults.abs_points})")
    parser.add_argument("--abs-rq", type=float, default=defaults.abs_range_queries,
                        help=f"absolute floor for range_queries deltas (default {defaults.abs_range_queries})")
    parser.add_argument("--rel-serving", type=float, default=defaults.rel_serving,
                        help=f"relative tolerance for serving latency percentiles (default {defaults.rel_serving})")
    parser.add_argument("--abs-serving-ms", type=float, default=defaults.abs_serving_ms,
                        help=f"absolute floor for serving latency deltas (default {defaults.abs_serving_ms})")
    parser.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="list within-noise metrics too")
    parser.add_argument("--allow-scale-mismatch", action="store_true",
                        help="compare snapshots from different REPRO_BENCH_SCALEs")
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    thresholds = Thresholds(
        rel_ms=opts.rel_ms,
        rel_io=opts.rel_io,
        abs_ms=opts.abs_ms,
        abs_points=opts.abs_points,
        abs_range_queries=opts.abs_rq,
        rel_serving=opts.rel_serving,
        abs_serving_ms=opts.abs_serving_ms,
    )
    try:
        baseline = load_snapshot(opts.baseline)
        current = load_snapshot(opts.current)
        report = compare_snapshots(
            baseline,
            current,
            thresholds,
            require_same_scale=not opts.allow_scale_mismatch,
        )
    except SnapshotError as exc:
        print(f"error: {exc}")
        return 2
    print(report.render_text(verbose=opts.verbose))
    if opts.json:
        with open(opts.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"[report written to {opts.json}]")
    return 1 if report.has_regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
