"""Regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench                 # every figure at the active scale
    python -m repro.bench fig5a fig9b     # selected figures
    python -m repro.bench --json out.json fig5a   # also dump raw series
    python -m repro.bench --svg charts/ fig5a     # also render SVG charts
    python -m repro.bench --obs out/ fig5a        # metrics.json + trace.jsonl
    python -m repro.bench --obs-report fig5a      # print the obs summary
    REPRO_BENCH_SCALE=default python -m repro.bench

Scales: quick (default; seconds per figure), default (minutes), full
(closest to paper scale).  Results and the paper-vs-measured comparison are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import nullcontext

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import bench_scale
from repro.obs import activate


def _build_obs(obs_dir):
    """Create an Observability writing trace.jsonl under ``obs_dir``."""
    from pathlib import Path

    from repro.obs import MetricsRegistry, Observability, Tracer
    from repro.obs.sinks import JsonlSink

    obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
    if obs_dir is not None:
        out_dir = Path(obs_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        obs.tracer.add_sink(JsonlSink(out_dir / "trace.jsonl"))
    return obs


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    svg_dir = None
    obs_dir = None
    obs_report = "--obs-report" in argv
    if obs_report:
        argv.remove("--obs-report")
    for flag_name in ("--json", "--svg", "--obs"):
        if flag_name in argv:
            flag = argv.index(flag_name)
            try:
                value = argv[flag + 1]
            except IndexError:
                print(f"{flag_name} requires a path")
                return 2
            if flag_name == "--json":
                json_path = value
            elif flag_name == "--svg":
                svg_dir = value
            else:
                obs_dir = value
            del argv[flag : flag + 2]
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2

    obs = None
    if obs_dir is not None or obs_report:
        obs = _build_obs(obs_dir)

    print(f"# repro benchmark run (scale={bench_scale()})\n")
    dump = {"scale": bench_scale(), "figures": {}}
    with (activate(obs) if obs is not None else nullcontext()):
        for name in names:
            start = time.perf_counter()
            report = ALL_EXPERIMENTS[name]()
            elapsed = time.perf_counter() - start
            print(str(report))
            print(f"[{name} regenerated in {elapsed:.1f}s]\n")
            dump["figures"][name] = {
                "title": report.title,
                "seconds": round(elapsed, 2),
                "series": json.loads(json.dumps(report.series, default=float)),
            }
            if svg_dir is not None:
                from pathlib import Path

                from repro.bench.svg import render_figure

                svg = render_figure(report)
                if svg is not None:
                    out_dir = Path(svg_dir)
                    out_dir.mkdir(parents=True, exist_ok=True)
                    target = out_dir / f"{name}.svg"
                    target.write_text(svg)
                    print(f"[chart written to {target}]")
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(dump, handle, indent=2)
        print(f"[series written to {json_path}]")
    if obs is not None:
        obs.close()
        if obs_dir is not None:
            from pathlib import Path

            metrics_path = Path(obs_dir) / "metrics.json"
            obs.metrics.save_json(metrics_path)
            print(f"[metrics written to {metrics_path}]")
            print(f"[trace written to {Path(obs_dir) / 'trace.jsonl'}]")
        if obs_report:
            from repro.obs.report import render_report

            print("\n# observability report\n")
            print(render_report(obs.metrics))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
