"""Regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench                 # every figure at the active scale
    python -m repro.bench fig5a fig9b     # selected figures
    python -m repro.bench --json out.json fig5a   # also dump raw series
    python -m repro.bench --svg charts/ fig5a     # also render SVG charts
    python -m repro.bench --obs out/ fig5a        # metrics.json + metrics.prom + trace.jsonl
    python -m repro.bench --obs-report fig5a      # print the obs summary
    python -m repro.bench --query-log q.jsonl fig5a     # per-query structured log
    python -m repro.bench --watch 2 --obs out/ fig5a    # live dashboard + health.jsonl
    python -m repro.bench --profile prof/ fig5a         # sampled cProfile + flamegraph stacks
    python -m repro.bench --save-bench BENCH_ci.json fig5a   # performance snapshot
    python -m repro.bench --baseline BENCH_old.json fig5a    # regression check
    python -m repro.bench --audit fig5a           # plan-accuracy calibration
    python -m repro.bench --obs out/ --explain fig5a    # explain.jsonl provenance
    python -m repro.bench --calibration fig5a     # predicted-vs-actual MARE
    python -m repro.bench history benchmarks/     # snapshot trajectory report
    REPRO_BENCH_SCALE=default python -m repro.bench

Scales: quick (default; seconds per figure), default (minutes), full
(closest to paper scale).  Results and the paper-vs-measured comparison are
recorded in EXPERIMENTS.md; the performance trajectory lives in
``BENCH_*.json`` snapshots (see ``repro.bench.regress``).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from contextlib import nullcontext

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import activate_faults, activate_workers, bench_scale
from repro.obs import activate


def _build_obs(obs_dir, query_log=None):
    """Create an Observability writing trace.jsonl under ``obs_dir``."""
    from pathlib import Path

    from repro.obs import MetricsRegistry, Observability, Tracer
    from repro.obs.sinks import JsonlSink

    obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
    if obs_dir is not None:
        out_dir = Path(obs_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        obs.tracer.add_sink(JsonlSink(out_dir / "trace.jsonl"))
    if query_log is not None:
        obs.add_outcome_sink(JsonlSink(query_log))
    return obs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids and exit")
    parser.add_argument("--json", metavar="PATH", help="dump raw series (and audit) as JSON")
    parser.add_argument("--svg", metavar="DIR", help="render SVG charts into DIR")
    parser.add_argument(
        "--obs", metavar="DIR",
        help="write metrics.json, metrics.prom and trace.jsonl into DIR",
    )
    parser.add_argument(
        "--obs-report", action="store_true", help="print the observability summary"
    )
    parser.add_argument(
        "--query-log", metavar="PATH",
        help="append one structured JSON record per query to PATH",
    )
    parser.add_argument(
        "--watch", nargs="?", const=2.0, type=float, metavar="SECS",
        help="print a live qps/latency/hit-ratio/health dashboard to stderr "
             "every SECS seconds (default 2); with --obs DIR, also record "
             "flight-recorder snapshots to DIR/health.jsonl",
    )
    parser.add_argument(
        "--profile", metavar="DIR",
        help="sampled per-query, per-stage cProfile of the serving path; "
             "writes profile.pstats and profile.collapsed "
             "(flamegraph-compatible) into DIR",
    )
    parser.add_argument(
        "--save-bench", metavar="PATH",
        help="serialize this run as a BENCH_*.json snapshot "
             "(PATH may be a file or a directory)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="compare this run against a saved snapshot; exit 1 on regression",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="also run the plan-accuracy audit (explain-vs-execute calibration)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="record per-query planner decision provenance (candidates "
             "considered, per-box predicted vs actual cost) to "
             "DIR/explain.jsonl; requires --obs DIR",
    )
    parser.add_argument(
        "--calibration", action="store_true",
        help="aggregate predicted-vs-actual cost-model error (MARE per "
             "stage/case/strategy) over the run; printed at the end and, "
             "with --obs DIR, written to DIR/calibration.json",
    )
    parser.add_argument(
        "--faults", metavar="PROFILE",
        help="inject storage faults into CBCS engines during figure runs "
             "(profiles: none, default, heavy); engines run with the "
             "resilience layer enabled",
    )
    parser.add_argument(
        "--workers", metavar="N", type=int, default=1,
        help="fetch a plan's disjoint range queries on N concurrent workers "
             "(default 1 = serial; answers and I/O counters are identical, "
             "only the effective fetch latency changes)",
    )
    parser.add_argument(
        "--chaos", metavar="N", type=int,
        help="run an N-query chaos soak (fault-injected mixed workload with "
             "reference-checked answers, a circuit-breaker drill, and a "
             "crash-recovery drill); exits 4 if the soak fails.  Without "
             "explicit FIGUREs, runs the soak alone",
    )
    parser.add_argument(
        "--overload", metavar="N", type=int,
        help="run an N-request open-loop overload soak at 2x the calibrated "
             "saturation rate (zipf-skewed multi-user stream through the "
             "QueryService ingress: admission control, coalescing, "
             "deadlines); exits 6 if accounting leaks, an admitted answer "
             "differs from the reference, or p99 is unbounded.  Without "
             "explicit FIGUREs, runs the soak alone",
    )
    parser.add_argument(
        "--shard-sweep", metavar="N", type=int,
        help="run an N-query-per-cell bit-identity sweep of the sharded "
             "engine (seeds x shard counts {1,2,4,8} x strategies: answers "
             "must match the unsharded engine bit-for-bit and every I/O "
             "counter must reconcile; with --faults, one shard is faulted "
             "and per-shard resilience semantics are checked); exits 7 on "
             "failure.  Without explicit FIGUREs, runs the sweep alone",
    )
    parser.add_argument(
        "--crash-drill", action="store_true",
        help="run the seeded crash-recovery drill: kill a durable engine at "
             "armed crash points mid-write, recover from the WAL, and check "
             "answers bit-exactly against an uncrashed reference; exits 5 "
             "on failure",
    )
    parser.add_argument(
        "--crash-out", metavar="DIR",
        help="keep the crash drill's durability/WAL directories and write "
             "recovery_report.json under DIR (CI artifacts)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "history":
        # Subcommand: snapshot-trajectory report over BENCH_*.json files.
        from repro.bench.history import main as history_main

        return history_main(argv[1:])
    parser = build_parser()
    try:
        opts = parser.parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    if opts.list:
        print("\n".join(ALL_EXPERIMENTS))
        return 0
    if opts.chaos is not None and opts.chaos < 1:
        print("--chaos needs a positive query count")
        return 2
    if opts.overload is not None and opts.overload < 1:
        print("--overload needs a positive request count")
        return 2
    if opts.shard_sweep is not None and opts.shard_sweep < 1:
        print("--shard-sweep needs a positive query count")
        return 2
    if opts.workers < 1:
        print("--workers needs a positive worker count")
        return 2
    if opts.explain and opts.obs is None:
        print("--explain needs --obs DIR (explain.jsonl lives there)")
        return 2
    if opts.figures:
        names = list(opts.figures)
    elif (
        opts.chaos is not None
        or opts.crash_drill
        or opts.overload is not None
        or opts.shard_sweep is not None
    ):
        names = []  # soak-/drill-/sweep-only run
    else:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2

    snapshotting = opts.save_bench is not None or opts.baseline is not None
    obs = None
    if (
        opts.obs is not None
        or opts.obs_report
        or opts.query_log is not None
        or snapshotting
        or opts.audit
        or opts.watch is not None
        or opts.profile is not None
        or opts.explain
        or opts.calibration
    ):
        obs = _build_obs(opts.obs, query_log=opts.query_log)

    ledger = None
    if opts.explain or opts.calibration:
        from repro.obs.calibration import CalibrationLedger
        from repro.obs.explain import ExplainRecorder
        from repro.obs.sinks import JsonlSink

        ledger = CalibrationLedger()
        explain_sink = None
        if opts.explain:
            from pathlib import Path

            explain_sink = JsonlSink(Path(opts.obs) / "explain.jsonl")
        obs.explainer = ExplainRecorder(sink=explain_sink, ledger=ledger)

    if opts.profile is not None:
        from repro.obs.profiling import QueryProfiler

        obs.profiler = QueryProfiler(sample_every=1)

    watch_monitor = None
    watch_stop = None
    watch_thread = None
    health_sink = None
    watch_t0 = time.perf_counter()
    if opts.watch is not None:
        if opts.watch <= 0:
            print("--watch interval must be positive")
            return 2
        from repro.obs.health import HealthMonitor, render_dashboard
        from repro.obs.sinks import JsonlSink
        from repro.obs.window import RollingWindow

        watch_window = RollingWindow()
        obs.add_outcome_sink(watch_window)
        watch_monitor = HealthMonitor(watch_window)
        if opts.obs is not None:
            from pathlib import Path

            health_sink = JsonlSink(Path(opts.obs) / "health.jsonl")

        def _watch_tick() -> None:
            report = watch_monitor.report()
            print(render_dashboard(report), file=sys.stderr)
            if health_sink is not None:
                from repro.obs.schema import stamp

                health_sink.emit(
                    stamp(
                        {
                            "t_s": round(time.perf_counter() - watch_t0, 3),
                            **report.as_dict(),
                        }
                    )
                )

        watch_stop = threading.Event()

        def _watch_loop() -> None:
            while not watch_stop.wait(opts.watch):
                _watch_tick()

        watch_thread = threading.Thread(
            target=_watch_loop, name="bench-watch", daemon=True
        )
        watch_thread.start()

    if opts.faults is not None:
        from repro.storage.faults import PROFILES

        if opts.faults not in PROFILES:
            print(
                f"unknown fault profile {opts.faults!r}; "
                f"available: {sorted(PROFILES)}"
            )
            return 2

    print(f"# repro benchmark run (scale={bench_scale()})\n")
    dump = {"scale": bench_scale(), "figures": {}}
    figure_summaries = {}
    figure_failures = []
    chaos_report = None
    crash_report = None
    serving_report = None
    shard_report = None
    cumulative = obs.metrics if obs is not None else None
    audit_summary = None
    faults_ctx = (
        nullcontext() if opts.faults is None else activate_faults(opts.faults)
    )
    workers_ctx = (
        nullcontext() if opts.workers == 1 else activate_workers(opts.workers)
    )
    with (
        activate(obs) if obs is not None else nullcontext()
    ), faults_ctx, workers_ctx:
        for name in names:
            if obs is not None:
                # Fresh registry per figure: its distillate feeds the
                # BENCH_*.json snapshot, then merges into the cumulative
                # registry behind metrics.json / --obs-report.
                from repro.obs import MetricsRegistry

                obs.metrics = MetricsRegistry()
            start = time.perf_counter()
            try:
                report = ALL_EXPERIMENTS[name]()
            except Exception as exc:
                elapsed = time.perf_counter() - start
                figure_failures.append(name)
                print(
                    f"[{name} FAILED after {elapsed:.1f}s: "
                    f"{type(exc).__name__}: {exc}]\n"
                )
                if obs is not None:
                    cumulative.merge(obs.metrics)
                continue
            elapsed = time.perf_counter() - start
            print(str(report))
            print(f"[{name} regenerated in {elapsed:.1f}s]\n")
            dump["figures"][name] = {
                "title": report.title,
                "seconds": round(elapsed, 2),
                "series": json.loads(json.dumps(report.series, default=float)),
            }
            if obs is not None:
                from repro.bench.regress import summarize_registry

                figure_summaries[name] = {
                    "title": report.title,
                    "seconds": round(elapsed, 2),
                    **summarize_registry(obs.metrics),
                }
                cumulative.merge(obs.metrics)
            if opts.svg is not None:
                from pathlib import Path

                from repro.bench.svg import render_figure

                svg = render_figure(report)
                if svg is not None:
                    out_dir = Path(opts.svg)
                    out_dir.mkdir(parents=True, exist_ok=True)
                    target = out_dir / f"{name}.svg"
                    target.write_text(svg)
                    print(f"[chart written to {target}]")
        if obs is not None:
            obs.metrics = cumulative
        if opts.chaos is not None:
            from repro.bench.chaos import run_chaos_soak

            chaos_report = run_chaos_soak(
                n_queries=opts.chaos,
                profile=opts.faults or "default",
                obs=obs,
                workers=opts.workers,
            )
            print(chaos_report.render_text())
            print()
            if opts.json is not None:
                dump["chaos"] = chaos_report.as_dict()
        if opts.overload is not None:
            from repro.bench.serving import run_overload_soak

            serving_report = run_overload_soak(
                n_requests=opts.overload,
                profile=opts.faults or "none",
                obs=obs,
                workers=max(opts.workers, 2),
            )
            print(serving_report.render_text())
            print()
            if opts.json is not None:
                dump["overload"] = serving_report.as_dict()
        if opts.shard_sweep is not None:
            from repro.bench.shardsweep import run_shard_sweep

            shard_report = run_shard_sweep(
                n_queries=opts.shard_sweep,
                profile=opts.faults,
                workers=opts.workers,
                obs=obs,
            )
            print(shard_report.render_text())
            print()
            if opts.json is not None:
                dump["shard_sweep"] = shard_report.as_dict()
        if opts.crash_drill or opts.chaos is not None:
            # The crash-recovery drill rides along with every chaos soak:
            # same fault profile, same worker count, plus armed crashes.
            from repro.bench.crashdrill import run_crash_drill

            crash_report = run_crash_drill(
                profile=opts.faults or "default",
                workers=opts.workers,
                out_dir=opts.crash_out,
            )
            print(crash_report.render_text())
            print()
            if opts.json is not None:
                dump["crash_drill"] = crash_report.as_dict()
        if opts.audit:
            from repro.obs.audit import render_summary, run_quick_audit

            audit_summary, audit_records = run_quick_audit(
                obs=obs, keep_plans=opts.json is not None
            )
            print("# plan-accuracy audit\n")
            print(render_summary(audit_summary))
            print()
            if opts.json is not None:
                dump["audit"] = {
                    "summary": audit_summary,
                    "records": [r.as_dict() for r in audit_records],
                }
    if watch_stop is not None:
        watch_stop.set()
        watch_thread.join(timeout=5.0)
        _watch_tick()  # final snapshot covering the tail of the run
        if health_sink is not None:
            health_sink.close()
            print(f"[health snapshots written to {health_sink.path}]")

    if opts.json is not None:
        from repro.ioutil import atomic_write_json

        atomic_write_json(opts.json, dump)
        print(f"[series written to {opts.json}]")

    exit_code = 0
    if snapshotting:
        from repro.bench.regress import (
            SnapshotError,
            build_snapshot,
            compare_snapshots,
            load_snapshot,
            save_snapshot,
        )

        snapshot = build_snapshot(
            scale=bench_scale(),
            figures=figure_summaries,
            audit=audit_summary,
            chaos=chaos_report.as_dict() if chaos_report is not None else None,
            overload=(
                serving_report.as_dict() if serving_report is not None else None
            ),
            shard_sweep=(
                shard_report.as_dict() if shard_report is not None else None
            ),
        )
        if opts.save_bench is not None:
            written = save_snapshot(snapshot, opts.save_bench)
            print(f"[bench snapshot written to {written}]")
        if opts.baseline is not None:
            try:
                baseline = load_snapshot(opts.baseline)
                regression = compare_snapshots(baseline, snapshot)
            except SnapshotError as exc:
                print(f"error: {exc}")
                return 2
            print()
            print(regression.render_text())
            if regression.has_regressions:
                exit_code = 1

    if obs is not None:
        if obs.explainer is not None:
            obs.explainer.close()
        if ledger is not None:
            # Gauges must land before metrics.json is serialized below.
            ledger.export_gauges(obs.metrics)
        obs.close()
        if opts.obs is not None:
            from pathlib import Path

            from repro.obs.export import save_openmetrics

            out_dir = Path(opts.obs)
            metrics_path = out_dir / "metrics.json"
            obs.metrics.save_json(metrics_path)
            save_openmetrics(obs.metrics, out_dir / "metrics.prom")
            print(f"[metrics written to {metrics_path}]")
            print(f"[openmetrics written to {out_dir / 'metrics.prom'}]")
            print(f"[trace written to {out_dir / 'trace.jsonl'}]")
            if obs.last_cache is not None:
                from repro.ioutil import atomic_write_json
                from repro.obs.cacheview import view_for

                cache_path = out_dir / "cache.json"
                atomic_write_json(cache_path, view_for(obs.last_cache).snapshot())
                print(f"[cache introspection written to {cache_path}]")
            if opts.explain:
                print(
                    f"[explain records written to {out_dir / 'explain.jsonl'}"
                    f" ({obs.explainer.records_emitted} queries)]"
                )
            if ledger is not None:
                calibration_path = out_dir / "calibration.json"
                ledger.save_json(calibration_path)
                print(f"[calibration written to {calibration_path}]")
        if opts.profile is not None:
            paths = obs.profiler.save(opts.profile)
            print(f"[profile written to {paths['pstats']} / {paths['collapsed']}]")
            print()
            print(obs.profiler.render_summary())
            print()
        if opts.query_log is not None:
            print(f"[query log written to {opts.query_log}]")
        if opts.calibration:
            from repro.obs.calibration import render_calibration

            print()
            print(render_calibration(ledger.summary()))
            print()
        if opts.obs_report:
            from repro.obs.report import render_report

            print("\n# observability report\n")
            print(render_report(obs.metrics))
    # Distinct exit codes: 1 regression, 2 usage/snapshot error, 3 a figure
    # run failed mid-workload, 4 the chaos soak failed, 5 the crash-recovery
    # drill failed, 6 the overload soak failed, 7 the shard sweep failed.
    if figure_failures:
        print(f"[{len(figure_failures)} figure(s) failed: {figure_failures}]")
        exit_code = 3
    if chaos_report is not None and not chaos_report.passed:
        print("[chaos soak FAILED]")
        exit_code = 4
    if crash_report is not None and not crash_report.passed:
        print("[crash-recovery drill FAILED]")
        exit_code = 5
    if serving_report is not None and not serving_report.passed:
        print("[overload soak FAILED]")
        exit_code = 6
    if shard_report is not None and not shard_report.passed:
        print("[shard sweep FAILED]")
        exit_code = 7
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
