"""Bench-trajectory reporting over committed ``BENCH_*.json`` snapshots.

:mod:`repro.bench.regress` answers "did *this* run regress against *that*
baseline?".  This module answers the longitudinal question: how has each
figure's ``total_ms`` / ``points_read`` / ``range_queries`` moved across
the committed snapshot history?  It reads every ``BENCH_*.json`` in a
directory (schema-validated via :func:`repro.bench.regress.load_snapshot`;
unreadable files warn and are skipped), orders them by creation time,
groups per (scale, figure, method), and flags run-over-run regressions and
improvements with the same noise-aware :class:`~repro.bench.regress.Thresholds`
the CI gate uses -- so the trajectory report and the blocking check can
never disagree about what counts as a regression.

Output is GitHub-flavoured markdown (one table per figure/method series,
regressed cells highlighted) plus an optional machine-readable JSON dump.

Usage::

    python -m repro.bench.history benchmarks/
    python -m repro.bench.history benchmarks/ --scale quick --json hist.json
    python -m repro.bench history benchmarks/          # via the bench CLI
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.regress import (
    _METRICS,
    STATUS_IMPROVED,
    STATUS_REGRESSED,
    SnapshotError,
    Thresholds,
    _classify,
    load_snapshot,
)

HISTORY_SCHEMA = "repro.bench.history"
HISTORY_SCHEMA_VERSION = 1

SeriesKey = Tuple[str, str, str]  # (scale, figure, method)


def collect_snapshots(directory) -> Tuple[List[dict], List[str]]:
    """Load every ``BENCH_*.json`` under ``directory``, oldest first.

    Returns ``(snapshots, warnings)``; malformed or schema-incompatible
    files become warnings, never exceptions, so one bad commit cannot
    blank the whole trajectory.
    """
    snapshots: List[dict] = []
    warnings: List[str] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            snapshots.append(load_snapshot(path))
        except SnapshotError as exc:
            warnings.append(str(exc))
    snapshots.sort(
        key=lambda s: (str(s.get("created_at") or ""), str(s.get("run_id") or ""))
    )
    return snapshots, warnings


def _metric_value(entry: dict, metric: str) -> Optional[float]:
    if metric == "total_ms":
        value = (entry.get("total_ms") or {}).get("mean")
    else:
        value = entry.get(metric)
    try:
        value = float(value)
    except (TypeError, ValueError):
        return None
    return value if value == value else None  # drop NaN


def build_history(
    snapshots: List[dict],
    thresholds: Optional[Thresholds] = None,
    scale: Optional[str] = None,
) -> dict:
    """Fold ordered snapshots into per-(scale, figure, method) trajectories.

    Each trajectory point carries the run's identity (``run_id``,
    ``created_at``, ``git_rev``) and metric values, plus ``regressions`` /
    ``improvements`` lists naming the metrics that moved beyond threshold
    relative to the *previous* point of the same series.
    """
    thresholds = thresholds or Thresholds()
    series: Dict[SeriesKey, List[dict]] = {}
    order: List[SeriesKey] = []
    for snap in snapshots:
        snap_scale = str(snap.get("scale"))
        if scale is not None and snap_scale != scale:
            continue
        for fig_name, fig in sorted((snap.get("figures") or {}).items()):
            methods = fig.get("methods") if isinstance(fig, dict) else None
            if not isinstance(methods, dict):
                continue
            for method, entry in sorted(methods.items()):
                if not isinstance(entry, dict):
                    continue
                key: SeriesKey = (snap_scale, str(fig_name), str(method))
                if key not in series:
                    series[key] = []
                    order.append(key)
                points = series[key]
                point = {
                    "run_id": snap.get("run_id"),
                    "created_at": snap.get("created_at"),
                    "git_rev": snap.get("git_rev"),
                    "total_ms": _metric_value(entry, "total_ms"),
                    "points_read": _metric_value(entry, "points_read"),
                    "range_queries": _metric_value(entry, "range_queries"),
                    "regressions": [],
                    "improvements": [],
                }
                if points:
                    prev = points[-1]
                    for metric, (_, rel_attr, abs_attr) in _METRICS.items():
                        b, c = prev.get(metric), point.get(metric)
                        if b is None or c is None:
                            continue
                        status = _classify(
                            b,
                            c,
                            getattr(thresholds, rel_attr),
                            getattr(thresholds, abs_attr),
                        )
                        if status == STATUS_REGRESSED:
                            point["regressions"].append(metric)
                        elif status == STATUS_IMPROVED:
                            point["improvements"].append(metric)
                points.append(point)
    scales: Dict[str, dict] = {}
    for key in order:
        snap_scale, fig_name, method = key
        scales.setdefault(snap_scale, {}).setdefault(fig_name, {})[method] = (
            series[key]
        )
    return {
        "schema": HISTORY_SCHEMA,
        "schema_version": HISTORY_SCHEMA_VERSION,
        "snapshots": len(snapshots),
        "scales": scales,
    }


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def render_history(history: dict) -> str:
    """GitHub-flavoured-markdown rendering of a :func:`build_history` dict."""
    scales = history.get("scales") or {}
    lines = [f"# Bench trajectory ({history.get('snapshots', 0)} snapshots)"]
    if not scales:
        lines.append("\n(no figure series found)")
        return "\n".join(lines)
    total_regressions = 0
    for scale, figures in sorted(scales.items()):
        for fig_name, methods in sorted(figures.items()):
            for method, points in sorted(methods.items()):
                lines.append(f"\n## {fig_name} / {method} (scale={scale})")
                lines.append(
                    "| run | created | rev | total_ms | points/q | rq/q "
                    "| flags |"
                )
                lines.append("|---|---|---|---:|---:|---:|---|")
                for point in points:
                    flags = []
                    for metric in point.get("regressions") or ():
                        flags.append(f"**REGRESSED: {metric}**")
                        total_regressions += 1
                    for metric in point.get("improvements") or ():
                        flags.append(f"improved: {metric}")
                    rev = str(point.get("git_rev") or "-")[:9]
                    lines.append(
                        f"| {point.get('run_id') or '-'} "
                        f"| {point.get('created_at') or '-'} "
                        f"| {rev} "
                        f"| {_fmt(point.get('total_ms'))} "
                        f"| {_fmt(point.get('points_read'))} "
                        f"| {_fmt(point.get('range_queries'))} "
                        f"| {', '.join(flags) or '-'} |"
                    )
    verdict = (
        f"{total_regressions} run-over-run regression(s) beyond threshold"
        if total_regressions
        else "no run-over-run regressions beyond threshold"
    )
    lines.append(f"\n**Trajectory verdict:** {verdict}.")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI: render the snapshot-history trajectory for a directory."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description=(
            "Render the per-figure performance trajectory over the "
            "committed BENCH_*.json snapshots, flagging run-over-run "
            "regressions with the CI thresholds."
        ),
    )
    parser.add_argument(
        "directory", metavar="SNAPSHOT_DIR", nargs="?", default="benchmarks",
        help="directory holding BENCH_*.json snapshots (default: benchmarks)",
    )
    parser.add_argument(
        "--scale", metavar="SCALE",
        help="only include snapshots recorded at this REPRO_BENCH_SCALE",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the trajectory as JSON"
    )
    parser.add_argument(
        "--markdown", metavar="PATH",
        help="also write the rendered markdown to a file",
    )
    try:
        opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    directory = Path(opts.directory)
    if not directory.is_dir():
        print(f"error: no such snapshot directory: {directory}")
        return 2
    snapshots, warnings = collect_snapshots(directory)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if not snapshots:
        print(f"no readable BENCH_*.json snapshots in {directory}")
        return 2
    history = build_history(snapshots, scale=opts.scale)
    text = render_history(history)
    print(text)
    if opts.json:
        with open(opts.json, "w") as handle:
            json.dump(history, handle, indent=2)
        print(f"\n[trajectory JSON written to {opts.json}]")
    if opts.markdown:
        with open(opts.markdown, "w") as handle:
            handle.write(text + "\n")
        print(f"[trajectory markdown written to {opts.markdown}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
