"""Experiment runner shared by every figure benchmark.

The paper evaluates three methods -- Baseline [3], BBS [19] and CBCS (with
exact MPR or aMPR) -- under two workloads (Section 7.1):

1. *interactive exploratory search*: refinement chains starting from an
   empty cache, and
2. *independent queries*: unrelated queries against a preloaded cache.

This module builds methods over a dataset, runs workloads through them, and
aggregates the per-query :class:`~repro.stats.QueryOutcome` records into the
quantities the paper plots (mean response time, stable/unstable splits,
points read, range queries generated/non-empty).

Scaling: the authors ran 1M-5M points on PostgreSQL; a pure-Python
reproduction trims cardinalities while preserving every comparison's shape.
``REPRO_BENCH_SCALE`` selects ``quick`` (CI), ``default``, or ``full``
(closest to paper scale, slow).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cache import SkylineCache
from repro.core.cbcs import CBCS
from repro.core.strategies import CacheSearchStrategy, MaxOverlapSP
from repro.geometry.constraints import Constraints
from repro.obs import current as current_obs
from repro.skyline.baseline import BaselineMethod
from repro.skyline.bbs import BBSMethod
from repro.stats import QueryOutcome
from repro.storage.costmodel import DiskCostModel
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

SCALES = ("quick", "default", "full")


def bench_scale() -> str:
    """Return the requested benchmark scale (env ``REPRO_BENCH_SCALE``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={scale!r} invalid; expected one of {SCALES}"
        )
    return scale


def scaled(quick, default, full):
    """Pick a parameter by the active benchmark scale."""
    return {"quick": quick, "default": default, "full": full}[bench_scale()]


# ----------------------------------------------------------------------
# Ambient fault injection (``python -m repro.bench --faults PROFILE``)
# ----------------------------------------------------------------------
_fault_state: Dict[str, object] = {"profile": None, "seed": 0}


def active_fault_profile() -> Optional[str]:
    """The ambient fault profile name, or None when faults are off."""
    return _fault_state["profile"]  # type: ignore[return-value]


@contextmanager
def activate_faults(profile: Optional[str], seed: int = 0):
    """Run the ``with`` body with storage fault injection active.

    While active, every :func:`make_cbcs` engine gets its
    :class:`~repro.storage.table.DiskTable` wrapped in a
    :class:`~repro.storage.faults.FaultyDiskTable` (its own seeded
    injector, so figures stay independent) and runs with the default
    resilience layer, exercising retries and the degradation ladder under
    the benchmark workloads.  Baseline and BBS have no resilience layer and
    keep pristine tables.
    """
    previous = dict(_fault_state)
    _fault_state.update(profile=profile, seed=seed)
    try:
        yield
    finally:
        _fault_state.clear()
        _fault_state.update(previous)


# ----------------------------------------------------------------------
# Ambient executor parallelism (``python -m repro.bench --workers N``)
# ----------------------------------------------------------------------
_exec_state: Dict[str, int] = {"workers": 1}


def active_workers() -> int:
    """The ambient executor worker count (1 = serial, the default)."""
    return int(_exec_state["workers"])


@contextmanager
def activate_workers(workers: int):
    """Run the ``with`` body with concurrent range-query execution.

    While active, every :func:`make_cbcs` engine fetches its plan's
    disjoint range queries on a bounded pool of ``workers`` threads.
    Answers and I/O counters are unchanged (the executor gathers results
    in plan order); only the effective fetch latency drops -- see
    ``StageTimings.fetch_io_ms`` vs ``io_ms_total``.
    """
    previous = dict(_exec_state)
    _exec_state.update(workers=int(workers))
    try:
        yield
    finally:
        _exec_state.clear()
        _exec_state.update(previous)


@dataclass
class MethodResult:
    """All query outcomes of one method over one workload."""

    method: str
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def mean_total_ms(self) -> float:
        """Average end-to-end response time (simulated I/O + CPU), ms."""
        return float(np.mean([o.total_ms for o in self.outcomes]))

    def mean_points_read(self) -> float:
        """Average heap rows read from disk per query (Figure 8's y-axis)."""
        return float(np.mean([o.points_read for o in self.outcomes]))

    def mean_range_queries(self) -> float:
        """Average range queries issued per query (Figure 9's y-axis)."""
        return float(np.mean([o.range_queries for o in self.outcomes]))

    def mean_nonempty_queries(self) -> float:
        """Average range queries that actually read data per query."""
        return float(np.mean([o.nonempty_queries for o in self.outcomes]))

    def total_ms_values(self) -> np.ndarray:
        """Per-query response times (for distribution/box-plot figures)."""
        return np.array([o.total_ms for o in self.outcomes])

    def split_by_stability(self) -> Dict[str, "MethodResult"]:
        """Return {'stable': ..., 'unstable': ...} sub-results (cache hits
        only, matching the paper's aMPR (Stable)/(Unstable) curves)."""
        stable = MethodResult(f"{self.method} (Stable)")
        unstable = MethodResult(f"{self.method} (Unstable)")
        for o in self.outcomes:
            if o.stable is True:
                stable.outcomes.append(o)
            elif o.stable is False:
                unstable.outcomes.append(o)
        return {"stable": stable, "unstable": unstable}

    def mean_stage_ms(self) -> Dict[str, float]:
        """Average per-stage milliseconds (Figure 10's bars)."""
        return {
            "processing": float(
                np.mean([o.timings.processing_ms for o in self.outcomes])
            ),
            "fetching": float(
                np.mean(
                    [
                        o.timings.fetch_io_ms + o.timings.fetch_wall_ms
                        for o in self.outcomes
                    ]
                )
            ),
            "skyline": float(np.mean([o.timings.skyline_ms for o in self.outcomes])),
        }

    def __len__(self) -> int:
        return len(self.outcomes)


# ----------------------------------------------------------------------
# Method factories
# ----------------------------------------------------------------------
def make_cbcs(
    data: np.ndarray,
    region=None,
    strategy: Optional[CacheSearchStrategy] = None,
    cost_model: Optional[DiskCostModel] = None,
    cache: Optional[SkylineCache] = None,
    obs=None,
) -> CBCS:
    """Build a CBCS engine with a fresh table and cache over ``data``.

    ``obs`` defaults to the ambient observability (``repro.obs.current()``),
    so experiments run under ``repro.obs.activate(...)`` -- e.g. via
    ``python -m repro.bench --obs DIR`` -- are instrumented without any
    signature changes; otherwise the shared no-op is used.
    """
    obs = current_obs() if obs is None else obs
    table = DiskTable(data, cost_model=cost_model)
    resilience = None
    profile = _fault_state["profile"]
    if profile is not None and profile != "none":
        from repro.storage.faults import FaultInjector, FaultyDiskTable

        injector = FaultInjector(
            profile=profile,  # type: ignore[arg-type]
            seed=int(_fault_state["seed"]),  # type: ignore[arg-type]
            metrics=obs.metrics if obs.enabled else None,
        )
        table = FaultyDiskTable(table, injector)
        resilience = True
    engine = CBCS(
        table,
        cache=cache if cache is not None else SkylineCache(),
        strategy=strategy,
        region_computer=region,
        obs=obs if obs.enabled else None,
        resilience=resilience,
        workers=active_workers(),
    )
    if obs.enabled:
        obs.last_cache = engine.cache
    return engine


def make_methods(
    data: np.ndarray,
    cost_model: Optional[DiskCostModel] = None,
    include_mpr: bool = False,
    ampr_k: int = 1,
    strategy_factory: Optional[Callable[[], CacheSearchStrategy]] = None,
    obs=None,
) -> Dict[str, object]:
    """Build the paper's method line-up over one dataset.

    Returns a name -> method mapping; CBCS methods get independent tables
    and caches so I/O accounting never crosses methods.  All methods share
    one observability (``obs``, defaulting to the ambient one), so a single
    metrics registry/trace covers the whole line-up, labeled by method.
    """
    obs = current_obs() if obs is None else obs
    obs_arg = obs if obs.enabled else None
    cost_model = cost_model or DiskCostModel()
    table = DiskTable(data, cost_model=cost_model, obs=obs_arg)
    strategy = strategy_factory() if strategy_factory else MaxOverlapSP()
    methods: Dict[str, object] = {
        "Baseline": BaselineMethod(table, obs=obs_arg),
        "BBS": BBSMethod(data, cost_model=cost_model, obs=obs_arg),
        "aMPR": make_cbcs(
            data,
            region=ApproximateMPR(k=ampr_k),
            strategy=strategy,
            cost_model=cost_model,
            obs=obs,
        ),
    }
    if include_mpr:
        methods["MPR"] = make_cbcs(
            data,
            region=ExactMPR(),
            strategy=strategy_factory() if strategy_factory else MaxOverlapSP(),
            cost_model=cost_model,
            obs=obs,
        )
    return methods


# ----------------------------------------------------------------------
# Workload runners
# ----------------------------------------------------------------------
def run_queries(method, queries: Sequence[Constraints]) -> MethodResult:
    """Run every query through ``method`` and collect the outcomes."""
    name = getattr(method, "name", type(method).__name__)
    result = MethodResult(method=name)
    for constraints in queries:
        result.outcomes.append(method.query(constraints))
    return result


def run_interactive_workload(
    data: np.ndarray,
    methods: Dict[str, object],
    n_sessions: int = 5,
    queries_per_session: int = 20,
    seed: int = 0,
) -> Dict[str, MethodResult]:
    """The paper's workload (1): exploratory sessions from an empty cache.

    Each method sees identical query sequences; CBCS engines keep their
    caches across a session stream (the paper's setting) and are reset
    between the independent session sets.
    """
    results = {name: MethodResult(method=name) for name in methods}
    for session_idx in range(n_sessions):
        gen = WorkloadGenerator(data, seed=seed + session_idx)
        queries = gen.exploratory_stream(queries_per_session)
        for name, method in methods.items():
            if isinstance(method, CBCS):
                method.cache.clear()
            results[name].outcomes.extend(run_queries(method, queries).outcomes)
    return results


def run_independent_workload(
    data: np.ndarray,
    methods: Dict[str, object],
    n_queries: int = 50,
    warm_queries: int = 200,
    seed: int = 0,
) -> Dict[str, MethodResult]:
    """The paper's workload (2): independent queries, preloaded cache.

    CBCS caches are warmed with ``warm_queries`` independent queries first
    (the paper preloads 2000); warm-up outcomes are not reported.
    """
    gen = WorkloadGenerator(data, seed=seed)
    warm = gen.independent_queries(warm_queries)
    queries = gen.independent_queries(n_queries)
    results: Dict[str, MethodResult] = {}
    for name, method in methods.items():
        if isinstance(method, CBCS):
            method.cache.clear()
            method.warm(warm)
        results[name] = run_queries(method, queries)
        results[name].method = name
    return results


def summarize(results: Dict[str, MethodResult]) -> Dict[str, Dict[str, float]]:
    """Aggregate a results mapping into plain floats (for extra_info and
    text reports)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, res in results.items():
        if not len(res):
            continue
        out[name] = {
            "mean_ms": res.mean_total_ms(),
            "mean_points_read": res.mean_points_read(),
            "mean_range_queries": res.mean_range_queries(),
            "queries": float(len(res)),
        }
    return out
