"""Dependency-free SVG rendering of figure series.

``python -m repro.bench fig5a --svg out/`` writes one SVG per figure so the
reproduced curves can be compared with the paper's plots side by side.  The
renderer is deliberately tiny: line charts for x/series figures (Figs. 5-9)
and grouped bar charts for distribution/stage figures (Figs. 10-12 and the
ablations), with a log-scale option for the range-query counts of Figure 9.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 160, 40, 50
_PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
]


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if v == v and abs(v) != float("inf")]


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _axis_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / max(n - 1, 1)
    return [lo + i * step for i in range(n)]


def line_chart(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render a multi-series line chart as an SVG string."""
    xs = [float(x) for x in x_values]
    all_y = _finite([v for values in series.values() for v in values])
    if not xs or not all_y:
        return _empty_chart(title)
    if log_y:
        all_y = [v for v in all_y if v > 0]
        y_lo = math.log10(min(all_y)) if all_y else 0.0
        y_hi = math.log10(max(all_y)) if all_y else 1.0
    else:
        y_lo, y_hi = 0.0, max(all_y)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        value = math.log10(y) if log_y else y
        return _MARGIN_T + plot_h - (value - y_lo) / (y_hi - y_lo) * plot_h

    parts = [_svg_header(title)]
    parts.append(_axes(x_label, y_label, x_lo, x_hi, y_lo, y_hi, log_y, sx, sy))
    for idx, (name, values) in enumerate(series.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        points = [
            (sx(x), sy(v))
            for x, v in zip(xs, values)
            if v == v and (not log_y or v > 0)
        ]
        if len(points) >= 2:
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
            parts.append(
                f'<polyline fill="none" stroke="{color}" stroke-width="2" '
                f'points="{path}"/>'
            )
        for px, py in points:
            parts.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" fill="{color}"/>')
        ly = _MARGIN_T + 16 * idx
        lx = _WIDTH - _MARGIN_R + 10
        parts.append(
            f'<rect x="{lx}" y="{ly - 8}" width="10" height="10" fill="{color}"/>'
            f'<text x="{lx + 14}" y="{ly + 1}" font-size="11">{_escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(
    title: str,
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    y_label: str = "",
) -> str:
    """Render a grouped bar chart (categories on x, one bar per series)."""
    all_y = _finite([v for values in series.values() for v in values])
    if not categories or not all_y:
        return _empty_chart(title)
    y_hi = max(max(all_y), 1e-12)

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B
    group_w = plot_w / len(categories)
    bar_w = group_w / (len(series) + 1)

    def sy(y: float) -> float:
        return _MARGIN_T + plot_h - y / y_hi * plot_h

    parts = [_svg_header(title)]
    parts.append(
        _axes("", y_label, 0, 1, 0.0, y_hi, False, lambda x: 0.0, sy, draw_x=False)
    )
    for c_idx, cat in enumerate(categories):
        cx = _MARGIN_L + group_w * (c_idx + 0.5)
        parts.append(
            f'<text x="{cx:.1f}" y="{_HEIGHT - _MARGIN_B + 16}" font-size="10" '
            f'text-anchor="middle">{_escape(cat)}</text>'
        )
    for s_idx, (name, values) in enumerate(series.items()):
        color = _PALETTE[s_idx % len(_PALETTE)]
        for c_idx, value in enumerate(values):
            if value != value:
                continue
            x = _MARGIN_L + group_w * c_idx + bar_w * (s_idx + 0.5)
            top = sy(max(value, 0.0))
            parts.append(
                f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                f'height="{_MARGIN_T + plot_h - top:.1f}" fill="{color}"/>'
            )
        ly = _MARGIN_T + 16 * s_idx
        lx = _WIDTH - _MARGIN_R + 10
        parts.append(
            f'<rect x="{lx}" y="{ly - 8}" width="10" height="10" fill="{color}"/>'
            f'<text x="{lx + 14}" y="{ly + 1}" font-size="11">{_escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_figure(report) -> Optional[str]:
    """Best-effort SVG for a :class:`~repro.bench.experiments.FigureReport`.

    Returns None for reports whose series shape has no chart mapping.
    """
    series = report.series
    if "time_ms" in series and "sizes" in series:
        return line_chart(
            report.title, "|S|", series["sizes"], series["time_ms"],
            y_label="avg running time (ms)",
        )
    if "time_ms" in series and "dims" in series:
        return line_chart(
            report.title, "|D|", series["dims"], series["time_ms"],
            y_label="avg running time (ms)",
        )
    if "range_queries" in series and "dims" in series:
        return line_chart(
            report.title, "|D|", series["dims"], series["range_queries"],
            y_label="avg range queries (log)", log_y=True,
        )
    if "stages" in series:
        stages = series["stages"]
        categories = list(stages)
        stage_names = ["processing", "fetching", "skyline"]
        data = {
            stage: [stages[cat][stage] for cat in categories]
            for stage in stage_names
        }
        return bar_chart(report.title, categories, data, y_label="avg ms per stage")
    if series and all(
        isinstance(v, dict) and "mean" in v for v in series.values()
    ):
        categories = list(series)
        return bar_chart(
            report.title, categories,
            {"mean": [series[c]["mean"] for c in categories]},
            y_label="mean response time (ms)",
        )
    return None


def _svg_header(title: str) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif">'
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>'
        f'<text x="{_WIDTH / 2}" y="22" font-size="14" text-anchor="middle">'
        f"{_escape(title)}</text>"
    )


def _axes(
    x_label, y_label, x_lo, x_hi, y_lo, y_hi, log_y, sx, sy, draw_x=True
) -> str:
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B
    parts = [
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T + plot_h}" stroke="black"/>',
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T + plot_h}" '
        f'x2="{_WIDTH - _MARGIN_R}" y2="{_MARGIN_T + plot_h}" stroke="black"/>',
    ]
    for tick in _axis_ticks(y_lo, y_hi):
        y = sy(10 ** tick if log_y else tick)
        label = f"1e{tick:.1f}" if log_y else f"{tick:,.0f}" if tick >= 10 else f"{tick:.2g}"
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 3:.1f}" font-size="10" '
            f'text-anchor="end">{label}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_L - 3}" y1="{y:.1f}" x2="{_MARGIN_L}" '
            f'y2="{y:.1f}" stroke="black"/>'
        )
    if draw_x:
        for tick in _axis_ticks(x_lo, x_hi):
            x = sx(tick)
            parts.append(
                f'<text x="{x:.1f}" y="{_HEIGHT - _MARGIN_B + 16}" font-size="10" '
                f'text-anchor="middle">{tick:,.0f}</text>'
            )
    if x_label:
        parts.append(
            f'<text x="{(_MARGIN_L + _WIDTH - _MARGIN_R) / 2}" '
            f'y="{_HEIGHT - 12}" font-size="12" text-anchor="middle">'
            f"{_escape(x_label)}</text>"
        )
    if y_label:
        parts.append(
            f'<text x="16" y="{_MARGIN_T + plot_h / 2}" font-size="12" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{_MARGIN_T + plot_h / 2})">{_escape(y_label)}</text>'
        )
    return "".join(parts)


def _empty_chart(title: str) -> str:
    return _svg_header(title) + "<text x='320' y='200'>no data</text></svg>"
