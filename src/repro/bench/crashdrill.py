"""Crash-recovery drill: kill the engine mid-write, recover, prove bit-exactness.

The durability layer's acceptance test (companion to the chaos soak).  Each
scenario runs a seeded interleaved insert/delete/query schedule against a
durable :class:`~repro.core.dynamic.DynamicCBCS` (WAL-backed table updates,
disk-backed cache) with one crash point armed -- mid-WAL-append (clean and
torn), at the fsync boundary, mid-table-checkpoint, mid-cache-snapshot --
then recovers from the on-disk state and checks every verification query
**bit-exactly** against an uncrashed reference engine that applied exactly
the committed update prefix.

"Committed" is the WAL contract: an update is committed iff its log record
survived (each update batch is exactly one record, LSNs dense from 1, so
the recovered ``last_lsn`` *is* the committed prefix length).  A torn final
record is truncated on recovery and the update correctly un-happens.

Everything is seeded -- dataset, schedule, crash placement -- so a failing
drill replays bit-for-bit.  Run via ``python -m repro.bench --crash-drill``
(exit code 5 on failure) or as part of ``--chaos``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.bench.chaos import _same_multiset
from repro.core.cbcs import RUNG_STALE, RUNG_UNAVAILABLE
from repro.core.cache import SkylineCache
from repro.core.cache_backend import DiskCacheBackend
from repro.core.dynamic import DynamicCBCS
from repro.data.generator import independent
from repro.ioutil import atomic_write_json
from repro.storage.durability import DurabilityManager
from repro.storage.faults import (
    FaultInjector,
    FaultyDiskTable,
    SimulatedCrash,
    get_profile,
)
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

__all__ = ["CrashScenario", "ScenarioResult", "CrashDrillReport", "run_crash_drill"]

#: Answers on these rungs are legitimately non-exact (only reachable when
#: the drill runs with a fault profile on top of the crash).
_STALE_RUNGS = (RUNG_STALE, RUNG_UNAVAILABLE)


@dataclass(frozen=True)
class CrashScenario:
    """One armed crash: where, after how many hits, and how torn."""

    name: str
    point: Optional[str]  # None = clean-shutdown control (warm restart)
    after: int = 0
    torn_fraction: Optional[float] = None


#: The drill's canonical scenario set.  ``after`` values land the crash
#: mid-schedule (the WAL points are hit by the table WAL *and* the cache
#: WAL, so even small counts reach deep into the run).
DEFAULT_SCENARIOS = (
    CrashScenario("warm-restart", None),
    CrashScenario("wal-append-clean", "wal.append", after=6),
    CrashScenario("wal-append-torn", "wal.append", after=9, torn_fraction=0.6),
    CrashScenario("wal-fsync-lost", "wal.fsync", after=4),
    CrashScenario("table-checkpoint", "table.checkpoint", after=0),
    CrashScenario("cache-snapshot", "cache.snapshot", after=0),
)


@dataclass
class ScenarioResult:
    name: str
    crash_point: Optional[str]
    crashed: bool = False
    committed_ops: int = 0
    total_ops: int = 0
    replayed_ops: int = 0
    checkpoint_lsn: int = 0
    tail_status: str = "clean"
    cache_tail_status: str = "clean"
    cache_restored_from: Optional[str] = None
    cache_restored_items: int = 0
    queries_checked: int = 0
    stale_serves: int = 0
    mismatches: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.errors and self.mismatches == 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "crash_point": self.crash_point,
            "crashed": self.crashed,
            "committed_ops": self.committed_ops,
            "total_ops": self.total_ops,
            "replayed_ops": self.replayed_ops,
            "checkpoint_lsn": self.checkpoint_lsn,
            "tail_status": self.tail_status,
            "cache_tail_status": self.cache_tail_status,
            "cache_restored_from": self.cache_restored_from,
            "cache_restored_items": self.cache_restored_items,
            "queries_checked": self.queries_checked,
            "stale_serves": self.stale_serves,
            "mismatches": self.mismatches,
            "errors": list(self.errors),
            "passed": self.passed,
        }


@dataclass
class CrashDrillReport:
    seed: int
    profile: str
    workers: int
    scenarios: List[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.scenarios) and all(s.passed for s in self.scenarios)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "workers": self.workers,
            "scenarios": [s.as_dict() for s in self.scenarios],
            "passed": self.passed,
        }

    def render_text(self) -> str:
        lines = [
            f"# crash-recovery drill (seed={self.seed}, "
            f"profile={self.profile}, workers={self.workers})"
        ]
        for s in self.scenarios:
            status = "ok" if s.passed else "FAIL"
            lines.append(
                f"{s.name:<18} [{status}] crash={s.crash_point or 'none'} "
                f"committed={s.committed_ops}/{s.total_ops} "
                f"replayed={s.replayed_ops} tail={s.tail_status}"
                f"/{s.cache_tail_status} "
                f"cache={s.cache_restored_from} "
                f"checked={s.queries_checked} mismatches={s.mismatches}"
            )
            for err in s.errors:
                lines.append(f"    error: {err}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def _make_schedule(rng: np.random.Generator, data: np.ndarray, n_ops: int):
    """A seeded interleaved op schedule over a driver-side live-row model.

    Returns ``(steps, updates)`` where ``steps`` interleaves ``("query",
    constraints)`` with ``("update", k)`` markers and ``updates[k]`` is the
    k-th update batch -- the unit the WAL commits, so ``updates[:last_lsn]``
    is exactly the committed prefix a reference engine must apply.
    """
    gen = WorkloadGenerator(data, seed=int(rng.integers(1 << 31)))
    queries = iter(gen.independent_queries(n_ops * 2))
    ndim = data.shape[1]
    n0 = len(data)
    alive = list(range(n0))
    next_id = n0
    steps = []
    updates = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.4:
            rows = rng.random((int(rng.integers(1, 4)), ndim))
            updates.append(("insert", rows))
            steps.append(("update", len(updates) - 1))
            for _ in range(len(rows)):
                alive.append(next_id)
                next_id += 1
        elif roll < 0.7 and len(alive) > 4:
            picks = rng.choice(len(alive), size=int(rng.integers(1, 3)), replace=False)
            rowids = sorted(alive[int(i)] for i in picks)
            for rid in rowids:
                alive.remove(rid)
            updates.append(("delete", np.asarray(rowids, dtype=np.int64)))
            steps.append(("update", len(updates) - 1))
        else:
            steps.append(("query", next(queries)))
    return steps, updates


def _build_engine(
    data: np.ndarray,
    dur_dir: Path,
    cache_dir: Path,
    injector: Optional[FaultInjector],
    profile,
    workers: int,
    fsync: bool,
):
    """One durable engine over (possibly fault-injected) storage."""
    table = DiskTable(data.copy())
    faulty = profile is not None and profile.total_rate > 0
    if faulty:
        table = FaultyDiskTable(table, injector)
    manager = DurabilityManager(
        dur_dir, fsync=fsync, checkpoint_every=5, injector=injector
    )
    cache = SkylineCache(
        backend=DiskCacheBackend(
            cache_dir, fsync=fsync, checkpoint_every=8, injector=injector
        )
    )
    engine = DynamicCBCS(
        table,
        cache=cache,
        durability=manager,
        resilience=True if faulty else None,
        workers=workers,
    )
    return engine


def _check_queries(result: ScenarioResult, engine, reference, queries) -> None:
    """Compare the recovered engine's answers to the uncrashed reference."""
    for i, constraints in enumerate(queries):
        outcome = engine.query(constraints)
        ref = reference.query(constraints)
        result.queries_checked += 1
        if outcome.degraded in _STALE_RUNGS:
            result.stale_serves += 1
            continue
        if not _same_multiset(
            np.asarray(outcome.skyline), np.asarray(ref.skyline)
        ):
            result.mismatches += 1
            result.errors.append(
                f"check query {i}: recovered answer differs from reference "
                f"({len(outcome.skyline)} vs {len(ref.skyline)} points)"
            )


def run_crash_drill(
    seed: int = 0,
    profile: str = "none",
    n_points: int = 400,
    ndim: int = 3,
    n_ops: int = 16,
    n_check_queries: int = 10,
    workers: int = 1,
    fsync: bool = True,
    scenarios=DEFAULT_SCENARIOS,
    out_dir=None,
) -> CrashDrillReport:
    """Run every crash scenario; returns the :class:`CrashDrillReport`.

    ``profile`` layers ordinary storage faults (retried by the resilience
    stack) on top of the crashes -- the CI job runs ``default``.  With
    ``out_dir`` set, each scenario's durability/cache directories survive
    under it and ``recovery_report.json`` is written there (the CI
    artifacts); otherwise everything lives in a temp directory.
    """
    fault_profile = get_profile(profile)
    report = CrashDrillReport(
        seed=seed, profile=fault_profile.name, workers=workers
    )
    root = Path(out_dir) if out_dir is not None else Path(tempfile.mkdtemp())
    root.mkdir(parents=True, exist_ok=True)
    data = independent(n_points, ndim, seed=seed)

    for scenario in scenarios:
        result = ScenarioResult(name=scenario.name, crash_point=scenario.point)
        report.scenarios.append(result)
        sdir = root / scenario.name
        dur_dir, cache_dir = sdir / "durability", sdir / "cache"
        rng = np.random.default_rng(seed)
        steps, updates = _make_schedule(rng, data, n_ops)
        result.total_ops = len(updates)
        check_queries = list(
            WorkloadGenerator(data, seed=seed + 1).independent_queries(
                n_check_queries
            )
        )
        injector = FaultInjector(profile=fault_profile, seed=seed)
        try:
            engine = _build_engine(
                data, dur_dir, cache_dir, injector, fault_profile, workers, fsync
            )
            # Arm only after construction: the base checkpoint must exist,
            # or there is nothing to recover onto.
            if scenario.point is not None:
                injector.arm_crash(
                    scenario.point,
                    after=scenario.after,
                    torn_fraction=scenario.torn_fraction,
                )
            try:
                for kind, arg in steps:
                    if kind == "query":
                        engine.query(arg)
                    else:
                        op, payload = updates[arg]
                        if op == "insert":
                            engine.insert_points(payload)
                        else:
                            engine.delete_points(payload)
                # Clean shutdown is crash-exposed too: its final table and
                # cache checkpoints are where the snapshot points fire when
                # the schedule alone did not reach them.
                engine.close()
            except SimulatedCrash:
                result.crashed = True
            else:
                if scenario.point is not None:
                    result.errors.append(
                        f"armed crash point {scenario.point!r} never fired"
                    )
                    continue

            # ----------------------------------------------------------
            # Recovery: fresh manager + cache over the surviving files.
            # ----------------------------------------------------------
            injector.disarm_crashes()
            manager = DurabilityManager(
                dur_dir, fsync=fsync, checkpoint_every=5, injector=injector
            )
            cache = SkylineCache(
                backend=DiskCacheBackend(
                    cache_dir, fsync=fsync, checkpoint_every=8, injector=injector
                )
            )
            faulty = fault_profile.total_rate > 0
            recovered = DynamicCBCS.recover(
                manager,
                cache=cache,
                resilience=True if faulty else None,
                workers=workers,
                table_wrapper=(
                    (lambda t: FaultyDiskTable(t, injector)) if faulty else None
                ),
            )
            rec_report = recovered.recovery_report
            result.committed_ops = rec_report.last_lsn
            result.replayed_ops = rec_report.replayed_ops
            result.checkpoint_lsn = rec_report.checkpoint_lsn
            result.tail_status = rec_report.tail_status
            result.cache_tail_status = cache.backend.wal.opened_tail_status
            result.cache_restored_from = cache.backend.restored_from
            result.cache_restored_items = cache.backend.restored_items

            if scenario.point is None:
                # The control must actually restart warm.
                if cache.backend.restored_from == "cold":
                    result.errors.append(
                        "warm-restart control came back cold (no cache state)"
                    )
                if result.committed_ops != len(updates):
                    result.errors.append(
                        f"clean shutdown lost updates: committed "
                        f"{result.committed_ops} of {len(updates)}"
                    )
            if result.committed_ops > len(updates):
                result.errors.append(
                    f"recovered more updates ({result.committed_ops}) than "
                    f"were issued ({len(updates)})"
                )
                continue

            # Uncrashed reference: exactly the committed prefix, no
            # durability, no faults -- answers are exact by construction.
            reference = DynamicCBCS(DiskTable(data.copy()))
            for op, payload in updates[: result.committed_ops]:
                if op == "insert":
                    reference.insert_points(payload)
                else:
                    reference.delete_points(payload)
            _check_queries(result, recovered, reference, check_queries)
            recovered.close()
            reference.close()
        except Exception as exc:  # a drill must report, never explode
            result.errors.append(f"{type(exc).__name__}: {exc}")

    if out_dir is not None:
        atomic_write_json(root / "recovery_report.json", report.as_dict())
    return report
