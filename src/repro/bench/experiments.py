"""One experiment function per figure of the paper's evaluation (Section 7).

Each function runs a scaled-down version of the corresponding experiment and
returns a :class:`FigureReport` holding both the structured numbers (for
assertions and ``pytest-benchmark`` extra_info) and a formatted text table
(for ``python -m repro.bench`` and EXPERIMENTS.md).

Scales: the paper ran 1M-5M points, 5x100 interactive queries and
2000-query cache preloads on PostgreSQL.  ``REPRO_BENCH_SCALE`` selects
``quick`` (seconds per figure; default), ``default`` (minutes), or ``full``
(closest to paper scale).  Every comparison's *shape* is preserved at every
scale; absolute milliseconds are simulated-I/O plus Python CPU and are not
comparable to the paper's Java/PostgreSQL testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import (
    MethodResult,
    make_cbcs,
    make_methods,
    run_independent_workload,
    run_interactive_workload,
    run_queries,
    scaled,
)
from repro.bench.reporting import (
    format_boxplot_table,
    format_series,
    format_table,
)
from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cases import (
    CASE_A,
    CASE_B,
    CASE_C,
    CASE_D,
)
from repro.core.strategies import (
    MaxOverlap,
    MaxOverlapSP,
    OptimumDistance,
    Prioritized1D,
    PrioritizedND,
    RandomStrategy,
)
from repro.data.generator import generate
from repro.data.realestate import danish_real_estate
from repro.geometry.constraints import Constraints
from repro.skyline.sfs import sfs_skyline
from repro.workload.generator import WorkloadGenerator


@dataclass
class FigureReport:
    """Structured + textual result of one reproduced figure."""

    figure: str
    title: str
    text: str
    series: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.figure}: {self.title} ==\n{self.text}\n"


# ----------------------------------------------------------------------
# Figures 5 & 6 -- scalability with dataset size
# ----------------------------------------------------------------------
def fig5_scalability(
    distribution: str = "independent",
    sizes: Optional[Sequence[int]] = None,
    ndim: int = 5,
    seed: int = 0,
) -> FigureReport:
    """Figure 5: running time vs dataset size, interactive workload, 5-D."""
    sizes = list(
        sizes
        or scaled([10_000, 20_000, 40_000], [25_000, 50_000, 100_000, 200_000],
                  [1_000_000, 2_000_000, 3_500_000, 5_000_000])
    )
    n_sessions = scaled(2, 5, 5)
    per_session = scaled(12, 20, 100)
    series: Dict[str, List[float]] = {
        "Baseline": [], "BBS": [], "aMPR": [],
        "aMPR (Stable)": [], "aMPR (Unstable)": [],
    }
    points_read: Dict[str, List[float]] = {
        "Baseline": [], "aMPR": [], "aMPR (Stable)": [], "aMPR (Unstable)": []
    }
    for n in sizes:
        data = generate(distribution, n, ndim, seed=seed)
        methods = make_methods(data)
        results = run_interactive_workload(
            data, methods, n_sessions=n_sessions,
            queries_per_session=per_session, seed=seed + 1,
        )
        split = results["aMPR"].split_by_stability()
        for name, res in [
            ("Baseline", results["Baseline"]),
            ("BBS", results["BBS"]),
            ("aMPR", results["aMPR"]),
            ("aMPR (Stable)", split["stable"]),
            ("aMPR (Unstable)", split["unstable"]),
        ]:
            series[name].append(res.mean_total_ms() if len(res) else float("nan"))
            if name in points_read:
                points_read[name].append(
                    res.mean_points_read() if len(res) else float("nan")
                )
    text = format_series(
        "|S|", sizes, series,
        title=f"Avg running time (ms), {distribution}, |D|={ndim}, interactive",
        unit="ms",
    )
    return FigureReport(
        figure="fig5" if distribution == "independent" else f"fig5-{distribution}",
        title=f"Scalability with dataset size ({distribution}, |D|={ndim})",
        text=text,
        series={"sizes": sizes, "time_ms": series, "points_read": points_read},
    )


def fig6_mpr_vs_ampr(seed: int = 0) -> FigureReport:
    """Figure 6: as Figure 5a but 3-D and including the exact MPR."""
    sizes = list(
        scaled([10_000, 20_000, 40_000], [25_000, 50_000, 100_000, 200_000],
               [1_000_000, 2_000_000, 3_500_000, 5_000_000])
    )
    n_sessions = scaled(2, 5, 5)
    per_session = scaled(12, 20, 100)
    names = ["Baseline", "BBS", "MPR", "MPR (Stable)", "MPR (Unstable)",
             "aMPR", "aMPR (Stable)", "aMPR (Unstable)"]
    series: Dict[str, List[float]] = {name: [] for name in names}
    points_read: Dict[str, List[float]] = {
        name: [] for name in ["Baseline", "MPR", "aMPR"]
    }
    for n in sizes:
        data = generate("independent", n, 3, seed=seed)
        methods = make_methods(data, include_mpr=True)
        results = run_interactive_workload(
            data, methods, n_sessions=n_sessions,
            queries_per_session=per_session, seed=seed + 1,
        )
        mpr_split = results["MPR"].split_by_stability()
        ampr_split = results["aMPR"].split_by_stability()
        lookup = {
            "Baseline": results["Baseline"], "BBS": results["BBS"],
            "MPR": results["MPR"], "MPR (Stable)": mpr_split["stable"],
            "MPR (Unstable)": mpr_split["unstable"], "aMPR": results["aMPR"],
            "aMPR (Stable)": ampr_split["stable"],
            "aMPR (Unstable)": ampr_split["unstable"],
        }
        for name in names:
            res = lookup[name]
            series[name].append(res.mean_total_ms() if len(res) else float("nan"))
        for name in points_read:
            points_read[name].append(lookup[name].mean_points_read())
    text = format_series(
        "|S|", sizes, series,
        title="Avg running time (ms), independent, |D|=3, interactive (incl. exact MPR)",
        unit="ms",
    )
    return FigureReport(
        figure="fig6",
        title="MPR vs aMPR scalability (independent, |D|=3)",
        text=text,
        series={"sizes": sizes, "time_ms": series, "points_read": points_read},
    )


# ----------------------------------------------------------------------
# Figure 7 -- dimensionality
# ----------------------------------------------------------------------
def _pad_unconstrained(queries, data, constrained_dims: int):
    """Expand queries on ``constrained_dims`` dims to data's full width by
    adding unconstrained dimensions (paper Section 7.2: 'we expand the
    queries ... by adding an unconstrained dimension for each dimension
    over 5')."""
    lo_pad = data.min(axis=0)[constrained_dims:]
    hi_pad = data.max(axis=0)[constrained_dims:]
    return [
        Constraints(np.concatenate([q.lo, lo_pad]), np.concatenate([q.hi, hi_pad]))
        for q in queries
    ]


def fig7_dimensionality(seed: int = 0) -> FigureReport:
    """Figure 7: running time vs dimensionality (constrained on 5 dims)."""
    # High dimensionality needs enough points for skylines to stay a small
    # fraction of the data (the paper used 1M); too few points at 8-10 dims
    # makes nearly everything a skyline point and distorts every method.
    dims = list(scaled([6, 7, 8], [6, 7, 8, 9, 10], [6, 7, 8, 9, 10]))
    n = scaled(60_000, 150_000, 1_000_000)
    n_sessions = scaled(2, 3, 5)
    per_session = scaled(10, 15, 100)
    names = ["Baseline", "BBS", "aMPR", "aMPR (Stable)", "aMPR (Unstable)"]
    series: Dict[str, List[float]] = {name: [] for name in names}
    for ndim in dims:
        data = generate("independent", n, ndim, seed=seed)
        methods = make_methods(data)
        results = {name: MethodResult(method=name) for name in methods}
        for s in range(n_sessions):
            gen = WorkloadGenerator(data[:, :5], seed=seed + s)
            queries = _pad_unconstrained(
                gen.exploratory_stream(per_session), data, 5
            )
            for name, method in methods.items():
                if hasattr(method, "cache"):
                    method.cache.clear()
                results[name].outcomes.extend(run_queries(method, queries).outcomes)
        split = results["aMPR"].split_by_stability()
        lookup = {**results, "aMPR (Stable)": split["stable"],
                  "aMPR (Unstable)": split["unstable"]}
        for name in names:
            res = lookup[name]
            series[name].append(res.mean_total_ms() if len(res) else float("nan"))
    text = format_series(
        "|D|", dims, series,
        title=f"Avg running time (ms) vs dimensionality (|S|={n}, 5 constrained dims)",
        unit="ms",
    )
    return FigureReport(
        figure="fig7",
        title="Efficiency with increasing dimensionality",
        text=text,
        series={"dims": dims, "time_ms": series},
    )


# ----------------------------------------------------------------------
# Figure 8 -- points read from disk
# ----------------------------------------------------------------------
def fig8_points_read(seed: int = 0) -> FigureReport:
    """Figure 8: avg points read, (a) |D|=5 Baseline vs aMPR and
    (b) |D|=3 including exact MPR."""
    report_a = fig5_scalability("independent", seed=seed)
    report_b = fig6_mpr_vs_ampr(seed=seed)
    text_a = format_series(
        "|S|", report_a.series["sizes"], report_a.series["points_read"],
        title="(a) Avg points read, independent, |D|=5", unit="pts",
    )
    text_b = format_series(
        "|S|", report_b.series["sizes"], report_b.series["points_read"],
        title="(b) Avg points read, independent, |D|=3", unit="pts",
    )
    return FigureReport(
        figure="fig8",
        title="Average number of points read from disk",
        text=text_a + "\n\n" + text_b,
        series={"a": report_a.series["points_read"],
                "b": report_b.series["points_read"],
                "sizes": report_a.series["sizes"]},
    )


# ----------------------------------------------------------------------
# Figure 9 -- range queries generated
# ----------------------------------------------------------------------
def fig9_range_queries(workload: str = "interactive", seed: int = 0) -> FigureReport:
    """Figure 9: number of range queries the (a)MPR decomposes into.

    |S| = 5000 (as in the paper, 'so that we can scale MPR to higher
    dimensions'); for each dimensionality, cache-item/query pairs are drawn
    from the interactive or independent workload and the region computers
    run directly (no table needed to count boxes).
    """
    if workload not in ("interactive", "independent"):
        raise ValueError("workload must be 'interactive' or 'independent'")
    dims = list(scaled([2, 3, 4, 5], [2, 3, 4, 5, 6], [2, 3, 4, 5, 6, 7]))
    n = 5000
    n_pairs = scaled(20, 40, 60)
    # The exact MPR's box count explodes with dimensionality (the paper
    # "did not include results for MPR for dimensionalities 8, 9 and 10,
    # since just generating the range queries here took several hours");
    # we likewise cap it, by scale.
    mpr_dim_cap = scaled(4, 5, 7) if workload == "interactive" else scaled(4, 4, 6)
    computers = {
        "MPR": ExactMPR(),
        "aMPR (1p)": ApproximateMPR(1),
        "aMPR (3p)": ApproximateMPR(3),
        "aMPR (6p)": ApproximateMPR(6),
        "aMPR (10p)": ApproximateMPR(10),
    }
    series: Dict[str, List[float]] = {name: [] for name in computers}
    for ndim in dims:
        data = generate("independent", n, ndim, seed=seed)
        gen = WorkloadGenerator(data, seed=seed + ndim)
        pairs = []
        attempts = 0
        while len(pairs) < n_pairs and attempts < 20 * n_pairs:
            attempts += 1
            if workload == "interactive":
                old = gen.initial_query()
                new = gen.refine(old)
            else:
                old, new = gen.initial_query(), gen.initial_query()
                if not old.overlaps(new):
                    continue
            inside = data[old.satisfied_mask(data)]
            if len(inside) == 0:
                continue  # an empty cached skyline cannot be a cache item
            skyline = inside[sfs_skyline(inside)]
            pairs.append((old, skyline, new))
        for name, computer in computers.items():
            if name == "MPR" and ndim > mpr_dim_cap:
                series[name].append(float("nan"))
                continue
            counts = [
                len(computer.compute(old, skyline, new).boxes)
                for old, skyline, new in pairs
            ]
            series[name].append(float(np.mean(counts)) if counts else float("nan"))
    text = format_series(
        "|D|", dims, series,
        title=f"Avg range queries generated ({workload} pairs, |S|=5k)",
        unit="queries",
    )
    return FigureReport(
        figure="fig9a" if workload == "interactive" else "fig9b",
        title=f"Range queries generated ({workload})",
        text=text,
        series={"dims": dims, "range_queries": series},
    )


# ----------------------------------------------------------------------
# Figure 10 -- per-stage breakdown by case
# ----------------------------------------------------------------------
def fig10_stage_breakdown(seed: int = 0) -> FigureReport:
    """Figure 10: avg ms per stage (processing/fetching/skyline), split by
    incremental case, independent data, |D|=3."""
    n = scaled(30_000, 100_000, 1_000_000)
    n_chains = scaled(40, 80, 200)
    data = generate("independent", n, 3, seed=seed)
    from repro.storage.table import DiskTable
    from repro.skyline.baseline import BaselineMethod

    baseline = BaselineMethod(DiskTable(data))
    engine = make_cbcs(data, region=ApproximateMPR(1))
    gen = WorkloadGenerator(data, seed=seed + 1)

    by_case: Dict[str, MethodResult] = {
        label: MethodResult(method=label)
        for label in ["Baseline", "aMPR Case 1", "aMPR Case 2",
                      "aMPR Case 3", "aMPR Case 4", "aMPR General"]
    }
    case_map = {CASE_A: "aMPR Case 1", CASE_B: "aMPR Case 2",
                CASE_C: "aMPR Case 3", CASE_D: "aMPR Case 4"}
    for _ in range(n_chains):
        old = gen.initial_query()
        new = gen.refine(old)
        by_case["Baseline"].outcomes.append(baseline.query(new))
        engine.cache.clear()
        engine.query(old)  # prime the cache with exactly one item
        out = engine.query(new)
        label = case_map.get(out.case, "aMPR General")
        by_case[label].outcomes.append(out)

    rows = []
    stage_series: Dict[str, Dict[str, float]] = {}
    for label, res in by_case.items():
        if not len(res):
            continue
        stages = res.mean_stage_ms()
        stage_series[label] = stages
        rows.append(
            [label, len(res), stages["processing"], stages["fetching"],
             stages["skyline"],
             stages["processing"] + stages["fetching"] + stages["skyline"]]
        )
    text = format_table(
        ["method/case", "n", "processing (ms)", "fetching (ms)",
         "skyline (ms)", "total (ms)"],
        rows,
        title=f"Avg ms per stage (independent, |S|={n}, |D|=3)",
    )
    return FigureReport(
        figure="fig10",
        title="Per-stage cost by change type",
        text=text,
        series={"stages": stage_series},
    )


# ----------------------------------------------------------------------
# Figure 11 -- cache search strategies
# ----------------------------------------------------------------------
def fig11_strategies(workload: str = "interactive", seed: int = 0) -> FigureReport:
    """Figure 11: response-time distribution per cache search strategy."""
    if workload not in ("interactive", "independent"):
        raise ValueError("workload must be 'interactive' or 'independent'")
    n = scaled(20_000, 100_000, 1_000_000)
    ndim = 5
    data = generate("independent", n, ndim, seed=seed)
    strategies = {
        "Random": lambda: RandomStrategy(seed=seed),
        "MaxOverlap": lambda: MaxOverlap(),
        "MaxOverlapSP": lambda: MaxOverlapSP(),
        "Prioritized1D": lambda: Prioritized1D(),
        "PrioritizednD (Std)": lambda: PrioritizedND.std(),
        "PrioritizednD (Bad)": lambda: PrioritizedND.bad(),
        "OptimumDistance": lambda: OptimumDistance(),
    }
    if workload == "independent":
        # the paper omits Prioritized1D for independent queries
        strategies.pop("Prioritized1D")

    distributions: Dict[str, np.ndarray] = {}
    for name, factory in strategies.items():
        engine = make_cbcs(data, region=ApproximateMPR(1), strategy=factory())
        if workload == "interactive":
            n_sessions = scaled(2, 5, 5)
            per_session = scaled(12, 20, 100)
            results = run_interactive_workload(
                data, {name: engine}, n_sessions=n_sessions,
                queries_per_session=per_session, seed=seed + 3,
            )[name]
        else:
            results = run_independent_workload(
                data, {name: engine},
                n_queries=scaled(25, 100, 500),
                warm_queries=scaled(100, 400, 2000),
                seed=seed + 3,
            )[name]
        distributions[name] = results.total_ms_values()
    text = format_boxplot_table(
        distributions,
        title=f"Response time per cache search strategy ({workload}, |S|={n}, |D|=5)",
    )
    return FigureReport(
        figure="fig11a" if workload == "interactive" else "fig11b",
        title=f"Cache search strategies ({workload})",
        text=text,
        series={name: {"mean": float(v.mean()), "median": float(np.median(v))}
                for name, v in distributions.items()},
    )


# ----------------------------------------------------------------------
# Figure 12 -- real (synthetic-substitute) data
# ----------------------------------------------------------------------
def fig12_real_data(workload: str = "interactive", seed: int = 0) -> FigureReport:
    """Figure 12: Danish real-estate data (synthetic substitute, 4-D)."""
    if workload not in ("interactive", "independent"):
        raise ValueError("workload must be 'interactive' or 'independent'")
    n = scaled(30_000, 128_000, 1_280_000)
    data = danish_real_estate(n, seed=seed + 2005)

    if workload == "interactive":
        methods = make_methods(data, ampr_k=1)
        results = run_interactive_workload(
            data, methods, n_sessions=scaled(3, 10, 10),
            queries_per_session=scaled(12, 20, 100), seed=seed + 4,
        )
        split = results["aMPR"].split_by_stability()
        distributions = {
            "Baseline": results["Baseline"].total_ms_values(),
            "BBS": results["BBS"].total_ms_values(),
            "aMPR": results["aMPR"].total_ms_values(),
            "aMPR (Stable)": split["stable"].total_ms_values(),
            "aMPR (Unstable)": split["unstable"].total_ms_values(),
        }
    else:
        methods: Dict[str, object] = {}
        base = make_methods(data, ampr_k=1)
        methods["Baseline"] = base["Baseline"]
        methods["BBS"] = base["BBS"]
        for k in (1, 5, 10):
            methods[f"aMPR ({k}p)"] = make_cbcs(
                data, region=ApproximateMPR(k), strategy=PrioritizedND.std()
            )
        results = run_independent_workload(
            data, methods, n_queries=scaled(20, 50, 50),
            warm_queries=scaled(100, 400, 2000), seed=seed + 5,
        )
        distributions = {
            name: res.total_ms_values() for name, res in results.items()
        }
    text = format_boxplot_table(
        distributions,
        title=f"Danish property data substitute ({workload}, |S|={n}, |D|=4)",
    )
    return FigureReport(
        figure="fig12a" if workload == "interactive" else "fig12b",
        title=f"Real-estate data ({workload})",
        text=text,
        series={name: {"mean": float(v.mean()), "median": float(np.median(v))}
                for name, v in distributions.items()},
    )


# ----------------------------------------------------------------------
# Warm restarts -- cold vs warm engine start (durability extension)
# ----------------------------------------------------------------------
def warmstart_restart(seed: int = 0, ndim: int = 4) -> FigureReport:
    """Cold vs warm start: persist the cache, restart, re-run the workload.

    Three phases over one independent-query workload:

    - **cold**: a fresh engine with an empty disk-backed cache answers the
      workload (populating the cache), then shuts down cleanly (final
      checkpoint);
    - **memory**: the same still-running engine re-answers the workload --
      the in-memory hit-rate ceiling a warm restart must reproduce;
    - **warm**: a *new* engine restores the persisted cache from snapshot +
      WAL tail and re-answers the workload.

    A faithful restore makes the warm hit rate equal the memory control's
    and the warm total strictly cheaper than the cold total.  The numbers
    are exported as ``warmstart_*`` gauges so the bench snapshot carries a
    cold-vs-warm section (see ``repro.bench.regress.summarize_registry``).
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.cache import SkylineCache
    from repro.core.cache_backend import DiskCacheBackend

    n = scaled(2_000, 10_000, 50_000)
    n_queries = scaled(40, 150, 400)
    data = generate("independent", n, ndim, seed=seed)
    queries = list(
        WorkloadGenerator(data, seed=seed + 1).independent_queries(n_queries)
    )
    tmp = Path(tempfile.mkdtemp(prefix="repro-warmstart-"))
    try:
        cache_dir = tmp / "cache"

        def hit_rate(cache, hits0, misses0):
            hits = cache.hits - hits0
            misses = cache.misses - misses0
            return hits / (hits + misses) if hits + misses else 0.0

        cache = SkylineCache(
            backend=DiskCacheBackend(cache_dir, fsync=False, checkpoint_every=None)
        )
        engine = make_cbcs(data, cache=cache)
        cold = run_queries(engine, queries)
        cold_rate = hit_rate(cache, 0, 0)
        h0, m0 = cache.hits, cache.misses
        mem = run_queries(engine, queries)
        mem_rate = hit_rate(cache, h0, m0)
        engine.close()  # final checkpoint: the state a restart restores

        cache2 = SkylineCache(
            backend=DiskCacheBackend(cache_dir, fsync=False, checkpoint_every=None)
        )
        restored_items = cache2.backend.restored_items
        engine2 = make_cbcs(data, cache=cache2)
        warm = run_queries(engine2, queries)
        warm_rate = hit_rate(cache2, 0, 0)
        engine2.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    rows = [
        ("cold", cold.mean_total_ms(), cold_rate, cold.mean_points_read()),
        ("memory", mem.mean_total_ms(), mem_rate, mem.mean_points_read()),
        ("warm", warm.mean_total_ms(), warm_rate, warm.mean_points_read()),
    ]
    from repro.obs import current as _current_obs

    metrics = _current_obs().metrics
    metrics.set_gauge("warmstart_cold_total_ms", cold.mean_total_ms())
    metrics.set_gauge("warmstart_mem_total_ms", mem.mean_total_ms())
    metrics.set_gauge("warmstart_warm_total_ms", warm.mean_total_ms())
    metrics.set_gauge("warmstart_cold_hit_rate", cold_rate)
    metrics.set_gauge("warmstart_mem_hit_rate", mem_rate)
    metrics.set_gauge("warmstart_warm_hit_rate", warm_rate)
    metrics.set_gauge("warmstart_restored_items", restored_items)

    text = format_table(
        ["phase", "avg ms", "hit rate", "points read"],
        [
            [name, f"{ms:.2f}", f"{rate:.1%}", f"{pr:.1f}"]
            for name, ms, rate, pr in rows
        ],
        title=(
            f"Cold vs warm start (|S|={n}, |D|={ndim}, {n_queries} queries, "
            f"{restored_items} items restored)"
        ),
    )
    return FigureReport(
        figure="warmstart",
        title="Warm restarts (persistent cache backend)",
        text=text,
        series={
            "total_ms": {name: ms for name, ms, _, _ in rows},
            "hit_rate": {name: rate for name, _, rate, _ in rows},
            "restored_items": restored_items,
        },
    )


# ----------------------------------------------------------------------
# Overload-safe serving -- open-loop ingress soak (serving extension)
# ----------------------------------------------------------------------
def serving_overload(seed: int = 0) -> FigureReport:
    """Open-loop overload serving: latency, shed rate, coalesce rate.

    Runs the :mod:`repro.bench.serving` soak at twice the calibrated
    saturation rate over a zipf-skewed multi-user stream and reports the
    answered-latency percentiles alongside the ingress outcomes.  The
    headline claim: under 2x nominal overload the service stays correct
    (accounting closes, admitted answers bit-exact) and *bounded* --
    in-flight coalescing absorbs the popularity head and admission control
    sheds what remains, so p99 tracks queue capacity, not load duration.
    The numbers are exported as ``serving_*`` gauges so the bench snapshot
    carries a serving section (see ``repro.bench.regress``).
    """
    from repro.bench.harness import active_fault_profile, active_workers
    from repro.bench.serving import run_overload_soak
    from repro.obs import current as _current_obs

    # obs stays off for the soak itself: which requests coalesce (and so
    # which execute) is timing-dependent, and letting the engine's
    # per-method counters into this figure's registry would make the
    # tightly-thresholded methods compare flap in CI.  The figure's
    # contribution to the snapshot is the serving_* gauges alone; the
    # ``--overload`` CLI soak records full observability.
    report = run_overload_soak(
        n_requests=scaled(200, 600, 2_000),
        n_points=scaled(2_000, 10_000, 30_000),
        profile=active_fault_profile() or "none",
        seed=seed,
        workers=4,
        engine_workers=active_workers(),
        obs=None,
    )
    metrics = _current_obs().metrics
    metrics.set_gauge("serving_p50_ms", report.p50_ms)
    metrics.set_gauge("serving_p95_ms", report.p95_ms)
    metrics.set_gauge("serving_p99_ms", report.p99_ms)
    metrics.set_gauge("serving_shed_rate", report.shed_rate)
    metrics.set_gauge("serving_coalesce_rate", report.coalesce_rate)
    metrics.set_gauge("serving_deadline_exceeded", report.deadline_exceeded)
    metrics.set_gauge("serving_submitted", report.submitted)
    metrics.set_gauge("serving_answered", report.answered)
    metrics.set_gauge("serving_target_rps", report.target_rps)
    return FigureReport(
        figure="serving",
        title="Overload-safe serving (open loop, 2x saturation)",
        text=report.render_text(),
        series={
            "latency_ms": {
                "p50": report.p50_ms,
                "p95": report.p95_ms,
                "p99": report.p99_ms,
            },
            "rates": {
                "shed": report.shed_rate,
                "coalesce": report.coalesce_rate,
            },
            "outcomes": {
                "submitted": report.submitted,
                "answered": report.answered,
                "shed": report.shed,
                "rejected_queue_full": report.rejected_queue_full,
                "deadline_exceeded": report.deadline_exceeded,
                "coalesced_dedup": report.coalesced_dedup,
                "coalesced_subsumed": report.coalesced_subsumed,
            },
            "throughput_rps": {
                "saturation": report.saturation_rps,
                "target": report.target_rps,
                "achieved": report.achieved_rps,
            },
        },
    )


# ----------------------------------------------------------------------
# Partition-aware sharding -- fan-out/merge vs the unsharded engine
# ----------------------------------------------------------------------
def sharding_scaleout(seed: int = 0, ndim: int = 4) -> FigureReport:
    """Sharded CBCS under partition-skewed multi-tenant traffic.

    One zipf-skewed multi-tenant stream (each tenant's constraint regions
    concentrated on the partition key; see
    :meth:`~repro.workload.generator.WorkloadGenerator.partition_stream`)
    answered at shard counts 1, 2, 4, 8 over the *same* range-partitioned
    data.  Shard tables use the ``best_index`` plan so ``points_read``
    charges the index-scan candidates each shard actually touches: shard
    pruning then pays off as a strictly decreasing points-read curve, while
    the answer stays bit-identical (that invariant is the
    :mod:`repro.bench.shardsweep` gate; here we just report the curve).

    ``total_ms`` at ``workers=1`` *rises* with shard count (serial fan-out
    overhead) -- the figure reports it honestly and the regression gate
    treats it with the generous wall-clock thresholds, while the
    points-read curve is gated tightly.
    """
    from repro.core.sharded import ShardedCBCS
    from repro.obs import current as _current_obs
    from repro.storage.sharding import ShardedTable
    from repro.storage.table import DiskTable

    shard_counts = (1, 2, 4, 8)
    n = scaled(4_000, 20_000, 100_000)
    n_queries = scaled(48, 120, 400)
    data = generate("independent", n, ndim, seed=seed)
    queries = list(
        WorkloadGenerator(data, seed=seed + 1).partition_stream(
            n_queries, tenants=8, key_dim=0, concentration=0.12
        )
    )
    rows = []
    metrics = _current_obs().metrics
    for count in shard_counts:
        table = ShardedTable(
            data,
            count,
            mode="range",
            key_dim=0,
            table_factory=lambda rows_: DiskTable(rows_, plan="best_index"),
        )
        engine = ShardedCBCS(
            table, strategy_factory=MaxOverlapSP, obs=_current_obs()
        )
        points = 0
        total_ms = 0.0
        pruned = scanned = 0
        for constraints in queries:
            outcome = engine.query(constraints)
            points += outcome.points_read
            total_ms += outcome.timings.total_ms
            pruned += outcome.shards_pruned
            scanned += outcome.shards_scanned
        hits = engine.pruning_cache.hits
        engine.close()
        mean_ms = total_ms / len(queries)
        rows.append((count, points, mean_ms, pruned, scanned, hits))
        metrics.set_gauge(f"sharding_points_read_{count}", float(points))
        metrics.set_gauge(f"sharding_total_ms_{count}", mean_ms)
    # Leave the widest fleet behind for --obs cache introspection: the
    # cache.json write path resolves it through ``view_for`` into a
    # per-shard FleetCacheView snapshot.
    _current_obs().last_cache = engine
    text = format_table(
        ["shards", "points read", "avg ms", "pruned", "scanned", "plan hits"],
        [
            [count, points, f"{ms:.2f}", pruned, scanned, hits]
            for count, points, ms, pruned, scanned, hits in rows
        ],
        title=(
            f"Shard scale-out (|S|={n}, |D|={ndim}, {n_queries} "
            f"partition-skewed queries, range partitions on dim 0, "
            f"best_index plan)"
        ),
    )
    return FigureReport(
        figure="sharding",
        title="Partition-aware sharding (points read vs shard count)",
        text=text,
        series={
            "points_read": {str(c): p for c, p, *_ in rows},
            "total_ms": {str(c): ms for c, _, ms, *_ in rows},
            "shards_pruned": {str(c): pr for c, _, _, pr, _, _ in rows},
            "shards_scanned": {str(c): sc for c, _, _, _, sc, _ in rows},
        },
    )


def _lazy_ablation(name):
    """Defer the ablations import: that module imports this one for
    :class:`FigureReport`, so eager registration would be circular."""

    def run():
        from repro.bench import ablations

        return getattr(ablations, name)()

    return run


ALL_EXPERIMENTS = {
    "fig5a": lambda: fig5_scalability("independent"),
    "fig5b": lambda: fig5_scalability("correlated"),
    "fig5c": lambda: fig5_scalability("anticorrelated"),
    "fig6": fig6_mpr_vs_ampr,
    "fig7": fig7_dimensionality,
    "fig8": fig8_points_read,
    "fig9a": lambda: fig9_range_queries("interactive"),
    "fig9b": lambda: fig9_range_queries("independent"),
    "fig10": fig10_stage_breakdown,
    "fig11a": lambda: fig11_strategies("interactive"),
    "fig11b": lambda: fig11_strategies("independent"),
    "fig12a": lambda: fig12_real_data("interactive"),
    "fig12b": lambda: fig12_real_data("independent"),
    "warmstart": warmstart_restart,
    "serving": serving_overload,
    "sharding": sharding_scaleout,
}
ALL_EXPERIMENTS.update(
    {
        "ablation-replacement": _lazy_ablation("ablation_replacement"),
        "ablation-multi-item": _lazy_ablation("ablation_multi_item"),
        "ablation-invalidation": _lazy_ablation("ablation_invalidation"),
        "ablation-skyline-algorithm": _lazy_ablation("ablation_skyline_algorithm"),
        "ablation-page-cache": _lazy_ablation("ablation_page_cache"),
        "ablation-cost-strategy": _lazy_ablation("ablation_cost_strategy"),
    }
)
