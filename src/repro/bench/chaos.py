"""Chaos soak: prove availability and correctness under storage faults.

The resilience layer's acceptance test (ISSUE PR 4): a mixed workload over
a :class:`~repro.storage.faults.FaultyDiskTable` must complete with

- zero unhandled exceptions,
- every non-stale answer bit-identical to the reference skyline computed
  directly over the dataset (the ``ampr`` and ``bounding`` ladder rungs are
  degraded but still exact, so they are checked too),
- at least ``min_exact_fraction`` of queries answered above the stale-serve
  rung, and
- circuit-breaker open/half-open/closed transitions observable in the
  exported metrics (exercised by a forced-outage drill after the main
  phase, excluded from the availability accounting).

Everything is seeded: dataset, workload, and fault schedule, so a soak is
replayable bit-for-bit.  Run it via ``python -m repro.bench --chaos N
--faults PROFILE`` or directly::

    from repro.bench.chaos import run_chaos_soak
    report = run_chaos_soak(n_queries=200, profile="default", seed=0)
    print(report.render_text())
    assert report.passed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import scaled
from repro.core.cbcs import RUNG_STALE, RUNG_UNAVAILABLE, CBCS
from repro.data.generator import independent
from repro.skyline.sfs import sfs_skyline
from repro.storage.faults import FaultInjector, FaultyDiskTable, get_profile
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

#: Rungs whose answers may legitimately differ from the reference.
_STALE_RUNGS = (RUNG_STALE, RUNG_UNAVAILABLE)


def _reference_skyline(data: np.ndarray, constraints) -> np.ndarray:
    """The ground-truth constrained skyline, computed without the engine."""
    region = data[constraints.satisfied_mask(data)]
    if len(region) == 0:
        return region
    return region[sfs_skyline(region)]


def _same_multiset(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape:
        return False
    if len(a) == 0:
        return True
    a_sorted = a[np.lexsort(a.T[::-1])]
    b_sorted = b[np.lexsort(b.T[::-1])]
    return bool(np.array_equal(a_sorted, b_sorted))


@dataclass
class ChaosReport:
    """Everything the soak measured, plus the pass/fail verdict inputs."""

    profile: str
    seed: int
    n_queries: int
    unhandled_exceptions: int = 0
    incorrect_answers: int = 0
    exact_answers: int = 0
    stale_serves: int = 0
    retries: int = 0
    rungs: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    breaker_states_seen: List[str] = field(default_factory=list)
    drill_queries: int = 0
    errors: List[str] = field(default_factory=list)
    min_exact_fraction: float = 0.99

    @property
    def exact_fraction(self) -> float:
        """Fraction of main-phase queries answered above the stale rung."""
        if not self.n_queries:
            return 1.0
        return (self.n_queries - self.stale_serves) / self.n_queries

    @property
    def breaker_cycled(self) -> bool:
        """Did the breaker visit open, half-open, and closed states?"""
        return {"open", "half_open", "closed"} <= set(self.breaker_states_seen)

    @property
    def passed(self) -> bool:
        return (
            self.unhandled_exceptions == 0
            and self.incorrect_answers == 0
            and self.exact_fraction >= self.min_exact_fraction
            and (self.drill_queries == 0 or self.breaker_cycled)
        )

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "n_queries": self.n_queries,
            "unhandled_exceptions": self.unhandled_exceptions,
            "incorrect_answers": self.incorrect_answers,
            "exact_answers": self.exact_answers,
            "stale_serves": self.stale_serves,
            "exact_fraction": self.exact_fraction,
            "min_exact_fraction": self.min_exact_fraction,
            "retries": self.retries,
            "rungs": dict(self.rungs),
            "fault_counts": dict(self.fault_counts),
            "breaker_states_seen": list(self.breaker_states_seen),
            "breaker_cycled": self.breaker_cycled,
            "drill_queries": self.drill_queries,
            "errors": list(self.errors),
            "passed": self.passed,
        }

    def render_text(self) -> str:
        lines = [
            f"# chaos soak (profile={self.profile}, seed={self.seed}, "
            f"{self.n_queries} queries)",
            f"unhandled exceptions : {self.unhandled_exceptions}",
            f"incorrect answers    : {self.incorrect_answers}",
            f"exact answers        : {self.exact_answers}",
            f"stale serves         : {self.stale_serves} "
            f"(exact fraction {self.exact_fraction:.1%}, "
            f"floor {self.min_exact_fraction:.0%})",
            f"retries              : {self.retries}",
            f"degraded rungs       : {self.rungs or '{}'}",
            f"faults injected      : {self.fault_counts}",
        ]
        if self.drill_queries:
            lines.append(
                f"breaker drill        : {self.drill_queries} queries, "
                f"states seen {sorted(set(self.breaker_states_seen))} "
                f"({'full cycle' if self.breaker_cycled else 'INCOMPLETE'})"
            )
        for err in self.errors:
            lines.append(f"error: {err}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def run_chaos_soak(
    n_queries: int = 200,
    profile: str = "default",
    seed: int = 0,
    n_points: Optional[int] = None,
    ndim: int = 4,
    obs=None,
    breaker_drill: bool = True,
    min_exact_fraction: float = 0.99,
    workers: int = 1,
) -> ChaosReport:
    """Run the chaos soak and return its :class:`ChaosReport`.

    The main phase runs ``n_queries`` mixed queries (exploratory refinement
    chains plus independent queries) against a resilient CBCS over a
    fault-injecting table, checking every answer above the stale rung
    bit-for-bit against the reference skyline.  The drill phase then forces
    a storage outage long enough to open the circuit breaker, keeps querying
    through cooldown and half-open probing, and verifies the breaker closes
    again -- so all three states show up in the metrics registry.
    """
    fault_profile = get_profile(profile)
    if n_points is None:
        n_points = scaled(2_000, 10_000, 50_000)
    data = independent(n_points, ndim, seed=seed)
    metrics = obs.metrics if obs is not None and obs.enabled else None
    injector = FaultInjector(profile=fault_profile, seed=seed, metrics=metrics)
    table = FaultyDiskTable(DiskTable(data), injector)
    engine = CBCS(table, obs=obs, resilience=True, workers=workers)
    breaker = engine.resilience.breaker

    gen = WorkloadGenerator(data, seed=seed)
    n_exploratory = n_queries // 2
    queries = list(gen.exploratory_stream(n_exploratory))
    queries += list(gen.independent_queries(n_queries - n_exploratory))

    report = ChaosReport(
        profile=fault_profile.name,
        seed=seed,
        n_queries=len(queries),
        min_exact_fraction=min_exact_fraction,
    )
    for i, constraints in enumerate(queries):
        try:
            outcome = engine.query(constraints)
        except Exception as exc:  # the whole point: this must never happen
            report.unhandled_exceptions += 1
            report.errors.append(f"query {i}: {type(exc).__name__}: {exc}")
            continue
        report.retries += outcome.retries
        if outcome.degraded is not None:
            report.rungs[outcome.degraded] = (
                report.rungs.get(outcome.degraded, 0) + 1
            )
        if outcome.degraded in _STALE_RUNGS:
            report.stale_serves += 1
            continue
        reference = _reference_skyline(data, constraints)
        if _same_multiset(np.asarray(outcome.skyline), reference):
            report.exact_answers += 1
        else:
            report.incorrect_answers += 1
            report.errors.append(
                f"query {i}: non-stale answer differs from reference "
                f"({len(outcome.skyline)} vs {len(reference)} points, "
                f"rung={outcome.degraded})"
            )
    report.fault_counts = injector.fault_counts()

    if breaker_drill:
        report.breaker_states_seen.append(breaker.state)
        drill = iter(
            WorkloadGenerator(data, seed=seed + 1).independent_queries(40)
        )

        def drill_query():
            constraints = next(drill)
            try:
                engine.query(constraints)
            except Exception as exc:
                report.unhandled_exceptions += 1
                report.errors.append(
                    f"drill query {report.drill_queries}: "
                    f"{type(exc).__name__}: {exc}"
                )
            report.drill_queries += 1
            report.breaker_states_seen.append(breaker.state)

        # Phase 1: total outage until the breaker trips open.  Rejections in
        # the open state never reach storage, so the outage budget only pays
        # for admitted attempts; a generous budget keeps probes failing too.
        injector.force_outage(10_000)
        for _ in range(20):
            if breaker.state == "open":
                break
            drill_query()
        # Phase 2: storage recovers; keep querying through cooldown and the
        # half-open probes until the breaker closes again.
        injector.clear_outage()
        for _ in range(20):
            if breaker.state == "closed":
                break
            drill_query()
        for transition in breaker.transitions:
            if transition.to_state not in report.breaker_states_seen:
                report.breaker_states_seen.append(transition.to_state)
        if not report.breaker_cycled:
            report.errors.append(
                "breaker drill did not cycle through open/half_open/closed: "
                f"saw {sorted(set(report.breaker_states_seen))}"
            )
    return report
