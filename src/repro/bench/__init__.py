"""Benchmark harness regenerating the paper's evaluation (Section 7).

:mod:`repro.bench.harness` runs a query workload through each method and
aggregates the per-query statistics; :mod:`repro.bench.reporting` prints the
paper-style series.  The ``benchmarks/`` directory at the repository root
contains one pytest-benchmark module per paper figure, all built on this
package, and ``python -m repro.bench`` regenerates every figure's numbers as
text tables (see EXPERIMENTS.md).
"""

from repro.bench.harness import (
    MethodResult,
    bench_scale,
    make_cbcs,
    run_independent_workload,
    run_interactive_workload,
    summarize,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "MethodResult",
    "bench_scale",
    "format_series",
    "format_table",
    "make_cbcs",
    "run_independent_workload",
    "run_interactive_workload",
    "summarize",
]
