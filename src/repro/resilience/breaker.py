"""A circuit breaker for the simulated disk path.

States follow the classic ladder: **closed** (normal; consecutive
operation failures are counted) -> **open** (every call rejected without
touching storage) -> **half-open** (a limited number of probe calls are let
through) -> closed again on enough probe successes, or back to open on a
probe failure.

Because the whole engine runs on simulated time, the open-state cooldown is
measured in *rejected calls* rather than wall-clock seconds: after
``cooldown_calls`` rejections the breaker moves to half-open.  This keeps
breaker behaviour bit-deterministic for a given workload, which the chaos
soak's replay checks rely on.

Every transition is mirrored into the bound metrics registry as a
``breaker_transitions_total{breaker=...,from_state=...,to_state=...}``
counter plus a ``breaker_state`` gauge (0 closed, 1 half-open, 2 open), so
open/half-open/closed flips are observable in ``--obs`` exports.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.resilience.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of each state.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class Transition:
    """One recorded state change (after how many protected calls)."""

    calls: int
    from_state: str
    to_state: str


class CircuitBreaker:
    """Count-based circuit breaker guarding one downstream dependency.

    ``failure_threshold`` consecutive *operation* failures (an operation is
    one retried unit of work, not one attempt) open the circuit;
    ``cooldown_calls`` rejections later it half-opens and admits probes;
    ``probe_successes`` consecutive good probes close it again.
    """

    def __init__(
        self,
        name: str = "disk",
        failure_threshold: int = 5,
        cooldown_calls: int = 10,
        probe_successes: int = 2,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_calls < 1:
            raise ValueError("cooldown_calls must be at least 1")
        if probe_successes < 1:
            raise ValueError("probe_successes must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.probe_successes = probe_successes
        self.state = CLOSED
        self.calls = 0
        self.transitions: List[Transition] = []
        self._consecutive_failures = 0
        self._rejected_in_open = 0
        self._probe_streak = 0
        # allow()/record_*() interleave from concurrent executor workers;
        # reentrant so _transition's metric mirroring nests safely.
        self._lock = threading.RLock()
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.metrics.set_gauge("breaker_state", STATE_CODES[self.state], breaker=name)

    def bind_metrics(self, metrics: Optional[MetricsRegistry]) -> "CircuitBreaker":
        """Attach (or detach, with None) a shared metrics registry."""
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.metrics.set_gauge(
            "breaker_state", STATE_CODES[self.state], breaker=self.name
        )
        return self

    # ------------------------------------------------------------------
    # Protocol: allow() before the operation, then record_*() once.
    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Admit or reject the next operation; raises :class:`CircuitOpenError`
        when the circuit is open (counting the rejection toward cooldown)."""
        with self._lock:
            self.calls += 1
            if self.state == OPEN:
                self._rejected_in_open += 1
                if self._rejected_in_open >= self.cooldown_calls:
                    self._transition(HALF_OPEN)
                    return  # this call becomes the first probe
                raise CircuitOpenError(
                    f"breaker {self.name!r} is open "
                    f"({self._rejected_in_open}/{self.cooldown_calls} "
                    f"cooldown calls)"
                )

    def record_success(self) -> None:
        """Report that the admitted operation succeeded."""
        with self._lock:
            if self.state == HALF_OPEN:
                self._probe_streak += 1
                if self._probe_streak >= self.probe_successes:
                    self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report that the admitted operation failed (retries included)."""
        with self._lock:
            if self.state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self.state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old = self.state
        self.state = new_state
        self.transitions.append(Transition(self.calls, old, new_state))
        if new_state == OPEN:
            self._rejected_in_open = 0
            self._probe_streak = 0
        elif new_state == HALF_OPEN:
            self._probe_streak = 0
        else:  # CLOSED
            self._consecutive_failures = 0
        self.metrics.inc(
            "breaker_transitions_total",
            breaker=self.name,
            from_state=old,
            to_state=new_state,
        )
        self.metrics.set_gauge(
            "breaker_state", STATE_CODES[new_state], breaker=self.name
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )
