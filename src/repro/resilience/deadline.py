"""Per-request deadline budgets for overload-safe serving.

A :class:`Deadline` bounds how long one query may take end to end --
queueing, retries, and storage fetches included.  It tracks two costs:

- **wall-clock time** since the deadline was armed (so a request stuck in
  the ingress queue burns budget even before it executes), and
- **charged simulated milliseconds** -- the same simulated I/O and backoff
  delays the storage layer and retry loop account for instead of sleeping.

Both count against the same budget, mirroring how the bench charges
simulated disk time on top of real CPU time.  When the budget runs out the
next check raises :class:`~repro.resilience.errors.DeadlineExceeded`, which
is deliberately neither retryable nor degradable: the degradation ladder
catches it explicitly and jumps straight to the cheapest remaining rung
(stale-serve) instead of descending through more expensive fallbacks that
cannot finish in time either.

A deadline never cancels completed work: an answer that finishes just past
its budget is still returned.  The guarantee is *no silent hang*, not
*no late answer*.
"""

from __future__ import annotations

import time
import threading
from typing import Optional, Union

from repro.resilience.errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """A per-request time budget in milliseconds.

    ``elapsed_ms`` is real wall-clock time since construction plus any
    simulated milliseconds charged via :meth:`charge`.  Thread-safe: one
    deadline may be shared by several executor lanes fetching boxes of the
    same query concurrently.
    """

    __slots__ = ("budget_ms", "_t0", "_charged_ms", "_lock", "_clock")

    def __init__(self, budget_ms: float, clock=time.perf_counter):
        if budget_ms <= 0:
            raise ValueError("deadline budget_ms must be positive")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._t0 = clock()
        self._charged_ms = 0.0
        self._lock = threading.Lock()

    @classmethod
    def normalize(
        cls, value: Union["Deadline", float, int, None]
    ) -> Optional["Deadline"]:
        """None -> None, a number -> a fresh deadline armed now, a
        :class:`Deadline` -> itself (already running)."""
        if value is None:
            return None
        if isinstance(value, Deadline):
            return value
        if isinstance(value, (int, float)):
            return cls(float(value))
        raise TypeError(
            f"deadline must be None, a number of ms, or a Deadline, "
            f"got {type(value)!r}"
        )

    def charge(self, ms: float) -> None:
        """Charge ``ms`` simulated milliseconds (I/O or backoff) to the
        budget.  Never raises; expiry surfaces at the next :meth:`check`."""
        if ms <= 0:
            return
        with self._lock:
            self._charged_ms += ms

    @property
    def charged_ms(self) -> float:
        with self._lock:
            return self._charged_ms

    @property
    def elapsed_ms(self) -> float:
        wall = (self._clock() - self._t0) * 1000.0
        with self._lock:
            return wall + self._charged_ms

    @property
    def remaining_ms(self) -> float:
        return max(0.0, self.budget_ms - self.elapsed_ms)

    @property
    def expired(self) -> bool:
        return self.elapsed_ms >= self.budget_ms

    def check(self, op: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed_ms
        if elapsed >= self.budget_ms:
            where = f" during {op}" if op else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:.1f}ms exceeded{where} "
                f"({elapsed:.1f}ms elapsed, {self.charged_ms:.1f}ms of it "
                f"simulated I/O/backoff)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_ms={self.budget_ms:.1f}, "
            f"elapsed_ms={self.elapsed_ms:.1f})"
        )
