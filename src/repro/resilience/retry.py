"""Retry with capped exponential backoff, deterministic jitter, and a
per-query deadline budget.

Backoff delays are *simulated*, not slept: each retry charges its delay to
the query's :class:`RetryState` budget (mirroring how the storage layer
charges simulated I/O milliseconds instead of spinning real disks), so
tests and chaos soaks run at CPU speed and remain bit-deterministic.

Jitter is deterministic too: instead of a PRNG, the delay for attempt ``a``
of operation token ``t`` is spread by an integer hash of ``(t, a)``.  Two
runs of the same workload therefore retry on the same schedule, which keeps
the chaos soak's fault replay exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS
from repro.resilience.errors import RETRYABLE, DeadlineExceeded, RetriesExhausted


def _mix(token: int, attempt: int) -> int:
    """SplitMix64-style integer hash for deterministic jitter."""
    x = (token * 0x9E3779B97F4A7C15 + attempt * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
    return x ^ (x >> 31)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a per-query deadline budget.

    ``deadline_ms`` bounds the *total* simulated backoff a single query may
    accumulate across all its operations; once spent, further failures stop
    retrying and surface as :class:`RetriesExhausted` (the degradation
    ladder's cue).
    """

    max_attempts: int = 4
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    max_delay_ms: float = 50.0
    jitter: float = 0.5  # spread as a fraction of the raw delay
    deadline_ms: float = 500.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0 or self.deadline_ms < 0:
            raise ValueError("delays and deadline must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, attempt: int, token: int = 0) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        raw = min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** max(attempt - 1, 0),
        )
        if self.jitter == 0.0:
            return raw
        fraction = (_mix(token, attempt) % 10_000) / 9_999.0
        return raw * (1.0 - self.jitter / 2.0 + self.jitter * fraction)


class RetryState:
    """Per-query accumulator: retries taken and backoff budget spent.

    ``deadline`` (a :class:`~repro.resilience.deadline.Deadline`, optional)
    is the request's end-to-end budget; every simulated backoff delay spent
    here is also charged against it, and the retry loop stops retrying the
    moment it expires.
    """

    def __init__(self, policy: RetryPolicy, deadline=None):
        self.policy = policy
        self.deadline = deadline
        self.retries = 0
        self.spent_ms = 0.0
        self._token = 0
        # One retry budget may be drawn on by several executor workers
        # retrying different boxes of the same query concurrently.
        self._lock = threading.Lock()

    @property
    def remaining_ms(self) -> float:
        return max(0.0, self.policy.deadline_ms - self.spent_ms)

    def next_token(self) -> int:
        """A fresh per-operation jitter token within this query."""
        with self._lock:
            self._token += 1
            return self._token

    def try_spend(self, delay_ms: float) -> bool:
        """Atomically charge one backoff delay to the budget.

        Returns False (leaving the budget untouched) when the charge would
        exceed the deadline -- the caller's cue to stop retrying.
        """
        with self._lock:
            if self.spent_ms + delay_ms > self.policy.deadline_ms:
                return False
            self.spent_ms += delay_ms
            self.retries += 1
        if self.deadline is not None:
            self.deadline.charge(delay_ms)
        return True


def call_with_retry(fn, state: RetryState, metrics=None, op: str = "fetch"):
    """Run ``fn`` with the state's retry policy; return its result.

    Retries on :data:`~repro.resilience.errors.RETRYABLE` errors, charging
    each deterministic backoff delay to the query budget.  Raises
    :class:`RetriesExhausted` (chaining the last error) once attempts or
    budget run out; non-retryable exceptions propagate unchanged.

    When the state carries a per-request deadline that expires mid-retry,
    the loop raises :class:`DeadlineExceeded` instead of burning further
    attempts -- the ladder's cue to stop descending and serve the best
    answer it already has.
    """
    metrics = NULL_METRICS if metrics is None else metrics
    policy = state.policy
    token = state.next_token()
    attempt = 1
    while True:
        try:
            return fn()
        except RETRYABLE as exc:
            if state.deadline is not None and state.deadline.expired:
                metrics.inc("deadline_exceeded_total", op=op)
                raise DeadlineExceeded(
                    f"{op} abandoned mid-retry: per-request deadline of "
                    f"{state.deadline.budget_ms:.1f}ms exceeded after "
                    f"attempt {attempt}"
                ) from exc
            if attempt >= policy.max_attempts:
                raise RetriesExhausted(
                    f"{op} failed after {attempt} attempts"
                ) from exc
            delay = policy.backoff_ms(attempt, token)
            if not state.try_spend(delay):
                raise RetriesExhausted(
                    f"{op} abandoned: deadline budget exhausted "
                    f"({state.spent_ms:.1f}ms of {policy.deadline_ms:.1f}ms spent)"
                ) from exc
            metrics.inc("storage_retries_total", op=op)
            metrics.observe("retry_backoff_ms", delay, op=op)
            attempt += 1
