"""Error types of the resilience layer.

The class hierarchy encodes the retry contract:

- :class:`repro.storage.faults.TransientStorageError` (an ``IOError``) and
  any other ``OSError`` are *retryable*: a later attempt may succeed.
- :class:`CorruptResultError` marks a fetched
  :class:`~repro.storage.table.RangeResult` that failed integrity
  validation (truncated payload, non-finite values); it subclasses the
  transient error because a re-read of healthy storage returns clean data.
- :class:`RetriesExhausted` and :class:`CircuitOpenError` are the two ways
  an operation gives up; both trigger the CBCS degradation ladder and are
  never allowed to escape :meth:`repro.core.cbcs.CBCS.query`.
"""

from __future__ import annotations

from repro.storage.faults import TransientStorageError


class CorruptResultError(TransientStorageError):
    """A fetched range result failed integrity validation."""


class RetriesExhausted(RuntimeError):
    """An operation kept failing past the retry policy's attempt/deadline
    budget; the last underlying error is chained as ``__cause__``."""


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open: the operation was rejected without
    touching storage."""


class DeadlineExceeded(RuntimeError):
    """A per-request deadline budget ran out before the query finished.

    Deliberately *not* retryable and *not* degradable: retrying or
    descending further down the ladder cannot finish inside the deadline
    either.  The ladder catches it explicitly and jumps straight to the
    stale-serve rung; if even that has nothing cached, the exception
    surfaces to the serving layer, which turns it into a typed
    ``deadline_exceeded`` outcome -- never a silent hang, never a partial
    unflagged result.
    """


#: Exceptions the retry loop treats as retryable.
RETRYABLE = (TransientStorageError, OSError)

#: Exceptions that push a query onto the degradation ladder.
DEGRADABLE = (RetriesExhausted, CircuitOpenError, TransientStorageError, OSError)
