"""Fault tolerance for the CBCS engine: retries, circuit breaking,
degradation, and cache self-healing.

A semantic cache fails differently from a page cache: a corrupt cached
skyline silently breaks *every* overlapping query that prunes with it, not
just the query that stored it.  This package therefore combines four
defences, wired into :class:`repro.core.cbcs.CBCS` via the ``resilience``
parameter:

- :class:`~repro.resilience.retry.RetryPolicy` -- capped exponential
  backoff with deterministic jitter and a per-query deadline budget;
- :class:`~repro.resilience.breaker.CircuitBreaker` -- guards the disk
  path; state transitions are mirrored into the metrics registry;
- result validation (:func:`~repro.resilience.validate.validate_range_result`)
  -- turns silent short reads and NaN corruption into retryable errors;
- the CBCS degradation ladder -- on exhausted retries a query falls from
  its exact plan to an aMPR re-plan, then a single bounding range query,
  then serving the best-overlap cached skyline flagged ``stale=True``;
  never an unhandled exception, never an unflagged wrong answer.

The cache side of self-healing lives in
:meth:`repro.core.cache.SkylineCache.verify_item` /
:meth:`~repro.core.cache.SkylineCache.quarantine`.

Usage::

    from repro.resilience import Resilience
    engine = CBCS(FaultyDiskTable(table, injector), resilience=Resilience())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.errors import (  # noqa: F401  (re-exported)
    DEGRADABLE,
    RETRYABLE,
    CircuitOpenError,
    CorruptResultError,
    DeadlineExceeded,
    RetriesExhausted,
)
from repro.resilience.retry import RetryPolicy, RetryState, call_with_retry
from repro.resilience.validate import validate_range_result

__all__ = [
    "Resilience",
    "RetryPolicy",
    "RetryState",
    "call_with_retry",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorruptResultError",
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "RETRYABLE",
    "DEGRADABLE",
    "validate_range_result",
]


@dataclass
class Resilience:
    """Bundle of fault-tolerance collaborators for one CBCS engine.

    ``verify_cache`` enables self-healing verification: cache items are
    invariant-checked before CBCS prunes with them and after any insert on
    a path that saw faults, with violators quarantined.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    verify_cache: bool = True

    def bind_metrics(self, metrics) -> "Resilience":
        """Mirror breaker state (and future collaborators) into ``metrics``."""
        self.breaker.bind_metrics(metrics)
        return self

    def new_state(self, deadline=None) -> RetryState:
        """A fresh per-query retry budget, optionally bound to a
        per-request :class:`~repro.resilience.deadline.Deadline`."""
        return RetryState(self.policy, deadline=deadline)


def resolve_resilience(resilience) -> Optional[Resilience]:
    """Normalize a CBCS ``resilience`` argument: None/False -> disabled,
    True -> defaults, a :class:`Resilience` -> itself."""
    if resilience is None or resilience is False:
        return None
    if resilience is True:
        return Resilience()
    if isinstance(resilience, Resilience):
        return resilience
    raise TypeError(
        f"resilience must be None, bool, or Resilience, got {type(resilience)!r}"
    )
