"""Integrity validation of fetched range results.

Storage faults that do not raise -- short reads and bit rot -- must be
*detected* or they silently poison every downstream skyline.  A healthy
:class:`~repro.storage.table.RangeResult` satisfies two invariants that the
faulty paths in :mod:`repro.storage.faults` break in exactly the ways real
short reads and corruption do:

1. ``len(points) == len(rowids)`` (the payload matches the row-id header);
2. every coordinate is finite.

Validation failures raise :class:`~repro.resilience.errors.CorruptResultError`,
which the retry loop treats like any transient storage error: re-read and,
on healthy storage, get clean data.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.errors import CorruptResultError


def validate_range_result(result) -> None:
    """Raise :class:`CorruptResultError` if ``result`` fails integrity checks."""
    points = result.points
    if points.ndim != 2:
        raise CorruptResultError(
            f"malformed range result: points array is {points.ndim}-D"
        )
    if len(points) != len(result.rowids):
        raise CorruptResultError(
            f"truncated range result: {len(points)} points for "
            f"{len(result.rowids)} row ids"
        )
    if len(points) and not np.isfinite(points).all():
        raise CorruptResultError("corrupt range result: non-finite coordinates")
