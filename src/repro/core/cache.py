"""The in-memory constrained-skyline cache (paper Definition 3, Section 6).

Each cache item is the paper's 3-tuple ``<Sky(S,C), MBR, C>``: the result of
an earlier query, the minimum bounding rectangle of that result, and the
constraints that produced it.  The cache is "organized by an R*-tree
indexing the MBR of each cached skyline"; a lookup for new constraints
``C'`` returns every item whose MBR intersects ``R_C'``.

Cache replacement (Section 6.2) is "supported by insertion and use counters
on the R* tree": this module implements LRU (least recently used) and LCU
(least commonly used) eviction over a configurable capacity.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional

import numpy as np

from repro.geometry.constraints import Constraints
from repro.index.rtree import RTree
from repro.ioutil import atomic_savez
from repro.obs.correlate import current_query_id
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

ReplacementPolicy = Literal["lru", "lcu"]


class CorruptCacheError(ValueError):
    """A persisted cache archive failed integrity validation on load.

    Sibling of :class:`repro.storage.table.CorruptTableError`: loading a
    bit-flipped cache snapshot must raise, never silently hand back garbage
    skylines that would poison every query pruning with them.
    """


def _cache_checksum(arrays: Dict[str, np.ndarray]) -> int:
    """CRC32 over every payload array, in sorted-key order."""
    crc = 0
    for key in sorted(arrays):
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(arrays[key]).tobytes(), crc)
    return crc


@dataclass(eq=False)  # identity semantics: items are unique live objects
class CacheItem:
    """One cached constrained-skyline result: ``<Sky(S,C), MBR, C>``."""

    constraints: Constraints
    skyline: np.ndarray
    mbr_lo: np.ndarray
    mbr_hi: np.ndarray
    item_id: int
    inserted_at: int
    last_used: int = 0
    use_count: int = 0
    #: uses broken down by the overlap case that reused this item (cases
    #: a-d / ``exact``; plain touches without a case land under None) --
    #: cache-introspection evidence for :mod:`repro.obs.cacheview`
    case_uses: Dict[Optional[str], int] = field(default_factory=dict)

    @property
    def skyline_size(self) -> int:
        return len(self.skyline)

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the cached skyline payload."""
        return int(self.skyline.nbytes)

    def __repr__(self) -> str:
        return (
            f"CacheItem(id={self.item_id}, |sky|={self.skyline_size}, "
            f"C={self.constraints!r})"
        )


class SkylineCache:
    """An in-memory cache of constrained skylines with an R*-tree MBR index."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        policy: ReplacementPolicy = "lru",
        rtree_max_entries: int = 16,
        metrics: Optional[MetricsRegistry] = None,
        backend=None,
        quarantine_log_cap: int = 64,
    ):
        """``capacity`` of None means unbounded (the paper's experiments
        never evict; replacement is exercised by our extension tests).
        ``metrics`` optionally mirrors the hit/miss/eviction counters into a
        shared :class:`~repro.obs.metrics.MetricsRegistry`.

        ``backend`` selects the persistence backend (see
        :mod:`repro.core.cache_backend`): the default None is the in-memory
        backend -- bit-identical to a backend-less cache -- while a
        :class:`~repro.core.cache_backend.DiskCacheBackend` journals every
        mutation to a WAL, checkpoints periodic snapshots, and *restores*
        any persisted state into this cache right here in the constructor
        (warm restart).

        ``quarantine_log_cap`` bounds the quarantine ring buffer; events
        beyond the cap drop the oldest entry and count into
        ``quarantine_log_dropped`` / the
        ``cache_quarantine_log_dropped_total`` metric, so a pathological
        fault profile cannot grow memory without bound.
        """
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        if policy not in ("lru", "lcu"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        if quarantine_log_cap < 1:
            raise ValueError("quarantine_log_cap must be positive")
        self.capacity = capacity
        self.policy: ReplacementPolicy = policy
        self._rtree_max_entries = rtree_max_entries
        # Reentrant: verify_and_heal -> quarantine -> _rebuild_index all
        # nest under one acquisition.  Shared by every engine/service worker
        # querying through this cache concurrently.
        self._lock = threading.RLock()
        self._items: dict[int, CacheItem] = {}
        self._by_constraints: dict[tuple, int] = {}
        self._index: Optional[RTree] = None
        self._clock = itertools.count(1)
        self._id_counter = itertools.count(1)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0
        self.refreshes = 0
        self.quarantined = 0
        #: most recent quarantine events (item id, reason, correlated query
        #: id when one was bound) -- surfaced by :mod:`repro.obs.cacheview`
        self.quarantine_log: deque = deque(maxlen=quarantine_log_cap)
        #: events evicted from the ring buffer by newer ones
        self.quarantine_log_dropped = 0
        self.metrics = NULL_METRICS if metrics is None else metrics
        if backend is None:
            from repro.core.cache_backend import MemoryCacheBackend

            backend = MemoryCacheBackend()
        self.backend = backend
        backend.attach(self)

    def bind_metrics(self, metrics: Optional[MetricsRegistry]) -> "SkylineCache":
        """Attach (or detach, with None) a shared metrics registry."""
        self.metrics = NULL_METRICS if metrics is None else metrics
        return self

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, constraints: Constraints, skyline: np.ndarray) -> Optional[CacheItem]:
        """Cache a query result; returns the item, or None if not cacheable.

        Empty skylines are not cached: they have no MBR to index and no
        points to prune with.  Re-inserting identical constraints refreshes
        the existing item: if the newly computed skyline differs (the data
        changed, or the stored copy rotted), the stored skyline and MBR are
        replaced and the R*-tree entry reindexed, so re-answered queries can
        never resurrect a stale entry.
        """
        skyline = np.asarray(skyline, dtype=float)
        if len(skyline) == 0:
            return None
        if skyline.ndim != 2 or skyline.shape[1] != constraints.ndim:
            raise ValueError("skyline must be a (k, d) array matching constraints")

        with self._lock:
            existing_id = self._by_constraints.get(constraints.key())
            if existing_id is not None:
                item = self._items[existing_id]
                if not np.array_equal(item.skyline, skyline):
                    self._reindex(item, skyline)
                    self.refreshes += 1
                    self.metrics.inc("cache_refreshes_total")
                    self.backend.record_put(item)
                self.touch(item)
                return item

            item = CacheItem(
                constraints=constraints,
                skyline=skyline.copy(),
                mbr_lo=skyline.min(axis=0),
                mbr_hi=skyline.max(axis=0),
                item_id=next(self._id_counter),
                inserted_at=next(self._clock),
            )
            item.last_used = item.inserted_at
            if self._index is None:
                self._index = RTree(
                    constraints.ndim, max_entries=self._rtree_max_entries
                )
            self._items[item.item_id] = item
            self._by_constraints[constraints.key()] = item.item_id
            self._index.insert(item.mbr_lo, item.mbr_hi, item.item_id)
            self.insertions += 1
            self.metrics.inc("cache_insertions_total")
            self.backend.record_put(item)
            self._evict_if_needed()
            self.metrics.set_gauge("cache_items", len(self._items))
            return item

    def remove(self, item: CacheItem) -> None:
        """Drop one item (used by dynamic-data maintenance, Section 6.2)."""
        with self._lock:
            if item.item_id in self._items:
                self._remove(item)

    def replace_skyline(self, item: CacheItem, skyline: np.ndarray) -> Optional[CacheItem]:
        """Swap an item's skyline (and MBR) after a data update, keeping its
        constraints; returns the refreshed item (use counters carry over)."""
        skyline = np.asarray(skyline, dtype=float)
        with self._lock:
            self.remove(item)
            refreshed = self.insert(item.constraints, skyline)
            if refreshed is not None:
                refreshed.use_count = item.use_count
                refreshed.last_used = item.last_used
                # Re-journal with the carried-over counters so a warm
                # restart restores the same LRU/LCU ordering.
                self.backend.record_put(refreshed)
            return refreshed

    def touch(self, item: CacheItem, case: Optional[str] = None) -> None:
        """Record a use of ``item`` (feeds the LRU/LCU counters).

        ``case`` optionally attributes the use to the overlap case that
        reused the item (cases a-d / ``exact``), feeding the per-case hit
        breakdown that :mod:`repro.obs.cacheview` reports.
        """
        with self._lock:
            item.last_used = next(self._clock)
            item.use_count += 1
            if case is not None:
                item.case_uses[case] = item.case_uses.get(case, 0) + 1

    def _reindex(self, item: CacheItem, skyline: np.ndarray) -> None:
        """Swap ``item``'s skyline/MBR in place and refresh its index entry."""
        removed = self._index.delete(item.mbr_lo, item.mbr_hi, item.item_id)
        item.skyline = skyline.copy()
        item.mbr_lo = skyline.min(axis=0)
        item.mbr_hi = skyline.max(axis=0)
        if removed:
            self._index.insert(item.mbr_lo, item.mbr_hi, item.item_id)
        else:
            # Index entry not where the item's MBR said: heal by rebuild.
            self._rebuild_index()

    def clear(self) -> None:
        """Drop every item."""
        with self._lock:
            self._items.clear()
            self._by_constraints.clear()
            self._index = None
            self.backend.record_clear()
        self.metrics.set_gauge("cache_items", 0)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidates(self, query: Constraints, record: bool = True) -> List[CacheItem]:
        """Return all items whose skyline MBR intersects ``R_C'``.

        This is the paper's cache search: "we perform a search on the
        R*-tree fetching all cache items where R_C' intersects MBR != empty"
        (Section 6).  Hit/miss counters are updated unless ``record`` is
        False (used by dry-run paths such as :meth:`repro.core.cbcs.CBCS.explain`).
        """
        with self._lock:
            if self._index is None or len(self._items) == 0:
                items: List[CacheItem] = []
            else:
                ids = self._index.search(query.lo, query.hi)
                items = [self._items[i] for i in ids]
        if record:
            if items:
                self.hits += 1
                self.metrics.inc("cache_hits_total")
            else:
                self.misses += 1
                self.metrics.inc("cache_misses_total")
        return items

    def exact_match(self, query: Constraints) -> Optional[CacheItem]:
        """Return the item cached under exactly these constraints, if any."""
        with self._lock:
            item_id = self._by_constraints.get(query.key())
            return self._items.get(item_id) if item_id is not None else None

    # ------------------------------------------------------------------
    # Self-healing (invariant verification and quarantine)
    # ------------------------------------------------------------------
    def verify_item(self, item: CacheItem, sample: int = 16) -> List[str]:
        """Check ``item``'s invariants; return violation slugs (empty = ok).

        A cached skyline that violates any of these would poison every
        later query pruning with it (a wrong dominance region suppresses
        points that belong in the answer):

        - ``malformed``: not a non-empty ``(k, d)`` array matching the
          item's constraints;
        - ``non-finite``: NaN/inf coordinates (bit rot);
        - ``mbr-mismatch``: stored MBR differs from the skyline's true
          bounding box (would mis-route R*-tree lookups);
        - ``out-of-constraints``: a point outside the item's own region;
        - ``dominated``: a sampled point dominated by another cached point
          (skyline-minimality spot check on ``sample`` evenly spaced rows).
        """
        sky = item.skyline
        if (
            not isinstance(sky, np.ndarray)
            or sky.ndim != 2
            or len(sky) == 0
            or sky.shape[1] != item.constraints.ndim
        ):
            return ["malformed"]
        problems: List[str] = []
        if not np.isfinite(sky).all():
            return ["non-finite"]
        if not (
            np.array_equal(item.mbr_lo, sky.min(axis=0))
            and np.array_equal(item.mbr_hi, sky.max(axis=0))
        ):
            problems.append("mbr-mismatch")
        if not item.constraints.satisfied_mask(sky).all():
            problems.append("out-of-constraints")
        probe = (
            np.arange(len(sky))
            if len(sky) <= sample
            else np.linspace(0, len(sky) - 1, sample).astype(int)
        )
        for i in probe:
            le = np.all(sky <= sky[i], axis=1)
            lt = np.any(sky < sky[i], axis=1)
            if np.any(le & lt):
                problems.append("dominated")
                break
        return problems

    def quarantine(self, item: CacheItem, reason: str = "invariant-violation") -> None:
        """Evict a corrupt item, counting it separately from replacement.

        Unlike :meth:`_remove`, quarantine tolerates an index that is out of
        sync with the item (a corrupt MBR cannot locate its own R*-tree
        entry): the index is rebuilt from the surviving items instead.
        """
        with self._lock:
            if item.item_id not in self._items:
                return
            del self._items[item.item_id]
            self._by_constraints.pop(item.constraints.key(), None)
            removed = (
                self._index.delete(item.mbr_lo, item.mbr_hi, item.item_id)
                if self._index is not None
                else False
            )
            if not removed:
                self._rebuild_index()
            self.quarantined += 1
            if len(self.quarantine_log) == self.quarantine_log.maxlen:
                # Ring buffer full: the append below evicts the oldest
                # event.  Count the drop so introspection can say the log
                # is a window, not the full history.
                self.quarantine_log_dropped += 1
                self.metrics.inc("cache_quarantine_log_dropped_total")
            self.quarantine_log.append(
                {
                    "item_id": item.item_id,
                    "reason": reason,
                    "query_id": current_query_id(),
                }
            )
            self.backend.record_del(item)
        self.metrics.inc("cache_quarantined_total", reason=reason)
        self.metrics.set_gauge("cache_items", len(self._items))

    def verify_and_heal(self, item: CacheItem, sample: int = 16) -> bool:
        """Verify ``item``; quarantine it on violation.  True = healthy."""
        with self._lock:
            problems = self.verify_item(item, sample=sample)
            if not problems:
                return True
            self.quarantine(item, reason=problems[0])
            return False

    def _rebuild_index(self) -> None:
        """Reconstruct the R*-tree from the live items (self-healing)."""
        self._index = None
        for item in self._items.values():
            if self._index is None:
                self._index = RTree(
                    item.constraints.ndim, max_entries=self._rtree_max_entries
                )
            self._index.insert(item.mbr_lo, item.mbr_hi, item.item_id)

    def stats(self) -> dict:
        """Summary of the cache's bookkeeping counters.

        ``hit_rate`` is hits over recorded lookups (0.0 before any lookup);
        the same numbers flow into the bound metrics registry as
        ``cache_hits_total`` / ``cache_misses_total`` /
        ``cache_evictions_total`` / ``cache_insertions_total`` and the
        ``cache_items`` gauge.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "items": len(self._items),
            "capacity": self.capacity,
            "policy": self.policy,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "refreshes": self.refreshes,
            "quarantined": self.quarantined,
            "quarantine_log_dropped": self.quarantine_log_dropped,
        }

    def checkpoint(self) -> None:
        """Ask the backend to snapshot now (no-op for the memory backend)."""
        self.backend.checkpoint()

    def close(self) -> None:
        """Flush and close the persistence backend (memory backend: no-op)."""
        self.backend.close()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        with self._lock:
            return iter(list(self._items.values()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """The archive payload for :meth:`save` (caller holds no lock)."""
        with self._lock:
            arrays = {
                "n_items": np.array(len(self._items)),
                "capacity": np.array(
                    self.capacity if self.capacity is not None else -1
                ),
                "policy": np.array(self.policy),
            }
            for i, item in enumerate(
                sorted(self._items.values(), key=lambda it: it.item_id)
            ):
                arrays[f"lo_{i}"] = np.asarray(item.constraints.lo)
                arrays[f"hi_{i}"] = np.asarray(item.constraints.hi)
                arrays[f"sky_{i}"] = item.skyline
                arrays[f"meta_{i}"] = np.array(
                    [item.inserted_at, item.last_used, item.use_count]
                )
        return arrays

    def save(self, path, crashpoint=None) -> None:
        """Save every cached item (constraints, skyline, use counters) to
        ``.npz`` so a service can restart with a warm semantic cache.

        The archive carries a CRC32 checksum over the payload (validated by
        :meth:`load`) and is written atomically (temp file + rename), so a
        crash mid-save leaves the previous snapshot intact and a
        bit-flipped snapshot is rejected instead of silently loaded.
        """
        arrays = self._snapshot_arrays()
        arrays["checksum"] = np.array(_cache_checksum(arrays), dtype=np.uint32)
        atomic_savez(path, crashpoint=crashpoint, point="cache.snapshot", **arrays)

    @staticmethod
    def _validated_archive_items(archive, path):
        """Yield ``(constraints, skyline, meta)`` after integrity checks."""
        for key in ("n_items", "capacity", "policy"):
            if key not in archive.files:
                raise CorruptCacheError(
                    f"cache archive {path} is missing required key {key!r}"
                )
        if "checksum" in archive.files:
            payload = {
                key: np.asarray(archive[key])
                for key in archive.files
                if key != "checksum"
            }
            stored = int(archive["checksum"])
            actual = _cache_checksum(payload)
            if stored != actual:
                raise CorruptCacheError(
                    f"cache archive {path}: checksum mismatch "
                    f"(stored {stored:#010x}, computed {actual:#010x})"
                )
        for i in range(int(archive["n_items"])):
            for key in (f"lo_{i}", f"hi_{i}", f"sky_{i}", f"meta_{i}"):
                if key not in archive.files:
                    raise CorruptCacheError(
                        f"cache archive {path} is missing item key {key!r}"
                    )
            sky = np.asarray(archive[f"sky_{i}"])
            if sky.ndim != 2 or not np.isfinite(sky).all():
                raise CorruptCacheError(
                    f"cache archive {path}: item {i} has a malformed or "
                    "non-finite skyline"
                )
            yield (
                Constraints(archive[f"lo_{i}"], archive[f"hi_{i}"]),
                sky,
                archive[f"meta_{i}"],
            )

    def load_into(self, path) -> int:
        """Merge a saved archive's items into this cache; returns #loaded.

        Used by the persistent backend's warm restart; raises
        :class:`CorruptCacheError` on any integrity failure *before*
        mutating the cache.
        """
        try:
            with np.load(path, allow_pickle=False) as archive:
                loaded = list(self._validated_archive_items(archive, path))
        except Exception as exc:
            # A flipped byte in the zip container can surface almost any
            # stdlib exception type (BadZipFile, zlib.error, EOFError,
            # NotImplementedError, ...); any parse failure IS corruption.
            if isinstance(exc, CorruptCacheError):
                raise
            raise CorruptCacheError(
                f"cache archive {path} is unreadable: {exc}"
            ) from exc
        for constraints, sky, meta in loaded:
            item = self.insert(constraints, sky)
            inserted_at, last_used, use_count = meta
            item.inserted_at = int(inserted_at)
            item.last_used = int(last_used)
            item.use_count = int(use_count)
        return len(loaded)

    @classmethod
    def load(cls, path) -> "SkylineCache":
        """Load a cache saved with :meth:`save`.

        Raises :class:`CorruptCacheError` when the archive is unreadable,
        missing keys, carries malformed skylines, or fails its stored
        checksum.  Archives written before checksums existed (no
        ``checksum`` key) are accepted after the structural checks.
        """
        try:
            with np.load(path, allow_pickle=False) as archive:
                capacity = int(archive["capacity"])
                cache = cls(
                    capacity=None if capacity < 0 else capacity,
                    policy=str(archive["policy"]),
                )
                for constraints, sky, meta in cls._validated_archive_items(
                    archive, path
                ):
                    item = cache.insert(constraints, sky)
                    inserted_at, last_used, use_count = meta
                    item.inserted_at = int(inserted_at)
                    item.last_used = int(last_used)
                    item.use_count = int(use_count)
        except Exception as exc:
            # A flipped byte in the zip container can surface almost any
            # stdlib exception type (BadZipFile, zlib.error, EOFError,
            # NotImplementedError, ...); any parse failure IS corruption.
            if isinstance(exc, CorruptCacheError):
                raise
            raise CorruptCacheError(
                f"cache archive {path} is unreadable: {exc}"
            ) from exc
        return cache

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _evict_if_needed(self) -> None:
        while self.capacity is not None and len(self._items) > self.capacity:
            victim = min(self._items.values(), key=self._eviction_key)
            self._remove(victim)
            self.evictions += 1
            self.metrics.inc("cache_evictions_total", policy=self.policy)

    def _eviction_key(self, item: CacheItem):
        if self.policy == "lru":
            return (item.last_used, item.item_id)
        return (item.use_count, item.last_used, item.item_id)

    def _remove(self, item: CacheItem) -> None:
        del self._items[item.item_id]
        del self._by_constraints[item.constraints.key()]
        removed = self._index.delete(item.mbr_lo, item.mbr_hi, item.item_id)
        if not removed:
            raise RuntimeError("cache index out of sync with item store")
        self.backend.record_del(item)
