"""Multi-item cache exploitation (the paper's Section 6.3 future work).

The paper processes each query against a *single* cached item and leaves
combining several overlapping items as future work, noting the challenges:
more range queries, more complicated strategies, and more overlap cases.
This module implements that extension conservatively.

Soundness argument.  For each used item ``(Sky(S,C_i), C_i)``, define its
*safe region* as the overlap ``R_Ci  intersect  R_C'`` minus the item's
invalidated regions (parts dominated under ``C_i`` by skyline points that
``C'`` expels).  Inside a safe region, every non-cached point is dominated
by a *surviving* point of ``Sky(S,C_i)`` (an expelled dominator would make
the region invalidated), so nothing there can enter ``Sky(S,C')`` as long
as all surviving points are merged into the final pool.  The multi-item MPR
is therefore ``R_C'`` minus the union of all safe regions, further pruned
by the dominance regions of the pooled surviving points -- strictly smaller
than (or equal to) any single item's MPR.

Surviving points cached by several items are the same data rows; the pool
keeps, per exact coordinate vector, the *maximum* multiplicity seen in any
one item (a single item always caches all exact duplicates together, so the
maximum is the true multiplicity).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ampr import nearest_to_corner
from repro.core.mpr import (
    MPRResult,
    _coarsen_dominators,
    _invalidated_regions,
    _subtract_corners,
)
from repro.core.stability import guaranteed_stable
from repro.geometry.box import Box, merge_aligned_boxes, union_mask
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS
from repro.skyline.sfs import sfs_skyline


class MultiItemMPR:
    """Region computer that combines up to ``max_items`` cached items.

    Single-item behaviour (``max_items=1``) reduces to the aMPR with the
    same ``k``.  Piece growth is bounded by ``max_pieces``: items are folded
    in one at a time (best overlap first via the engine's strategy ranking)
    and folding stops once the tiling budget is reached -- later items are
    simply not exploited, never unsoundly so.
    """

    def __init__(
        self,
        k: int = 1,
        max_items: int = 3,
        max_pieces: int = 256,
        invalidation_anchors: int = 8,
        merge_boxes: bool = True,
    ):
        if k < 1 or max_items < 1 or max_pieces < 1:
            raise ValueError("k, max_items and max_pieces must be positive")
        self.k = k
        self.max_items = max_items
        self.max_pieces = max_pieces
        self.invalidation_anchors = invalidation_anchors
        self.merge_boxes = merge_boxes
        self.obs = NULL_OBS

    def bind_obs(self, obs) -> "MultiItemMPR":
        """Attach observability (spans + MPR metrics) to this computer."""
        self.obs = NULL_OBS if obs is None else obs
        return self

    @property
    def name(self) -> str:
        return f"multiMPR({self.max_items}x{self.k}NN)"

    def compute(
        self, old: Constraints, skyline: np.ndarray, new: Constraints
    ) -> MPRResult:
        """Single-item interface (used when only one candidate exists)."""
        return self.compute_multi([(old, skyline)], new)

    def compute_multi(
        self,
        items: Sequence[Tuple[Constraints, np.ndarray]],
        new: Constraints,
    ) -> MPRResult:
        """Compute the MPR of ``new`` against up to ``max_items`` items."""
        if not items:
            raise ValueError("compute_multi requires at least one cache item")
        obs = self.obs
        with obs.tracer.span("mpr.compute_multi", items=len(items)) as span:
            result = self._compute_multi(items, new)
            if obs.enabled:
                span.set(boxes=len(result.boxes), stable=result.stable)
                obs.metrics.observe("mpr_rectangles_per_query", len(result.boxes))
                obs.metrics.inc(
                    "mpr_computations_total",
                    stable="stable" if result.stable else "unstable",
                )
        return result

    def _compute_multi(
        self,
        items: Sequence[Tuple[Constraints, np.ndarray]],
        new: Constraints,
    ) -> MPRResult:
        pieces: List[Box] = [new.region()]
        pool_counts: Dict[tuple, int] = {}
        stable = True

        for old, skyline in items[: self.max_items]:
            skyline = np.asarray(skyline, dtype=float)
            overlap = old.region().intersect(new.region())
            if overlap.is_empty():
                continue
            surviving_mask = (
                new.satisfied_mask(skyline)
                if len(skyline)
                else np.zeros(0, dtype=bool)
            )
            surviving = skyline[surviving_mask]
            removed = skyline[~surviving_mask]
            item_stable = guaranteed_stable(old, new) or len(removed) == 0
            stable = stable and item_stable

            if len(pieces) <= self.max_pieces:
                safe = self._safe_regions(overlap, removed, item_stable)
                for safe_box in safe:
                    if len(pieces) > self.max_pieces:
                        break
                    pieces = [
                        part
                        for piece in pieces
                        for part in piece.subtract_box(safe_box)
                    ]
            _merge_pool(pool_counts, surviving)

        pool = _materialize_pool(pool_counts, new.ndim)
        if len(pool):
            # Unlike a single item's surviving set, the merged pool is not an
            # antichain (one item's point may dominate another's); reduce it
            # to its own skyline so downstream shortcuts stay valid.
            pool = pool[sfs_skyline(pool)]
        pruners = nearest_to_corner(pool, new.lo, self.k) if len(pool) else pool
        pieces = _subtract_corners(pieces, pruners)
        if self.merge_boxes and len(pieces) > 1:
            pieces = merge_aligned_boxes(pieces)
        if len(pool) and pieces:
            pool = pool[~union_mask(pieces, pool)]
        return MPRResult(boxes=pieces, surviving=pool, stable=stable)

    def _safe_regions(
        self, overlap: Box, removed: np.ndarray, item_stable: bool
    ) -> List[Box]:
        """Disjoint boxes of the item's overlap where the cache is reliable."""
        if item_stable:
            return [overlap]
        anchors = removed
        if len(anchors) > self.invalidation_anchors:
            anchors = _coarsen_dominators(anchors, self.invalidation_anchors)
        invalid = _invalidated_regions(overlap, anchors, self.max_pieces)
        safe = [overlap]
        for bad in invalid:
            safe = [part for piece in safe for part in piece.subtract_box(bad)]
            if len(safe) > self.max_pieces:
                # Give up on this item's unstable overlap entirely: treating
                # none of it as safe is conservative.
                return []
        return safe


def _merge_pool(pool_counts: Dict[tuple, int], surviving: np.ndarray) -> None:
    """Fold one item's surviving points into the pool at max multiplicity."""
    item_counts: Dict[tuple, int] = {}
    for row in surviving:
        key = tuple(row)
        item_counts[key] = item_counts.get(key, 0) + 1
    for key, count in item_counts.items():
        if count > pool_counts.get(key, 0):
            pool_counts[key] = count


def _materialize_pool(pool_counts: Dict[tuple, int], ndim: int) -> np.ndarray:
    if not pool_counts:
        return np.empty((0, ndim))
    rows = []
    for key, count in pool_counts.items():
        rows.extend([key] * count)
    return np.array(rows, dtype=float)
