"""The Missing Points Region (paper Section 5, Definition 5, Algorithm 1).

Given a cached item ``(Sky(S,C), MBR, C)`` and new constraints ``C'``, the
MPR is the minimal region whose points' skyline membership cannot be decided
from the cache alone.  It consists of:

1. the part of ``R_C'`` outside the old region (new territory -- nothing
   cached applies there),
2. in unstable cases, the *invalidated* part of the overlap: regions that a
   now-expelled cached skyline point used to dominate (those suppressed
   points can re-enter the skyline, Corollary 2),

minus the dominance regions ``DR(u, C')`` of the cached skyline points that
survive the new constraints -- wherever a surviving point still dominates,
nothing new can appear (Theorem 6: completeness; Theorem 7: minimality).

The computation is pure hyper-rectangle algebra: start from ``R_C'``, split
along the old constraint planes, and repeatedly subtract closed corner
regions.  The result is a set of *disjoint* axis-orthogonal boxes that can be
issued directly as range queries -- the form the paper's Algorithm 1
produces.  The piece count is O(|H| * |Sky| * |D|)-bounded work and grows
steeply with dimensionality (paper Figure 4/9), which is what the
approximate MPR (:mod:`repro.core.ampr`) trades against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.stability import guaranteed_stable
from repro.geometry.box import Box, merge_aligned_boxes, union_mask
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS

__all__ = ["MPRResult", "compute_mpr"]


@dataclass
class MPRResult:
    """The decomposed missing-points region of one cache-vs-query pair.

    - ``boxes``: disjoint range queries covering the MPR;
    - ``surviving``: cached skyline points satisfying the new constraints
      (they are merged with the fetched points, Theorem 6);
    - ``stable``: whether the cached skyline was stable for this query
      (operationally -- syntactic stability or no expelled points);
    - ``invalidated_boxes``: the subset of ``boxes`` that came from cache
      invalidation rather than new territory (diagnostics; already included
      in ``boxes``).
    """

    boxes: List[Box]
    surviving: np.ndarray
    stable: bool
    invalidated_boxes: List[Box] = field(default_factory=list)

    @property
    def n_range_queries(self) -> int:
        return len(self.boxes)


def compute_mpr(
    old: Constraints,
    skyline: np.ndarray,
    new: Constraints,
    prune_with: Optional[np.ndarray] = None,
    max_invalidation_pieces: Optional[int] = None,
    max_invalidation_anchors: Optional[int] = None,
    merge_boxes: bool = False,
    obs=None,
) -> MPRResult:
    """Compute the (possibly approximate) MPR of a cached item for ``new``.

    ``prune_with`` selects which cached skyline points' dominance regions
    are subtracted in the final step: ``None`` uses every *surviving* point
    (the exact MPR of Definition 5); a subset of the surviving points yields
    a conservative superset of the MPR (this is how
    :class:`~repro.core.ampr.ApproximateMPR` plugs in -- fewer, larger
    boxes, no false negatives).

    ``max_invalidation_pieces`` bounds the piece count of the unstable-case
    invalidation decomposition.  The exact union of expelled dominance
    regions is a staircase whose tiling can explode combinatorially when
    many skyline points are expelled at once (the effect behind the paper's
    "cache invalidation yields a prohibitive amount of range queries for
    MPR", Section 7.2).  When the budget is exceeded, the union is covered
    conservatively by a single corner region anchored at the componentwise
    minimum of the expelled points -- a superset, so completeness is
    untouched; only extra points are read.  ``None`` keeps the exact
    decomposition (the faithful Algorithm 1 behaviour).

    ``max_invalidation_anchors`` coarsens the expelled-point set *before*
    tiling: the points are chunked into at most that many groups and each
    group replaced by its componentwise minimum, whose corner region covers
    the whole group -- again a conservative superset, but with a bounded and
    typically tiny tiling.  ``merge_boxes`` fuses abutting result boxes into
    larger ones (identical point set, fewer range queries); both are the
    aMPR's "fewer, larger, disjoint range queries" trade-off applied to the
    unstable case.

    When the returned boxes cover some surviving cached skyline points
    (possible only under the conservative approximations above), those
    points are dropped from ``surviving``: they will be re-fetched from disk
    along with any exact duplicates, keeping the merged pool an exact
    multiset.

    ``obs`` optionally attaches an :class:`~repro.obs.Observability`: the
    whole decomposition runs inside an ``mpr.compute`` span (with a nested
    ``stability.check``), and the box count / stability feed the
    ``mpr_rectangles_per_query`` histogram and ``mpr_computations_total``
    counter.
    """
    obs = NULL_OBS if obs is None else obs
    with obs.tracer.span("mpr.compute") as span:
        result = _compute_mpr(
            old,
            skyline,
            new,
            prune_with,
            max_invalidation_pieces,
            max_invalidation_anchors,
            merge_boxes,
            obs,
        )
        if obs.enabled:
            span.set(
                boxes=len(result.boxes),
                invalidated_boxes=len(result.invalidated_boxes),
                surviving=len(result.surviving),
                stable=result.stable,
            )
            obs.metrics.observe("mpr_rectangles_per_query", len(result.boxes))
            obs.metrics.inc(
                "mpr_computations_total",
                stable="stable" if result.stable else "unstable",
            )
    return result


def _compute_mpr(
    old: Constraints,
    skyline: np.ndarray,
    new: Constraints,
    prune_with: Optional[np.ndarray],
    max_invalidation_pieces: Optional[int],
    max_invalidation_anchors: Optional[int],
    merge_boxes: bool,
    obs,
) -> MPRResult:
    """The Algorithm-1 body behind :func:`compute_mpr` (see its docstring)."""
    if old.ndim != new.ndim:
        raise ValueError("constraint dimensionality mismatch")
    skyline = np.asarray(skyline, dtype=float)
    if skyline.ndim != 2 or skyline.shape[1] != old.ndim:
        raise ValueError("skyline must be a (k, d) array matching the constraints")

    surviving_mask = (
        new.satisfied_mask(skyline) if len(skyline) else np.zeros(0, dtype=bool)
    )
    surviving = skyline[surviving_mask]
    removed = skyline[~surviving_mask]

    if not old.overlaps(new):
        # Disjoint regions: the cache tells us nothing; the MPR is all of
        # R_C' (still "stable" per Theorem 1 -- nothing cached is reusable
        # or invalidated).
        return MPRResult(boxes=[new.region()], surviving=surviving, stable=True)

    # Step 1 -- new territory: R_C' minus the overlap with the old region.
    pieces = new.region().subtract_box(old.region())

    # Step 2 -- invalidation (unstable case): parts of the overlap dominated
    # by expelled skyline points.  Syntactically stable items cannot have
    # expelled dominators below the overlap, and items with nothing expelled
    # have nothing to invalidate.
    with obs.tracer.span("stability.check") as sspan:
        stable = guaranteed_stable(old, new) or len(removed) == 0
        sspan.set(stable=stable, expelled=len(removed))
    invalid: List[Box] = []
    if not stable:
        overlap = new.region().intersect(old.region())
        anchors = removed
        if (
            max_invalidation_anchors is not None
            and len(anchors) > max_invalidation_anchors
        ):
            anchors = _coarsen_dominators(anchors, max_invalidation_anchors)
        invalid = _invalidated_regions(
            overlap, anchors, max_invalidation_pieces, obs=obs
        )

    # Step 3 -- subtract the dominance regions of (a subset of) the
    # surviving cached skyline points.
    pruners = surviving if prune_with is None else np.asarray(prune_with, dtype=float)
    pieces = _subtract_corners(pieces, pruners)
    invalid = _subtract_corners(invalid, pruners)

    boxes = pieces + invalid
    if merge_boxes and len(boxes) > 1:
        boxes = merge_aligned_boxes(boxes)
    if len(surviving) and boxes:
        # Conservative boxes may cover surviving points; drop those from the
        # reuse set -- they (and their duplicates) arrive via the fetch.
        surviving = surviving[~union_mask(boxes, surviving)]

    return MPRResult(
        boxes=boxes,
        surviving=surviving,
        stable=stable,
        invalidated_boxes=invalid,
    )


def _invalidated_regions(
    overlap: Box, removed: np.ndarray, budget: Optional[int], obs=NULL_OBS
) -> List[Box]:
    """Disjoint boxes covering ``overlap`` intersected with the union of the
    expelled points' dominance regions (conservatively, under a budget).

    Fallback ladder when the exact staircase tiling exceeds the budget:

    1. *coarsen*: chunk the expelled points (in lexicographic order) into a
       bounded number of groups and replace each group by its componentwise
       minimum -- a virtual dominator whose corner region covers the whole
       group, so the union can only grow (conservative) while the tiling
       stays small;
    2. *collapse*: a single corner region at the componentwise minimum of
       every expelled point.
    """
    if overlap.is_empty() or len(removed) == 0:
        return []
    anchors = removed
    for attempt in range(3):
        result = _corner_union_tiling(overlap, anchors, budget)
        if result is not None:
            return result
        if attempt == 0:
            obs.metrics.inc("mpr_invalidation_fallbacks_total", step="coarsen")
            anchors = _coarsen_dominators(removed, groups=24)
        else:
            obs.metrics.inc("mpr_invalidation_fallbacks_total", step="collapse")
            anchors = removed.min(axis=0).reshape(1, -1)
    # The single-anchor tiling is one intersection; it cannot exceed any
    # positive budget, but guard anyway.
    hit = overlap.intersect(Box.corner_at_least(removed.min(axis=0)))
    return [] if hit.is_empty() else [hit]


def _corner_union_tiling(
    overlap: Box, anchors: np.ndarray, budget: Optional[int]
) -> Optional[List[Box]]:
    """Tile ``overlap`` intersected with the union of the anchors' corner
    regions into disjoint boxes; None if the piece count exceeds ``budget``."""
    invalid: List[Box] = []
    remaining = [overlap]
    for t in anchors:
        if budget is not None and len(remaining) + len(invalid) > budget:
            return None
        corner = Box.corner_at_least(t)
        next_remaining: List[Box] = []
        for piece in remaining:
            hit = piece.intersect(corner)
            if not hit.is_empty():
                invalid.append(hit)
            next_remaining.extend(piece.subtract_corner(t))
        remaining = next_remaining
        if not remaining:
            break
    return invalid


def _coarsen_dominators(points: np.ndarray, groups: int) -> np.ndarray:
    """Cover a point set by at most ``groups`` componentwise-minimum anchors.

    Points are chunked in lexicographic order (neighbouring skyline points
    sit close along the staircase, so per-chunk minima stay tight)."""
    if len(points) <= groups:
        return points
    order = np.lexsort(points.T[::-1])
    chunks = np.array_split(points[order], groups)
    return np.array([chunk.min(axis=0) for chunk in chunks])


def _subtract_corners(boxes: List[Box], points: np.ndarray) -> List[Box]:
    """Subtract the closed corner region of every point from every box.

    Points are processed in ascending coordinate-sum order: points nearer
    the origin have larger dominance regions, so processing them first
    shrinks the piece set early (the same intuition the paper borrows from
    sort-based skyline algorithms for the aMPR).
    """
    pieces = [b for b in boxes if not b.is_empty()]
    if not pieces or len(points) == 0:
        return pieces
    for u in points[np.argsort(points.sum(axis=1), kind="stable")]:
        corner = Box.corner_at_least(u)
        next_pieces: List[Box] = []
        for piece in pieces:
            if piece.overlaps(corner):
                next_pieces.extend(piece.subtract_corner(u))
            else:
                next_pieces.append(piece)
        pieces = next_pieces
        if not pieces:
            break
    return pieces
