"""Shard-pruning planner: which shards can contribute to a constrained skyline.

This is the PartitionCache idea transplanted to skylines.  Given the
constraint region ``C`` and each shard's summary (live MBR + count), classify
every shard:

``disjoint``
    The shard is empty, or its MBR does not intersect ``C`` -- no live row
    of the shard satisfies the constraints, so it cannot contribute.

``dominated``
    Some *other* nonempty shard ``i`` has its MBR fully inside ``C`` and
    ``mbr_hi(i) <= corner(j)`` componentwise with strict ``<`` in at least
    one dimension, where ``corner(j) = max(mbr_lo(j), C.lo)`` is the best
    (most dominating) point shard ``j`` could possibly place inside ``C``.
    Every actual point ``p`` of shard ``i`` then lies inside ``C`` (MBR
    inside region) and satisfies ``p <= mbr_hi(i) <= corner(j) <= q`` for
    every in-region point ``q`` of shard ``j``, strictly below in the strict
    dimension -- so ``p`` dominates ``q`` and shard ``j`` cannot contribute
    a skyline point.  Domination is safe transitively: a dominator that is
    itself dominated is dominated only by another fully-inside shard whose
    points dominate at least as strongly, and the chain bottoms out at a
    surviving shard (mutual domination is impossible because the strict
    inequality would force ``mbr_lo(i) < mbr_lo(i)``).

``surviving``
    Everything else -- the shard must be scanned.

Pruning uses only the summaries (zero I/O), and the decisions for one
constraint region are themselves cacheable: :class:`PruningSetCache` is an
LRU keyed by ``Constraints.key()`` so a repeat query skips both the pruned
shards *and* the pruning computation.  The engine invalidates it whenever a
shard MBR actually grows (see ``ShardedTable.record_append``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.constraints import Constraints
from repro.storage.sharding import ShardSummary

DECISION_DISJOINT = "disjoint"
DECISION_DOMINATED = "dominated"
DECISION_SURVIVING = "surviving"

__all__ = [
    "DECISION_DISJOINT",
    "DECISION_DOMINATED",
    "DECISION_SURVIVING",
    "ShardDecision",
    "prune_shards",
    "PruningSetCache",
]


@dataclass(frozen=True)
class ShardDecision:
    """One shard's classification with a machine-readable reason.

    Reasons: ``empty-shard``, ``mbr-disjoint-dim{d}``,
    ``dominated-by-shard{i}``, ``in-region``.
    """

    shard_id: int
    decision: str
    reason: str

    @property
    def pruned(self) -> bool:
        return self.decision != DECISION_SURVIVING

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "decision": self.decision,
            "reason": self.reason,
        }


def _disjoint_dim(summary: ShardSummary, constraints: Constraints) -> Optional[int]:
    """First dimension where the shard MBR misses the region, else None."""
    for d in range(len(constraints.lo)):
        if (
            summary.mbr_hi[d] < constraints.lo[d]
            or summary.mbr_lo[d] > constraints.hi[d]
        ):
            return d
    return None


def prune_shards(
    summaries: Sequence[ShardSummary], constraints: Constraints
) -> List[ShardDecision]:
    """Classify every shard ``disjoint | dominated | surviving`` for ``C``.

    Pure function of the summaries and the region -- no table access.
    Returns one decision per shard, in shard-id order.
    """
    lo = np.asarray(constraints.lo, dtype=float)
    hi = np.asarray(constraints.hi, dtype=float)

    decisions: List[Optional[ShardDecision]] = [None] * len(summaries)
    candidates: List[ShardSummary] = []  # non-disjoint, still in play
    for s in summaries:
        if s.empty:
            decisions[s.shard_id] = ShardDecision(
                s.shard_id, DECISION_DISJOINT, "empty-shard"
            )
            continue
        d = _disjoint_dim(s, constraints)
        if d is not None:
            decisions[s.shard_id] = ShardDecision(
                s.shard_id, DECISION_DISJOINT, f"mbr-disjoint-dim{d}"
            )
            continue
        candidates.append(s)

    # Dominators must be nonempty with their whole MBR inside the region,
    # so that every one of their actual points is a valid in-region witness.
    dominators = [
        s
        for s in candidates
        if np.all(lo <= s.mbr_lo) and np.all(s.mbr_hi <= hi)
    ]
    for s in candidates:
        # corner(j): the most optimistic point shard j could place in C.
        corner = np.maximum(s.mbr_lo, lo)
        verdict: Optional[ShardDecision] = None
        for dom in dominators:
            if dom.shard_id == s.shard_id:
                continue
            if np.all(dom.mbr_hi <= corner) and np.any(dom.mbr_hi < corner):
                verdict = ShardDecision(
                    s.shard_id,
                    DECISION_DOMINATED,
                    f"dominated-by-shard{dom.shard_id}",
                )
                break
        decisions[s.shard_id] = verdict or ShardDecision(
            s.shard_id, DECISION_SURVIVING, "in-region"
        )
    return list(decisions)  # type: ignore[arg-type]


class PruningSetCache:
    """LRU cache of pruning decisions keyed by constraint region.

    The PartitionCache trick verbatim: the set of shards that can contribute
    to a region is a function of (region, shard summaries), so it is cached
    under ``Constraints.key()`` and reused until a summary changes -- the
    engine calls :meth:`invalidate` when any shard MBR grows (or a delete
    could shrink one), which drops every entry.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple, List[ShardDecision]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, constraints: Constraints) -> Optional[List[ShardDecision]]:
        key = constraints.key()
        decisions = self._entries.get(key)
        if decisions is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return decisions

    def store(
        self, constraints: Constraints, decisions: List[ShardDecision]
    ) -> None:
        key = constraints.key()
        self._entries[key] = decisions
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every cached pruning set (a shard summary changed)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "invalidations": self.invalidations,
        }
