"""The Cache-Based Constrained Skyline engine (paper Section 6).

"Upon receiving a query Sky(S, C'), we perform a search on the R*-tree
fetching all cache items where R_C' intersects MBR != empty.  If none exist,
Sky(S, C') is computed naively.  If more than one cache item is returned, we
select the most efficient based on a cache search strategy.  We then compute
the MPR.  Finally we fetch the points in the MPR, merge them with the cached
Sky(S, C), and compute Sky(S, C')."

The engine is parameterized by the cache, the search strategy, the region
computer (exact MPR or aMPR), and the in-memory skyline algorithm (SFS by
default, as in the paper -- "the benefit of our CBCS method is independent
of the skyline algorithm used").  Every query returns a
:class:`~repro.stats.QueryOutcome` with the Figure-10 stage breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.ampr import ApproximateMPR
from repro.core.cache import SkylineCache
from repro.core.cases import CASE_EXACT, classify_change
from repro.core.strategies import CacheSearchStrategy, MaxOverlapSP
from repro.geometry.box import Box
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS
from repro.resilience import (
    DEGRADABLE,
    call_with_retry,
    resolve_resilience,
    validate_range_result,
)
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.table import DiskTable

CASE_MISS = "miss"

#: Degradation-ladder rung labels stamped into ``QueryOutcome.degraded``.
#: ``ampr`` and ``bounding`` answers are still exact; ``stale`` serves a
#: possibly-outdated cached skyline; ``unavailable`` is the empty last
#: resort when storage is down and nothing cached overlaps.
RUNG_AMPR = "ampr"
RUNG_BOUNDING = "bounding"
RUNG_STALE = "stale"
RUNG_UNAVAILABLE = "unavailable"


def _box_to_dict(box: Box) -> dict:
    """Serialize a box as per-dimension interval dicts (None = unbounded)."""
    return {
        "intervals": [
            {
                "lo": None if math.isinf(iv.lo) else iv.lo,
                "hi": None if math.isinf(iv.hi) else iv.hi,
                "lo_open": iv.lo_open,
                "hi_open": iv.hi_open,
            }
            for iv in box.intervals
        ]
    }


@dataclass
class QueryPlan:
    """A dry-run description of how CBCS would answer a query.

    Produced by :meth:`CBCS.explain` without touching the disk or mutating
    the cache -- the EXPLAIN of this engine.  ``estimated_points`` uses the
    table's per-dimension selectivity estimates for each planned range
    query, so it is an upper-bound style estimate, not an exact count.
    """

    case: str
    cache_hit: bool
    stable: Optional[bool]
    candidates: int
    item_id: Optional[int]
    reusable_points: int
    range_queries: int
    estimated_points: int
    boxes: List[Box] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the plan.

        Infinite box bounds become ``None`` so the result round-trips
        through strict JSON; used by the plan-accuracy audit
        (:mod:`repro.obs.audit`) and the bench ``--json`` dump.
        """
        return {
            "case": self.case,
            "cache_hit": self.cache_hit,
            "stable": self.stable,
            "candidates": self.candidates,
            "item_id": self.item_id,
            "reusable_points": self.reusable_points,
            "range_queries": self.range_queries,
            "estimated_points": self.estimated_points,
            "boxes": [_box_to_dict(box) for box in self.boxes],
        }

    def summary(self) -> str:
        """One-line human-readable rendering."""
        source = f"item #{self.item_id}" if self.cache_hit else "no cache item"
        return (
            f"case={self.case} via {source} ({self.candidates} candidates); "
            f"reuse {self.reusable_points} cached points, issue "
            f"{self.range_queries} range queries (~{self.estimated_points} "
            f"points)"
        )


class CBCS:
    """Cache-Based Constrained Skyline query engine."""

    def __init__(
        self,
        table: DiskTable,
        cache: Optional[SkylineCache] = None,
        strategy: Optional[CacheSearchStrategy] = None,
        region_computer=None,
        skyline_algorithm: Callable[[np.ndarray], np.ndarray] = sfs_skyline,
        cache_results: bool = True,
        obs=None,
        resilience=None,
    ):
        """``region_computer`` defaults to the 1-NN aMPR, the paper's default
        for interactive workloads; pass :class:`~repro.core.ampr.ExactMPR`
        for minimal reads.

        ``obs`` attaches an :class:`~repro.obs.Observability` to the whole
        engine: queries run inside ``cbcs.query`` spans (with nested cache
        search / selection / MPR / fetch / skyline spans), and the cache,
        strategy, and region computer are bound to the same registry.  With
        the default ``None`` everything stays on the shared no-op.

        ``resilience`` enables the fault-tolerance layer: pass ``True`` for
        defaults or a :class:`repro.resilience.Resilience` to tune the
        retry policy / circuit breaker.  With it on, storage fetches are
        validated and retried, exhausted retries fall down the degradation
        ladder (aMPR re-plan -> bounding fetch -> stale cache serve)
        instead of raising, and cache items are invariant-verified before
        CBCS prunes with them.  The default ``None`` keeps the historic
        fail-fast behaviour with zero overhead.
        """
        self.table = table
        # explicit None checks: an empty SkylineCache is falsy (len 0)
        self.cache = cache if cache is not None else SkylineCache()
        self.strategy = strategy if strategy is not None else MaxOverlapSP()
        self.region = (
            region_computer if region_computer is not None else ApproximateMPR(k=1)
        )
        self.skyline_algorithm = skyline_algorithm
        self.cache_results = cache_results
        self.obs = NULL_OBS if obs is None else obs
        self.resilience = resolve_resilience(resilience)
        self._fallback_region = (
            ApproximateMPR(k=1)
            if self.resilience is not None
            and not isinstance(self.region, ApproximateMPR)
            else None
        )
        if obs is not None:
            self.cache.bind_metrics(obs.metrics)
            self.strategy.bind_obs(obs)
            if hasattr(self.region, "bind_obs"):
                self.region.bind_obs(obs)
            if self.table.obs is NULL_OBS:
                self.table.bind_obs(obs)
            if self.resilience is not None:
                self.resilience.bind_metrics(obs.metrics)
            if self._fallback_region is not None:
                self._fallback_region.bind_obs(obs)

    @property
    def name(self) -> str:
        return f"CBCS[{self.region.name}]"

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, constraints: Constraints) -> QueryOutcome:
        """Answer one constrained skyline query, reusing the cache.

        With resilience enabled, storage faults are retried and -- once
        retries are exhausted or the circuit breaker opens -- the query
        degrades down the ladder instead of raising: aMPR re-plan, then a
        single bounding range query, then serving the best-overlap cached
        skyline flagged ``stale``.  Degraded outcomes are always labeled
        (``QueryOutcome.degraded``); this method never lets a storage error
        escape when resilience is on.
        """
        if constraints.ndim != self.table.ndim:
            raise ValueError("constraints dimensionality does not match the table")
        obs = self.obs
        with obs.tracer.span("cbcs.query", strategy=self.strategy.name) as qspan:
            if self.resilience is None:
                outcome = self._answer(constraints, qspan)
            else:
                outcome = self._answer_resilient(constraints, qspan)
        obs.record_outcome(outcome)
        return outcome

    def _answer_resilient(self, constraints: Constraints, qspan) -> QueryOutcome:
        """Normal plan with retries; on give-up, walk the degradation ladder."""
        state = self.resilience.new_state()
        try:
            outcome = self._answer(constraints, qspan, retry_state=state)
        except DEGRADABLE as cause:
            self.obs.metrics.inc("degradation_entered_total", method=self.name)
            outcome = self._answer_degraded(constraints, qspan, state, cause)
        outcome.retries = state.retries
        return outcome

    def _fetch(self, fn, retry_state):
        """Run one storage fetch, optionally under breaker + retry + validation.

        ``fn`` must be re-invocable (a retry refetches from scratch).  With
        resilience off (``retry_state`` None) this is a plain call.
        """
        if retry_state is None:
            return fn()
        res = self.resilience
        res.breaker.allow()  # raises CircuitOpenError while open

        def attempt():
            result = fn()
            validate_range_result(result)
            return result

        try:
            result = call_with_retry(
                attempt, retry_state, metrics=self.obs.metrics, op="fetch"
            )
        except Exception:
            res.breaker.record_failure()
            raise
        res.breaker.record_success()
        return result

    def _answer(
        self,
        constraints: Constraints,
        qspan,
        retry_state=None,
        region_override=None,
    ) -> QueryOutcome:
        """The query body, run inside the ``cbcs.query`` span."""
        obs = self.obs
        watch = Stopwatch(tracer=obs.tracer)
        io_before = self.table.stats.snapshot()
        verify = self.resilience is not None and self.resilience.verify_cache

        with watch.stage("processing"):
            with obs.tracer.span("cache.search"):
                candidates = self.cache.candidates(constraints)
            item = (
                self.strategy.select(constraints, candidates) if candidates else None
            )
            while verify and item is not None and not self.cache.verify_and_heal(item):
                candidates = [c for c in candidates if c is not item]
                item = (
                    self.strategy.select(constraints, candidates)
                    if candidates
                    else None
                )
        obs.metrics.inc(
            "cache_lookups_total",
            strategy=self.strategy.name,
            outcome="hit" if item is not None else "miss",
        )

        if item is None:
            qspan.set(case=CASE_MISS, cache_hit=False)
            return self._query_miss(constraints, watch, io_before, retry_state)

        with watch.stage("processing"):
            with obs.tracer.span("case.classify") as cspan:
                case = classify_change(item.constraints, constraints)
                cspan.set(case=case, item_id=item.item_id)
            if case == CASE_EXACT:
                self.cache.touch(item)
                qspan.set(case=CASE_EXACT, cache_hit=True)
                outcome = QueryOutcome(
                    skyline=item.skyline.copy(),
                    method=self.name,
                    timings=watch.timings,
                    case=CASE_EXACT,
                    stable=True,
                    cache_hit=True,
                )
                return outcome
            mpr = self._compute_region(
                item, candidates, constraints, region_override=region_override
            )

        with watch.stage("fetch_wall"):
            fetched = self._fetch(
                lambda: self.table.fetch_boxes(mpr.boxes), retry_state
            )

        with watch.stage("skyline"):
            with obs.tracer.span("skyline.merge") as mspan:
                if len(fetched) == 0:
                    # Nothing new: the surviving cached points are already a
                    # skyline among themselves (Definition 1), and by Theorem 6
                    # they are complete -- e.g. case b's "just filter" shortcut.
                    skyline = mpr.surviving
                else:
                    pool = (
                        np.vstack([mpr.surviving, fetched.points])
                        if len(mpr.surviving)
                        else fetched.points
                    )
                    skyline = pool[self.skyline_algorithm(pool)]
                if obs.enabled:
                    mspan.set(
                        cached=len(mpr.surviving),
                        fetched=len(fetched),
                        skyline=len(skyline),
                    )

        self.cache.touch(item)
        if self.cache_results:
            inserted = self.cache.insert(constraints, skyline)
            if (
                verify
                and inserted is not None
                and retry_state is not None
                and retry_state.retries
            ):
                # The fetch path saw faults: re-verify what we just stored
                # so a slipped-through corruption cannot poison later queries.
                self.cache.verify_and_heal(inserted)
        io = self.table.stats.delta_since(io_before)
        watch.timings.fetch_io_ms = io.simulated_io_ms
        qspan.set(case=case, cache_hit=True, stable=mpr.stable)
        return QueryOutcome(
            skyline=skyline,
            method=self.name,
            timings=watch.timings,
            io=io,
            case=case,
            stable=mpr.stable,
            cache_hit=True,
        )

    def explain(self, constraints: Constraints) -> QueryPlan:
        """Describe how a query would be answered, without executing it.

        Performs the cache search, strategy selection and region computation
        but issues no disk fetches and leaves the cache untouched (no use
        counters, no insertion) -- safe to call repeatedly.
        """
        if constraints.ndim != self.table.ndim:
            raise ValueError("constraints dimensionality does not match the table")
        candidates = self.cache.candidates(constraints, record=False)

        if not candidates:
            region = constraints.region()
            return QueryPlan(
                case=CASE_MISS,
                cache_hit=False,
                stable=None,
                candidates=0,
                item_id=None,
                reusable_points=0,
                range_queries=1,
                estimated_points=self._estimate_box(region),
                boxes=[region],
            )
        item = self.strategy.select(constraints, candidates)
        case = classify_change(item.constraints, constraints)
        if case == CASE_EXACT:
            return QueryPlan(
                case=CASE_EXACT,
                cache_hit=True,
                stable=True,
                candidates=len(candidates),
                item_id=item.item_id,
                reusable_points=item.skyline_size,
                range_queries=0,
                estimated_points=0,
            )
        mpr = self._compute_region(item, candidates, constraints)
        return QueryPlan(
            case=case,
            cache_hit=True,
            stable=mpr.stable,
            candidates=len(candidates),
            item_id=item.item_id,
            reusable_points=len(mpr.surviving),
            range_queries=len(mpr.boxes),
            estimated_points=sum(self._estimate_box(b) for b in mpr.boxes),
            boxes=list(mpr.boxes),
        )

    def _estimate_box(self, box) -> int:
        """Most-selective-dimension estimate of a box's row count."""
        return min(
            self.table.estimate_count(i, iv.lo, iv.hi)
            for i, iv in enumerate(box.intervals)
        )

    def _compute_region(self, item, candidates, constraints, region_override=None):
        """Compute the missing-points region for the chosen item.

        Region computers exposing ``compute_multi`` (the Section 6.3
        multi-item extension, :class:`repro.core.multi.MultiItemMPR`)
        receive the strategy's pick first plus the remaining candidates
        ranked by overlap volume; single-item computers get the pick alone.
        ``region_override`` substitutes the degradation ladder's aMPR
        re-plan for the configured computer.
        """
        region = self.region if region_override is None else region_override
        if hasattr(region, "compute_multi") and len(candidates) > 1:
            others = sorted(
                (c for c in candidates if c is not item),
                key=lambda c: c.constraints.overlap_volume(constraints),
                reverse=True,
            )
            ranked = [(item.constraints, item.skyline)] + [
                (c.constraints, c.skyline) for c in others
            ]
            return region.compute_multi(ranked, constraints)
        return region.compute(item.constraints, item.skyline, constraints)

    # ------------------------------------------------------------------
    # Cache management helpers
    # ------------------------------------------------------------------
    def warm(self, queries) -> int:
        """Preload the cache by answering ``queries``; returns #items cached.

        Used for the paper's independent-query workload, which "assumes a
        preloaded cache with 2000 queries" (Section 7.1).
        """
        for constraints in queries:
            self.query(constraints)
        return len(self.cache)

    def _query_miss(
        self, constraints: Constraints, watch: Stopwatch, io_before, retry_state=None
    ) -> QueryOutcome:
        """Cache miss: compute naively (range query + skyline algorithm)."""
        with watch.stage("fetch_wall"):
            result = self._fetch(
                lambda: self.table.range_query(constraints.region()), retry_state
            )
        with watch.stage("skyline"):
            skyline = result.points[self.skyline_algorithm(result.points)]
        if self.cache_results:
            self.cache.insert(constraints, skyline)
        io = self.table.stats.delta_since(io_before)
        watch.timings.fetch_io_ms = io.simulated_io_ms
        return QueryOutcome(
            skyline=skyline,
            method=self.name,
            timings=watch.timings,
            io=io,
            case=CASE_MISS,
            stable=None,
            cache_hit=False,
        )

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _answer_degraded(
        self, constraints: Constraints, qspan, state, cause
    ) -> QueryOutcome:
        """Walk the ladder after the normal plan gave up (``cause``).

        Rungs, in order -- each still labeled in ``QueryOutcome.degraded``:

        1. ``ampr``: re-plan with a 1-NN aMPR (fewer, larger range queries
           mean fewer fault opportunities); skipped when the engine already
           runs an aMPR.  The answer is still exact.
        2. ``bounding``: a single range query over the whole constraint
           region plus a from-scratch skyline -- one fetch, still exact.
        3. ``stale``: serve the best-overlap cached skyline filtered to the
           query region, flagged ``stale=True`` (may miss points whose
           dominators fell outside the cached region).
        4. ``unavailable``: the empty last resort when storage is down and
           nothing cached overlaps.
        """
        obs = self.obs
        verify = self.resilience.verify_cache

        if self._fallback_region is not None:
            rung_state = self.resilience.new_state()
            try:
                outcome = self._answer(
                    constraints,
                    qspan,
                    retry_state=rung_state,
                    region_override=self._fallback_region,
                )
                outcome.degraded = RUNG_AMPR
                qspan.set(degraded=RUNG_AMPR)
                state.retries += rung_state.retries
                return outcome
            except DEGRADABLE:
                state.retries += rung_state.retries

        rung_state = self.resilience.new_state()
        try:
            watch = Stopwatch(tracer=obs.tracer)
            io_before = self.table.stats.snapshot()
            outcome = self._query_miss(constraints, watch, io_before, rung_state)
            outcome.degraded = RUNG_BOUNDING
            qspan.set(degraded=RUNG_BOUNDING)
            state.retries += rung_state.retries
            return outcome
        except DEGRADABLE:
            state.retries += rung_state.retries

        with obs.tracer.span("cbcs.stale_serve"):
            candidates = self.cache.candidates(constraints, record=False)
            while candidates:
                best = max(
                    candidates,
                    key=lambda c: c.constraints.overlap_volume(constraints),
                )
                if not verify or self.cache.verify_and_heal(best):
                    points = best.skyline[constraints.satisfied_mask(best.skyline)]
                    qspan.set(degraded=RUNG_STALE, item_id=best.item_id)
                    return QueryOutcome(
                        skyline=points.copy(),
                        method=self.name,
                        case=None,
                        stable=None,
                        cache_hit=True,
                        degraded=RUNG_STALE,
                        stale=True,
                    )
                candidates = [c for c in candidates if c is not best]

        qspan.set(degraded=RUNG_UNAVAILABLE)
        return QueryOutcome(
            skyline=np.empty((0, constraints.ndim)),
            method=self.name,
            case=None,
            stable=None,
            cache_hit=False,
            degraded=RUNG_UNAVAILABLE,
            stale=True,
        )
