"""The Cache-Based Constrained Skyline engine (paper Section 6).

"Upon receiving a query Sky(S, C'), we perform a search on the R*-tree
fetching all cache items where R_C' intersects MBR != empty.  If none exist,
Sky(S, C') is computed naively.  If more than one cache item is returned, we
select the most efficient based on a cache search strategy.  We then compute
the MPR.  Finally we fetch the points in the MPR, merge them with the cached
Sky(S, C), and compute Sky(S, C')."

The engine is split into three layers (see ``docs/architecture.md``):

- a pure :class:`~repro.core.planner.Planner` that owns cache-item
  selection, case classification (Section 5) and MPR/aMPR planning -- zero
  I/O, shared verbatim by :meth:`CBCS.explain` and the execution path;
- an :class:`~repro.core.executor.Executor` that runs a plan's disjoint
  range queries against a :class:`~repro.storage.backend.StorageBackend`,
  optionally overlapping them on a bounded thread pool (``workers > 1``);
- a backend stack composed of decorators
  (:class:`~repro.storage.backend.ResilientBackend` for validation + retry
  + circuit breaker, :class:`~repro.storage.backend.InstrumentedBackend`
  for per-call counters) over the base :class:`~repro.storage.table.DiskTable`.

``CBCS`` itself keeps the stateful glue: the cache (search, verification,
insertion), the degradation ladder, and the per-query accounting.  Every
query returns a :class:`~repro.stats.QueryOutcome` with the Figure-10 stage
breakdown.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Optional

import numpy as np

from repro.core.ampr import ApproximateMPR
from repro.core.cache import SkylineCache
from repro.core.cases import CASE_EXACT
from repro.core.executor import Executor
from repro.core.planner import CASE_MISS, Planner, QueryPlan
from repro.core.strategies import CacheSearchStrategy, MaxOverlapSP
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS, bind, current_query_id
from repro.resilience import DEGRADABLE, DeadlineExceeded, resolve_resilience
from repro.resilience.deadline import Deadline
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.backend import build_backend
from repro.storage.table import DiskTable

__all__ = [
    "CBCS",
    "CASE_MISS",
    "QueryPlan",
    "RUNG_AMPR",
    "RUNG_BOUNDING",
    "RUNG_STALE",
    "RUNG_UNAVAILABLE",
]

#: Degradation-ladder rung labels stamped into ``QueryOutcome.degraded``.
#: ``ampr`` and ``bounding`` answers are still exact; ``stale`` serves a
#: possibly-outdated cached skyline; ``unavailable`` is the empty last
#: resort when storage is down and nothing cached overlaps.
RUNG_AMPR = "ampr"
RUNG_BOUNDING = "bounding"
RUNG_STALE = "stale"
RUNG_UNAVAILABLE = "unavailable"


class CBCS:
    """Cache-Based Constrained Skyline query engine."""

    def __init__(
        self,
        table: DiskTable,
        cache: Optional[SkylineCache] = None,
        strategy: Optional[CacheSearchStrategy] = None,
        region_computer=None,
        skyline_algorithm: Callable[[np.ndarray], np.ndarray] = sfs_skyline,
        cache_results: bool = True,
        obs=None,
        resilience=None,
        workers: int = 1,
    ):
        """``region_computer`` defaults to the 1-NN aMPR, the paper's default
        for interactive workloads; pass :class:`~repro.core.ampr.ExactMPR`
        for minimal reads.

        ``obs`` attaches an :class:`~repro.obs.Observability` to the whole
        engine: queries run inside ``cbcs.query`` spans (with nested cache
        search / selection / MPR / fetch / skyline spans), and the cache,
        strategy, and region computer are bound to the same registry.  With
        the default ``None`` everything stays on the shared no-op.

        ``resilience`` enables the fault-tolerance layer: pass ``True`` for
        defaults or a :class:`repro.resilience.Resilience` to tune the
        retry policy / circuit breaker.  With it on, every storage range
        query runs through a :class:`~repro.storage.backend.ResilientBackend`
        (validated, retried per box against a shared per-query budget,
        guarded by the circuit breaker); exhausted retries fall down the
        degradation ladder (aMPR re-plan -> bounding fetch -> stale cache
        serve) instead of raising, and cache items are invariant-verified
        before CBCS prunes with them.  The default ``None`` keeps the
        historic fail-fast behaviour with zero overhead.

        ``workers`` sizes the executor's fetch pool.  The default 1 keeps
        the historic serial semantics bit-for-bit; ``workers > 1`` overlaps
        a plan's disjoint range queries on a bounded thread pool -- answers
        and I/O counters stay identical (results are gathered in plan
        order), only the effective fetch latency drops.
        """
        self.table = table
        # explicit None checks: an empty SkylineCache is falsy (len 0)
        self.cache = cache if cache is not None else SkylineCache()
        self.strategy = strategy if strategy is not None else MaxOverlapSP()
        self.region = (
            region_computer if region_computer is not None else ApproximateMPR(k=1)
        )
        self.skyline_algorithm = skyline_algorithm
        self.cache_results = cache_results
        self.obs = NULL_OBS if obs is None else obs
        self.resilience = resolve_resilience(resilience)
        self._fallback_region = (
            ApproximateMPR(k=1)
            if self.resilience is not None
            and not isinstance(self.region, ApproximateMPR)
            else None
        )
        if obs is not None:
            self.cache.bind_metrics(obs.metrics)
            self.strategy.bind_obs(obs)
            if hasattr(self.region, "bind_obs"):
                self.region.bind_obs(obs)
            if self.table.obs is NULL_OBS:
                self.table.bind_obs(obs)
            if self.resilience is not None:
                self.resilience.bind_metrics(obs.metrics)
            if self._fallback_region is not None:
                self._fallback_region.bind_obs(obs)
        self.workers = int(workers)
        self.planner = Planner(self.strategy, self.region, self.table.estimate_count)
        self.executor = Executor(workers=self.workers, obs=obs)
        #: the storage stack all query I/O goes through; ``self.table`` stays
        #: the caller's handle for data maintenance (append/delete/vacuum)
        self.backend = build_backend(self.table, resilience=self.resilience, obs=obs)

    @property
    def name(self) -> str:
        return f"CBCS[{self.region.name}]"

    def close(self) -> None:
        """Release the executor's worker pool and flush the cache backend.

        With the default in-memory cache backend both steps are no-ops; a
        persistent backend takes a final checkpoint so the next start is
        warm.
        """
        self.executor.close()
        self.cache.close()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        constraints: Constraints,
        query_id: Optional[str] = None,
        deadline=None,
    ) -> QueryOutcome:
        """Answer one constrained skyline query, reusing the cache.

        With resilience enabled, storage faults are retried and -- once
        retries are exhausted or the circuit breaker opens -- the query
        degrades down the ladder instead of raising: aMPR re-plan, then a
        single bounding range query, then serving the best-overlap cached
        skyline flagged ``stale``.  Degraded outcomes are always labeled
        (``QueryOutcome.degraded``); this method never lets a storage error
        escape when resilience is on.

        ``query_id`` correlates everything this query produces -- trace
        spans, plan, outcome record, metric exemplar, quarantine events --
        under one id.  Callers (e.g. ``QueryService``) may pass their own;
        otherwise one is minted here whenever observability is enabled.
        With observability disabled no id is minted and the answer is
        bit-identical to the uninstrumented path.

        ``deadline`` (a number of milliseconds or an armed
        :class:`~repro.resilience.deadline.Deadline`) bounds this query
        end to end.  Wall-clock time, simulated I/O, and simulated retry
        backoff all charge the same budget.  When it expires mid-flight the
        query stops descending the ladder and serves the best cached answer
        it has, flagged ``stale=True``; with nothing cached it raises the
        typed :class:`~repro.resilience.DeadlineExceeded` -- never a silent
        hang, never a partial unflagged result.  A query that completes
        just past its deadline still returns its answer.  Without
        resilience the deadline is only checked at ingress (there is no
        retry/fetch machinery to charge it from).
        """
        if constraints.ndim != self.table.ndim:
            raise ValueError("constraints dimensionality does not match the table")
        deadline = Deadline.normalize(deadline)
        if deadline is not None and self.resilience is None:
            deadline.check("ingress")
        obs = self.obs
        if query_id is None and obs.enabled:
            query_id = obs.correlation.new_id()
        profiler = obs.profiler
        sample = (
            profiler.maybe(query_id) if profiler is not None else nullcontext(False)
        )
        # Decision provenance (EXPLAIN ANALYZE): one builder per query when
        # an ExplainRecorder is installed, one record emitted per query.
        explainer = getattr(obs, "explainer", None)
        xb = explainer.builder(self) if explainer is not None else None
        with bind(query_id), sample:
            with obs.tracer.span("cbcs.query", strategy=self.strategy.name) as qspan:
                if self.resilience is None:
                    outcome = self._answer(constraints, qspan, xb=xb)
                else:
                    outcome = self._answer_resilient(
                        constraints, qspan, deadline=deadline, xb=xb
                    )
            outcome.query_id = query_id
            obs.record_outcome(outcome)
            if xb is not None:
                explainer.record(xb.finish(outcome))
        return outcome

    def _answer_resilient(
        self, constraints: Constraints, qspan, deadline=None, xb=None
    ) -> QueryOutcome:
        """Normal plan with retries; on give-up, walk the degradation ladder.

        A mid-flight :class:`DeadlineExceeded` short-circuits the ladder:
        cheaper rungs still cost fetches the budget cannot pay for, so the
        query jumps straight to the stale-serve rung.  With nothing cached
        the exception propagates -- the serving layer's cue to emit a typed
        ``deadline_exceeded`` outcome.
        """
        state = self.resilience.new_state(deadline=deadline)
        try:
            outcome = self._answer(constraints, qspan, retry_state=state, xb=xb)
        except DeadlineExceeded:
            self.obs.metrics.inc("query_deadline_exceeded_total", method=self.name)
            stale = self._serve_stale(constraints, qspan)
            if stale is None:
                raise
            outcome = stale
        except DEGRADABLE as cause:
            self.obs.metrics.inc("degradation_entered_total", method=self.name)
            outcome = self._answer_degraded(
                constraints, qspan, state, cause, deadline=deadline, xb=xb
            )
        outcome.retries = state.retries
        return outcome

    def _record_fetch_timings(self, watch: Stopwatch, io, fetch) -> None:
        """Fill the two fetch-latency fields of the stage breakdown.

        ``io_ms_total`` is always the aggregate simulated I/O the query
        charged (retries included, straight from the table's counters).
        ``fetch_io_ms`` -- the Figure-10 "fetching" stage -- equals that
        aggregate when the fetch ran serially, and the executor's overlap-
        aware makespan when boxes actually ran on multiple lanes, so the
        stage breakdown keeps summing to the effective response time.
        """
        watch.timings.io_ms_total = io.simulated_io_ms
        watch.timings.fetch_io_ms = (
            fetch.effective_io_ms if fetch.workers > 1 else io.simulated_io_ms
        )

    def _answer(
        self,
        constraints: Constraints,
        qspan,
        retry_state=None,
        region_override=None,
        xb=None,
    ) -> QueryOutcome:
        """The query body, run inside the ``cbcs.query`` span."""
        obs = self.obs
        watch = Stopwatch(tracer=obs.tracer, profiler=obs.profiler)
        io_before = self.table.stats.snapshot()
        verify = self.resilience is not None and self.resilience.verify_cache

        with watch.stage("processing"):
            with obs.tracer.span("cache.search"):
                candidates = self.cache.candidates(constraints)
            if xb is not None:
                xb.begin(constraints, candidates, cache_items=len(self.cache))
            item = self.planner.select(constraints, candidates)
            while verify and item is not None and not self.cache.verify_and_heal(item):
                if xb is not None:
                    xb.reject(constraints, item, "failed-verification")
                candidates = [c for c in candidates if c is not item]
                item = self.planner.select(constraints, candidates)
        obs.metrics.inc(
            "cache_lookups_total",
            strategy=self.strategy.name,
            outcome="hit" if item is not None else "miss",
        )

        if item is None:
            qspan.set(case=CASE_MISS, cache_hit=False)
            return self._query_miss(
                constraints, watch, io_before, retry_state, xb=xb
            )

        with watch.stage("processing"):
            with obs.tracer.span("case.classify") as cspan:
                planned = self.planner.plan(
                    constraints,
                    candidates,
                    item=item,
                    region_override=region_override,
                    explain=xb is not None,
                )
                cspan.set(case=planned.case, item_id=item.item_id)
                planned.plan.query_id = current_query_id()
            if xb is not None:
                xb.set_plan(planned)
            if planned.case == CASE_EXACT:
                self.cache.touch(item, case=CASE_EXACT)
                qspan.set(case=CASE_EXACT, cache_hit=True)
                return QueryOutcome(
                    skyline=item.skyline.copy(),
                    method=self.name,
                    timings=watch.timings,
                    case=CASE_EXACT,
                    stable=True,
                    cache_hit=True,
                )
        mpr = planned.mpr

        with watch.stage("fetch_wall"):
            fetch = self.executor.fetch(
                self.backend, planned.plan.boxes, retry_state
            )
        if xb is not None:
            xb.set_fetch(fetch)
        fetched = fetch.result

        with watch.stage("skyline"):
            with obs.tracer.span("skyline.merge") as mspan:
                if len(fetched) == 0:
                    # Nothing new: the surviving cached points are already a
                    # skyline among themselves (Definition 1), and by Theorem 6
                    # they are complete -- e.g. case b's "just filter" shortcut.
                    skyline = mpr.surviving
                else:
                    pool = (
                        np.vstack([mpr.surviving, fetched.points])
                        if len(mpr.surviving)
                        else fetched.points
                    )
                    skyline = pool[self.skyline_algorithm(pool)]
                if obs.enabled:
                    mspan.set(
                        cached=len(mpr.surviving),
                        fetched=len(fetched),
                        skyline=len(skyline),
                    )

        self.cache.touch(item, case=planned.case)
        if self.cache_results:
            inserted = self.cache.insert(constraints, skyline)
            if (
                verify
                and inserted is not None
                and retry_state is not None
                and retry_state.retries
            ):
                # The fetch path saw faults: re-verify what we just stored
                # so a slipped-through corruption cannot poison later queries.
                self.cache.verify_and_heal(inserted)
        io = self.table.stats.delta_since(io_before)
        self._record_fetch_timings(watch, io, fetch)
        qspan.set(case=planned.case, cache_hit=True, stable=mpr.stable)
        return QueryOutcome(
            skyline=skyline,
            method=self.name,
            timings=watch.timings,
            io=io,
            case=planned.case,
            stable=mpr.stable,
            cache_hit=True,
        )

    def explain(self, constraints: Constraints) -> QueryPlan:
        """Describe how a query would be answered, without executing it.

        Delegates to the same :class:`~repro.core.planner.Planner` the
        execution path runs, so the plan agrees with execution by
        construction.  Performs the cache search, strategy selection and
        region computation but issues no disk fetches and leaves the cache
        untouched (no use counters, no insertion, no
        ``strategy_selections_total`` increments) -- safe to call
        repeatedly, and an ``explain()`` before a ``query()`` counts the
        pair as exactly one lookup and one selection.  The returned plan's
        ``candidates_scored`` lists every candidate considered with its
        score and rejection reason.
        """
        if constraints.ndim != self.table.ndim:
            raise ValueError("constraints dimensionality does not match the table")
        candidates = self.cache.candidates(constraints, record=False)
        return self.planner.plan(
            constraints, candidates, record=False, explain=True
        ).plan

    # ------------------------------------------------------------------
    # Cache management helpers
    # ------------------------------------------------------------------
    def warm(self, queries) -> int:
        """Preload the cache by answering ``queries``; returns #items cached.

        Used for the paper's independent-query workload, which "assumes a
        preloaded cache with 2000 queries" (Section 7.1).
        """
        for constraints in queries:
            self.query(constraints)
        return len(self.cache)

    def _query_miss(
        self,
        constraints: Constraints,
        watch: Stopwatch,
        io_before,
        retry_state=None,
        xb=None,
    ) -> QueryOutcome:
        """Cache miss: compute naively (range query + skyline algorithm)."""
        boxes = [constraints.region()]
        if xb is not None:
            xb.set_miss(constraints, boxes)
        with watch.stage("fetch_wall"):
            fetch = self.executor.fetch(self.backend, boxes, retry_state)
        if xb is not None:
            xb.set_fetch(fetch)
        result = fetch.result
        with watch.stage("skyline"):
            skyline = result.points[self.skyline_algorithm(result.points)]
        if self.cache_results:
            self.cache.insert(constraints, skyline)
        io = self.table.stats.delta_since(io_before)
        self._record_fetch_timings(watch, io, fetch)
        return QueryOutcome(
            skyline=skyline,
            method=self.name,
            timings=watch.timings,
            io=io,
            case=CASE_MISS,
            stable=None,
            cache_hit=False,
        )

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _answer_degraded(
        self, constraints: Constraints, qspan, state, cause, deadline=None, xb=None
    ) -> QueryOutcome:
        """Walk the ladder after the normal plan gave up (``cause``).

        Rungs, in order -- each still labeled in ``QueryOutcome.degraded``:

        1. ``ampr``: re-plan with a 1-NN aMPR (fewer, larger range queries
           mean fewer fault opportunities); skipped when the engine already
           runs an aMPR.  The answer is still exact.
        2. ``bounding``: a single range query over the whole constraint
           region plus a from-scratch skyline -- one fetch, still exact.
        3. ``stale``: serve the best-overlap cached skyline filtered to the
           query region, flagged ``stale=True`` (may miss points whose
           dominators fell outside the cached region).
        4. ``unavailable``: the empty last resort when storage is down and
           nothing cached overlaps.

        A per-request ``deadline`` gates the descent: each fetching rung is
        only attempted while budget remains, and a rung interrupted by
        :class:`DeadlineExceeded` falls straight through to the stale-serve
        rung (no further fetching).  If the deadline is spent and nothing
        is cached, the exception propagates as the typed outcome.
        """
        obs = self.obs

        deadline_hit = False
        if self._fallback_region is not None and not (
            deadline is not None and deadline.expired
        ):
            rung_state = self.resilience.new_state(deadline=deadline)
            try:
                outcome = self._answer(
                    constraints,
                    qspan,
                    retry_state=rung_state,
                    region_override=self._fallback_region,
                    xb=xb,
                )
                outcome.degraded = RUNG_AMPR
                qspan.set(degraded=RUNG_AMPR)
                state.retries += rung_state.retries
                return outcome
            except DeadlineExceeded:
                state.retries += rung_state.retries
                deadline_hit = True
            except DEGRADABLE:
                state.retries += rung_state.retries

        if not deadline_hit and not (deadline is not None and deadline.expired):
            rung_state = self.resilience.new_state(deadline=deadline)
            try:
                watch = Stopwatch(tracer=obs.tracer, profiler=obs.profiler)
                io_before = self.table.stats.snapshot()
                outcome = self._query_miss(
                    constraints, watch, io_before, rung_state, xb=xb
                )
                outcome.degraded = RUNG_BOUNDING
                qspan.set(degraded=RUNG_BOUNDING)
                state.retries += rung_state.retries
                return outcome
            except DeadlineExceeded:
                state.retries += rung_state.retries
                deadline_hit = True
            except DEGRADABLE:
                state.retries += rung_state.retries

        if deadline_hit or (deadline is not None and deadline.expired):
            self.obs.metrics.inc("query_deadline_exceeded_total", method=self.name)

        stale = self._serve_stale(constraints, qspan)
        if stale is not None:
            return stale

        if deadline is not None and deadline.expired:
            # Out of time and nothing cached: surface the typed outcome
            # rather than inventing an empty "unavailable" answer.
            deadline.check("degradation ladder")

        qspan.set(degraded=RUNG_UNAVAILABLE)
        return QueryOutcome(
            skyline=np.empty((0, constraints.ndim)),
            method=self.name,
            case=None,
            stable=None,
            cache_hit=False,
            degraded=RUNG_UNAVAILABLE,
            stale=True,
        )

    def _serve_stale(self, constraints: Constraints, qspan) -> Optional[QueryOutcome]:
        """The stale-serve rung: best-overlap cached skyline filtered to the
        query region, flagged ``stale=True``; None when nothing cached
        overlaps (or every candidate fails verification)."""
        verify = self.resilience.verify_cache
        with self.obs.tracer.span("cbcs.stale_serve"):
            candidates = self.cache.candidates(constraints, record=False)
            while candidates:
                best = max(
                    candidates,
                    key=lambda c: c.constraints.overlap_volume(constraints),
                )
                if not verify or self.cache.verify_and_heal(best):
                    points = best.skyline[constraints.satisfied_mask(best.skyline)]
                    qspan.set(degraded=RUNG_STALE, item_id=best.item_id)
                    return QueryOutcome(
                        skyline=points.copy(),
                        method=self.name,
                        case=None,
                        stable=None,
                        cache_hit=True,
                        degraded=RUNG_STALE,
                        stale=True,
                    )
                candidates = [c for c in candidates if c is not best]
        return None
