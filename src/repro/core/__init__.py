"""Cache-Based Constrained Skyline (CBCS) -- the paper's contribution.

Modules:

- :mod:`~repro.core.stability` -- when a cached skyline's non-members remain
  non-members under new constraints (Definition 4, Theorem 1, Corollaries
  1-2);
- :mod:`~repro.core.cases` -- the four incremental single-bound overlap
  cases and their specialized minimal-read solutions (Theorems 2-5);
- :mod:`~repro.core.mpr` -- the Missing Points Region: the minimal region
  that must be fetched for arbitrary constraint changes, decomposed into
  disjoint range queries (Definition 5, Algorithm 1, Theorems 6-7);
- :mod:`~repro.core.ampr` -- the approximate MPR that prunes with only the
  k cached skyline points nearest the query (Section 5.3);
- :mod:`~repro.core.cache` -- the in-memory skyline cache indexed by an
  R*-tree over result MBRs, with LRU/LCU replacement (Sections 6, 6.2);
- :mod:`~repro.core.strategies` -- the seven cache search strategies of
  Section 6.1;
- :mod:`~repro.core.planner` -- the pure planning layer (selection, case
  classification, MPR planning; zero I/O) behind both ``CBCS.explain`` and
  execution;
- :mod:`~repro.core.executor` -- runs a plan's disjoint range queries
  against a storage backend, optionally overlapped on a worker pool;
- :mod:`~repro.core.cbcs` -- the CBCS query engine tying it all together.

Extensions beyond the paper's evaluation (flagged as future work there):

- :mod:`~repro.core.multi` -- multi-item cache exploitation (Section 6.3);
- :mod:`~repro.core.dynamic` -- dynamic data with continuous per-item
  skyline maintenance (Section 6.2).
"""

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cache import CacheItem, SkylineCache
from repro.core.cases import (
    CASE_A,
    CASE_B,
    CASE_C,
    CASE_D,
    CASE_DISJOINT,
    CASE_EXACT,
    GENERAL_STABLE,
    GENERAL_UNSTABLE,
    classify_change,
)
from repro.core.cbcs import CBCS
from repro.core.dynamic import DynamicCBCS
from repro.core.executor import Executor, FetchOutcome
from repro.core.planner import PlannedQuery, Planner, QueryPlan
from repro.core.mpr import MPRResult, compute_mpr
from repro.core.multi import MultiItemMPR
from repro.core.stability import guaranteed_stable, is_stable_for
from repro.core.strategies import (
    CostBased,
    MaxOverlap,
    MaxOverlapSP,
    OptimumDistance,
    Prioritized1D,
    PrioritizedND,
    RandomStrategy,
    default_strategy_suite,
)

__all__ = [
    "ApproximateMPR",
    "CASE_A",
    "CASE_B",
    "CASE_C",
    "CASE_D",
    "CASE_DISJOINT",
    "CASE_EXACT",
    "CBCS",
    "CacheItem",
    "CostBased",
    "DynamicCBCS",
    "ExactMPR",
    "Executor",
    "FetchOutcome",
    "PlannedQuery",
    "Planner",
    "QueryPlan",
    "GENERAL_STABLE",
    "GENERAL_UNSTABLE",
    "MPRResult",
    "MaxOverlap",
    "MaxOverlapSP",
    "MultiItemMPR",
    "OptimumDistance",
    "Prioritized1D",
    "PrioritizedND",
    "RandomStrategy",
    "SkylineCache",
    "classify_change",
    "compute_mpr",
    "default_strategy_suite",
    "guaranteed_stable",
    "is_stable_for",
]
