"""Pluggable persistence backends behind :class:`~repro.core.cache.SkylineCache`.

The cache API (insert / candidates / quarantine / ...) is unchanged; a
backend only decides what happens to mutations *besides* the in-memory
R*-tree.  Mirroring PartitionCache's ``cache_handler`` hierarchy (one
abstract contract, many swappable backends):

- :class:`MemoryCacheBackend` -- the default; every hook is a no-op, so a
  cache built with it is bit-identical to the historic backend-less cache.
- :class:`DiskCacheBackend` -- durable: every mutation is journaled to a
  CRC-framed :class:`~repro.storage.wal.WriteAheadLog` *as it happens*,
  and every ``checkpoint_every`` mutations the whole cache is snapshotted
  atomically (checksummed ``.npz``, temp-file + rename) and the WAL
  pruned.  Reopening the same directory warm-restarts the cache: last
  snapshot + WAL tail replay, with torn tails truncated and corrupt
  snapshots rejected (cold start) instead of silently loaded.

Layout of a :class:`DiskCacheBackend` directory::

    cache-dir/
      snapshot.npz      checksummed cache snapshot (atomic replace)
      meta.json         {"checkpoint_lsn": N}      (atomic replace)
      wal/wal-*.log     mutation journal (put/del/clear records)

Stacked under an engine, the write order per mutation is WAL append ->
in-memory apply -> (maybe) checkpoint, so recovery converges on the
pre-crash cache no matter where the crash lands (see
``docs/robustness.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Protocol, runtime_checkable

from repro.geometry.constraints import Constraints
from repro.ioutil import atomic_write_json
from repro.ioutil import decode_array as _decode_array
from repro.ioutil import encode_array as _encode_array
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "CacheBackend",
    "MemoryCacheBackend",
    "DiskCacheBackend",
]


@runtime_checkable
class CacheBackend(Protocol):
    """What a :class:`~repro.core.cache.SkylineCache` needs from a backend.

    ``attach`` is called exactly once, from the cache constructor, and is
    where a persistent backend restores saved state into the (still empty)
    cache.  The ``record_*`` hooks fire under the cache lock, after the
    in-memory structures already reflect the mutation.
    """

    def attach(self, cache) -> None: ...

    def record_put(self, item) -> None: ...

    def record_del(self, item) -> None: ...

    def record_clear(self) -> None: ...

    def checkpoint(self) -> None: ...

    def close(self) -> None: ...


class MemoryCacheBackend:
    """Today's behavior: the cache lives in process memory only."""

    persistent = False

    def attach(self, cache) -> None:
        self.cache = cache

    def record_put(self, item) -> None:
        pass

    def record_del(self, item) -> None:
        pass

    def record_clear(self) -> None:
        pass

    def checkpoint(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "MemoryCacheBackend()"


class DiskCacheBackend:
    """WAL-journaled, checkpointed persistence for the skyline cache.

    ``fsync=True`` makes each mutation durable before the cache applies
    it; ``checkpoint_every=N`` snapshots after every N journaled
    mutations (None disables automatic checkpoints -- call
    :meth:`checkpoint` yourself, e.g. at shutdown).

    ``on_corrupt`` selects the warm-restart policy when the snapshot fails
    validation: ``"cold"`` (default) starts empty -- the WAL tail is
    discarded too, because its records assume the snapshot state -- and
    counts ``cache_restore_corrupt_total``; ``"raise"`` propagates the
    :class:`~repro.core.cache.CorruptCacheError` to the caller.
    """

    persistent = True

    def __init__(
        self,
        directory,
        fsync: bool = True,
        checkpoint_every: Optional[int] = 64,
        injector=None,
        metrics=None,
        on_corrupt: str = "cold",
    ):
        from repro.storage.wal import WriteAheadLog

        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive (or None)")
        if on_corrupt not in ("cold", "raise"):
            raise ValueError(f"unknown on_corrupt policy {on_corrupt!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / "snapshot.npz"
        self.meta_path = self.directory / "meta.json"
        self.checkpoint_every = checkpoint_every
        self.injector = injector
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.on_corrupt = on_corrupt
        self.wal = WriteAheadLog(
            self.directory / "wal",
            fsync=fsync,
            injector=injector,
            metrics=self.metrics,
        )
        # Checkpoints prune covered segments; restore the LSN horizon from
        # the checkpoint meta so fresh appends never reuse skipped LSNs.
        self.wal.last_lsn = max(self.wal.last_lsn, self._checkpoint_lsn())
        self.cache = None
        self._restoring = False
        self._mutations_since_checkpoint = 0
        #: set by :meth:`attach`: items restored from snapshot + WAL tail
        self.restored_items = 0
        self.restored_from: Optional[str] = None

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------
    def _checkpoint_lsn(self) -> int:
        try:
            with open(self.meta_path) as handle:
                return int(json.load(handle).get("checkpoint_lsn", 0))
        except (OSError, ValueError):
            return 0

    def attach(self, cache) -> None:
        """Restore persisted state (snapshot + WAL tail) into ``cache``."""
        from repro.core.cache import CorruptCacheError

        self.cache = cache
        self._restoring = True
        try:
            restored = 0
            source = None
            checkpoint_lsn = 0
            if self.snapshot_path.exists():
                try:
                    restored = cache.load_into(self.snapshot_path)
                    checkpoint_lsn = self._checkpoint_lsn()
                    source = "snapshot"
                except CorruptCacheError:
                    if self.on_corrupt == "raise":
                        raise
                    # Cold start: the WAL tail is relative to the snapshot
                    # we just rejected, so it must be discarded with it.
                    self.metrics.inc("cache_restore_corrupt_total")
                    cache.clear()
                    self.wal.rotate()
                    self.wal.prune(self.wal.last_lsn)
                    self.restored_items = 0
                    self.restored_from = "cold"
                    return
            replayed = self._replay_tail(after_lsn=checkpoint_lsn)
            if replayed:
                source = "snapshot+wal" if source else "wal"
            self.restored_items = len(cache)
            self.restored_from = source or "cold"
            if restored or replayed:
                self.metrics.inc("cache_restored_items_total", len(cache))
        finally:
            self._restoring = False

    def _replay_tail(self, after_lsn: int) -> int:
        """Apply WAL records past the checkpoint onto the live cache."""
        replayed = 0
        for record in self.wal.replay(after_lsn=after_lsn):
            payload = record.payload
            op = payload.get("op")
            if op == "put":
                item = self.cache.insert(
                    Constraints(payload["lo"], payload["hi"]),
                    _decode_array(payload["sky"]),
                )
                if item is not None and "meta" in payload:
                    inserted_at, last_used, use_count = payload["meta"]
                    item.inserted_at = int(inserted_at)
                    item.last_used = int(last_used)
                    item.use_count = int(use_count)
            elif op == "del":
                existing = self.cache.exact_match(
                    Constraints(payload["lo"], payload["hi"])
                )
                if existing is not None:
                    self.cache.remove(existing)
            elif op == "clear":
                self.cache.clear()
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Journaling hooks (called under the cache lock)
    # ------------------------------------------------------------------
    def record_put(self, item) -> None:
        if self._restoring:
            return
        self.wal.append(
            {
                "op": "put",
                "lo": list(map(float, item.constraints.lo)),
                "hi": list(map(float, item.constraints.hi)),
                "sky": _encode_array(item.skyline),
                "meta": [item.inserted_at, item.last_used, item.use_count],
            }
        )
        self._after_mutation()

    def record_del(self, item) -> None:
        if self._restoring:
            return
        self.wal.append(
            {
                "op": "del",
                "lo": list(map(float, item.constraints.lo)),
                "hi": list(map(float, item.constraints.hi)),
            }
        )
        self._after_mutation()

    def record_clear(self) -> None:
        if self._restoring:
            return
        self.wal.append({"op": "clear"})
        self._after_mutation()

    def _after_mutation(self) -> None:
        self._mutations_since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._mutations_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the cache atomically, then prune the covered WAL.

        Commit order: snapshot replace -> meta (checkpoint LSN) replace ->
        WAL rotate + prune.  A crash between any two steps recovers: an
        old meta means some WAL records replay onto a newer snapshot,
        which is idempotent (puts are upserts, dels tolerate misses).
        """
        if self.cache is None:
            return
        crashpoint = (
            self.injector.crash_check if self.injector is not None else None
        )
        lsn = self.wal.last_lsn
        self.cache.save(self.snapshot_path, crashpoint=crashpoint)
        atomic_write_json(self.meta_path, {"checkpoint_lsn": lsn})
        self.wal.rotate()
        self.wal.prune(lsn)
        self._mutations_since_checkpoint = 0
        self.metrics.inc("cache_checkpoints_total")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Checkpoint once more (cheap warm start next time) and close."""
        self.checkpoint()
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DiskCacheBackend({str(self.directory)!r}, "
            f"checkpoint_every={self.checkpoint_every})"
        )
