"""The four incremental overlap cases and their solutions (Section 4.2).

When a user refines a query, the new constraints usually differ from the old
in exactly one bound of one dimension.  There are then only four cases,
regardless of dimensionality (paper Figure 3):

==========  ============================  ==========  =====================
case        change                        stable?     fetch
==========  ============================  ==========  =====================
``case_a``  lower constraint decreased    yes         Delta C (Thm. 2)
``case_b``  upper constraint decreased    yes         nothing (Thm. 3)
``case_c``  upper constraint increased    yes         Delta C minus cached
                                                      dominance (Thm. 4)
``case_d``  lower constraint increased    no          invalidated overlap
                                                      minus surviving
                                                      dominance (Thm. 5)
==========  ============================  ==========  =====================

:func:`classify_change` detects the case for any pair of constraints (also
labelling exact matches, disjoint regions and general multi-bound changes by
their stability), and the ``solve_case_*`` functions implement Theorems 2-5
directly.  The CBCS engine reaches the same results through the general MPR
(these cases are special cases of Definition 5); the direct solutions
document the theory and serve as cross-checks in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.stability import guaranteed_stable
from repro.geometry.box import Box
from repro.geometry.constraints import Constraints, delta_region
from repro.skyline.sfs import sfs_skyline

CASE_EXACT = "exact"
CASE_A = "case_a"
CASE_B = "case_b"
CASE_C = "case_c"
CASE_D = "case_d"
GENERAL_STABLE = "general_stable"
GENERAL_UNSTABLE = "general_unstable"
CASE_DISJOINT = "disjoint"

SINGLE_BOUND_CASES = (CASE_A, CASE_B, CASE_C, CASE_D)


def classify_change(old: Constraints, new: Constraints) -> str:
    """Return the overlap-case label for an old/new constraint pair."""
    if old.ndim != new.ndim:
        raise ValueError("constraint dimensionality mismatch")
    if old == new:
        return CASE_EXACT
    if not old.overlaps(new):
        return CASE_DISJOINT
    lower_diff = np.flatnonzero(old.lo != new.lo)
    upper_diff = np.flatnonzero(old.hi != new.hi)
    if len(lower_diff) + len(upper_diff) == 1:
        if len(lower_diff) == 1:
            dim = int(lower_diff[0])
            return CASE_A if new.lo[dim] < old.lo[dim] else CASE_D
        dim = int(upper_diff[0])
        return CASE_B if new.hi[dim] < old.hi[dim] else CASE_C
    return GENERAL_STABLE if guaranteed_stable(old, new) else GENERAL_UNSTABLE


def classify_dimension_changes(old: Constraints, new: Constraints) -> List[str]:
    """Return the per-bound case labels of every changed bound.

    Used by the PrioritizednD strategy, which "independently scor[es] the
    four cases ... penalizing cache items for each dimension where
    constraints differ from the queried" (Section 6.1).
    """
    labels: List[str] = []
    for dim in range(old.ndim):
        if new.lo[dim] < old.lo[dim]:
            labels.append(CASE_A)
        elif new.lo[dim] > old.lo[dim]:
            labels.append(CASE_D)
        if new.hi[dim] < old.hi[dim]:
            labels.append(CASE_B)
        elif new.hi[dim] > old.hi[dim]:
            labels.append(CASE_C)
    return labels


@dataclass
class CaseSolution:
    """What a case solution fetches and what it merges with.

    - ``fetch_boxes``: disjoint regions to read from disk (the gray regions
      of Figure 3);
    - ``reusable``: cached skyline points that enter the final skyline
      computation;
    - ``needs_skyline_pass``: False when the reusable points *are* the final
      answer (case b), True when ``Sky(reusable + fetched, C')`` must be
      computed.
    """

    fetch_boxes: List[Box]
    reusable: np.ndarray
    needs_skyline_pass: bool = True

    def solve(self, fetched_points: np.ndarray) -> np.ndarray:
        """Combine cached and fetched points into the final skyline."""
        if not self.needs_skyline_pass and len(fetched_points) == 0:
            return self.reusable
        pool = (
            np.vstack([self.reusable, fetched_points])
            if len(self.reusable)
            else np.asarray(fetched_points, dtype=float)
        )
        return pool[sfs_skyline(pool)]


def solve_case_a(
    old: Constraints, new: Constraints, skyline: np.ndarray
) -> CaseSolution:
    """Theorem 2: lower constraint decreased.

    Stable; every cached skyline point still satisfies ``new``.  Fetch all of
    ``Delta C`` -- no cached point can dominate any part of it (cached points
    are above the old lower bound, Delta C lies below it in the changed
    dimension).
    """
    return CaseSolution(fetch_boxes=delta_region(old, new), reusable=skyline)


def solve_case_b(
    old: Constraints, new: Constraints, skyline: np.ndarray
) -> CaseSolution:
    """Theorem 3: upper constraint decreased.

    Stable and shrinking: the new skyline is exactly the cached skyline
    filtered by the new constraints.  Nothing is fetched and no dominance
    tests are needed.
    """
    surviving = skyline[new.satisfied_mask(skyline)] if len(skyline) else skyline
    return CaseSolution(fetch_boxes=[], reusable=surviving, needs_skyline_pass=False)


def solve_case_c(
    old: Constraints, new: Constraints, skyline: np.ndarray
) -> CaseSolution:
    """Theorem 4: upper constraint increased.

    Stable; fetch ``Delta C`` minus the dominance regions of the cached
    skyline points (they all still satisfy ``new`` and can prune the
    expansion, unlike in case a).
    """
    boxes = delta_region(old, new)
    boxes = _subtract_dominance(boxes, skyline)
    return CaseSolution(fetch_boxes=boxes, reusable=skyline)


def solve_case_d(
    old: Constraints, new: Constraints, skyline: np.ndarray
) -> CaseSolution:
    """Theorem 5: lower constraint increased -- the unstable case.

    Cached skyline points below the new lower bound are expelled; the parts
    of the (shrunken) region they used to dominate are invalidated and must
    be re-read, except where a *surviving* cached skyline point still
    dominates.
    """
    skyline = np.asarray(skyline, dtype=float)
    surviving_mask = (
        new.satisfied_mask(skyline) if len(skyline) else np.zeros(0, dtype=bool)
    )
    surviving = skyline[surviving_mask]
    removed = skyline[~surviving_mask]

    invalid: List[Box] = []
    remaining = [new.region()]
    for t in removed:
        corner = Box.corner_at_least(t)
        next_remaining: List[Box] = []
        for piece in remaining:
            hit = piece.intersect(corner)
            if not hit.is_empty():
                invalid.append(hit)
            next_remaining.extend(piece.subtract_corner(t))
        remaining = next_remaining
    invalid = _subtract_dominance(invalid, surviving)
    return CaseSolution(fetch_boxes=invalid, reusable=surviving)


def _subtract_dominance(boxes: List[Box], points: np.ndarray) -> List[Box]:
    """Remove the (closed) dominance region of every point from each box."""
    pieces = [b for b in boxes if not b.is_empty()]
    for u in np.asarray(points, dtype=float):
        corner = Box.corner_at_least(u)
        next_pieces: List[Box] = []
        for piece in pieces:
            if piece.overlaps(corner):
                next_pieces.extend(piece.subtract_corner(u))
            else:
                next_pieces.append(piece)
        pieces = next_pieces
        if not pieces:
            break
    return pieces


CASE_SOLVERS = {
    CASE_A: solve_case_a,
    CASE_B: solve_case_b,
    CASE_C: solve_case_c,
    CASE_D: solve_case_d,
}


def solve_single_bound_case(
    old: Constraints, new: Constraints, skyline: np.ndarray
) -> Tuple[str, CaseSolution]:
    """Classify a single-bound change and apply its specialized solution."""
    case = classify_change(old, new)
    if case not in CASE_SOLVERS:
        raise ValueError(
            f"constraints differ by more than one bound (classified {case!r})"
        )
    return case, CASE_SOLVERS[case](old, new, skyline)
