"""The pure planning layer of the CBCS engine.

:class:`Planner` owns everything about answering Sky(S, C') that can be
decided *without touching the disk*: which cached skyline to reuse (via the
configured :class:`~repro.core.strategies.CacheSearchStrategy`), which
overlap case the query falls into (Section 5's cases a-d), and which
disjoint range queries cover the missing-points region (exact MPR or aMPR).
It emits a :class:`QueryPlan` -- the engine's EXPLAIN record -- plus the
intermediate products the executor needs to actually run it.

Both :meth:`repro.core.cbcs.CBCS.explain` and the execution path call the
same :meth:`Planner.plan`, so explain/execute agreement holds by
construction: there is exactly one piece of code that decides what a query
will do.

The planner performs zero I/O.  Its only inputs are the query constraints,
the candidate cache items (the caller does the cache search, because the
R*-tree lookup is stateful -- hit/miss counters, verification), and an
I/O-free per-dimension selectivity estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.cases import CASE_EXACT, classify_change
from repro.geometry.box import Box
from repro.geometry.constraints import Constraints

CASE_MISS = "miss"


def score_as_json(score):
    """Render a strategy score (float / tuple / None) as strict JSON."""
    if score is None:
        return None
    if isinstance(score, (tuple, list)):
        return [float(part) for part in score]
    return float(score)


@dataclass
class QueryPlan:
    """A dry-run description of how CBCS would answer a query.

    Produced by :meth:`Planner.plan` (surfaced as :meth:`CBCS.explain`)
    without touching the disk or mutating the cache -- the EXPLAIN of this
    engine.  ``estimated_points`` uses the table's per-dimension selectivity
    estimates for each planned range query, so it is an upper-bound style
    estimate, not an exact count.
    """

    case: str
    cache_hit: bool
    stable: Optional[bool]
    candidates: int
    item_id: Optional[int]
    reusable_points: int
    range_queries: int
    estimated_points: int
    boxes: List[Box] = field(default_factory=list)
    #: correlation id of the query this plan was produced for; stamped by
    #: the engine during execution (``explain`` plans keep the default None)
    query_id: Optional[str] = None
    #: per-candidate scoring table (one dict per cache item considered,
    #: with overlap/case/score and a rejection reason); filled only when
    #: the plan was built with ``explain=True`` -- see
    #: :meth:`Planner.candidate_table`
    candidates_scored: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the plan.

        Infinite box bounds become ``None`` so the result round-trips
        through strict JSON; used by the plan-accuracy audit
        (:mod:`repro.obs.audit`) and the bench ``--json`` dump.
        """
        record = {
            "case": self.case,
            "cache_hit": self.cache_hit,
            "stable": self.stable,
            "candidates": self.candidates,
            "item_id": self.item_id,
            "reusable_points": self.reusable_points,
            "range_queries": self.range_queries,
            "estimated_points": self.estimated_points,
            "boxes": [box.to_dict() for box in self.boxes],
        }
        if self.query_id is not None:
            record["query_id"] = self.query_id
        if self.candidates_scored:
            record["candidates_scored"] = [
                dict(row) for row in self.candidates_scored
            ]
        return record

    def summary(self) -> str:
        """One-line human-readable rendering."""
        source = f"item #{self.item_id}" if self.cache_hit else "no cache item"
        return (
            f"case={self.case} via {source} ({self.candidates} candidates); "
            f"reuse {self.reusable_points} cached points, issue "
            f"{self.range_queries} range queries (~{self.estimated_points} "
            f"points)"
        )


@dataclass
class PlannedQuery:
    """A :class:`QueryPlan` plus the working state the executor needs.

    ``plan`` is the serializable EXPLAIN record; ``item`` is the selected
    cache item (None on a miss) and ``mpr`` the computed missing-points
    region (None on a miss or an exact hit, where there is nothing to
    fetch).  ``mpr.boxes == plan.boxes`` whenever ``mpr`` is set.
    """

    plan: QueryPlan
    constraints: Constraints
    item: Optional[object] = None
    mpr: Optional[object] = None

    @property
    def case(self) -> str:
        return self.plan.case


class Planner:
    """Pure query planner: cache-item selection + case + region, no I/O.

    ``estimate_count(dim, lo, hi)`` must be an in-memory selectivity
    estimate (the table's histogram lookup) -- the planner trusts it to
    charge no simulated I/O.
    """

    def __init__(
        self,
        strategy,
        region_computer,
        estimate_count: Callable[[int, float, float], int],
    ):
        self.strategy = strategy
        self.region = region_computer
        self.estimate_count = estimate_count

    def select(
        self, constraints: Constraints, candidates, record: bool = True
    ) -> Optional[object]:
        """Pick the cache item to reuse, or None when nothing qualifies.

        ``record=False`` (the explain-only path) suppresses the strategy's
        selection span and ``strategy_selections_total`` counter so a
        dry-run plan leaves the observability counters untouched.
        """
        if not candidates:
            return None
        return self.strategy.select(constraints, candidates, record=record)

    def candidate_row(
        self,
        constraints: Constraints,
        item,
        selected: bool = False,
        rejection: Optional[str] = None,
    ) -> dict:
        """One candidate's scoring-table entry (strict-JSON dict)."""
        return {
            "item_id": item.item_id,
            "case": classify_change(item.constraints, constraints),
            "overlap_volume": float(
                item.constraints.overlap_volume(constraints)
            ),
            "skyline_size": int(item.skyline_size),
            "score": score_as_json(self.strategy.score(constraints, item)),
            "selected": bool(selected),
            "rejection": None if selected else rejection,
        }

    def candidate_table(
        self, constraints: Constraints, candidates, chosen=None
    ) -> List[dict]:
        """Score every candidate the strategy considered, selected first.

        Each row carries the candidate's overlap volume, incremental case,
        strategy score, and -- for the unselected -- a machine-readable
        rejection reason (the strategy's ``rejection_reason``, e.g.
        ``"outscored"``).  Pure and side-effect free: scoring never touches
        the disk or the cache counters.
        """
        rows = [
            self.candidate_row(
                constraints,
                item,
                selected=item is chosen,
                rejection=self.strategy.rejection_reason,
            )
            for item in candidates
        ]
        rows.sort(key=lambda row: not row["selected"])
        return rows

    def plan(
        self,
        constraints: Constraints,
        candidates,
        item=None,
        region_override=None,
        record: bool = True,
        explain: bool = False,
    ) -> PlannedQuery:
        """Plan one query against the given (already verified) candidates.

        ``item`` lets the caller pass a pre-selected (and cache-verified)
        item so selection is not repeated; with the default None the
        strategy picks from ``candidates``.  ``region_override`` substitutes
        the degradation ladder's aMPR re-plan for the configured region
        computer.  ``record=False`` keeps a dry-run plan out of the
        selection counters; ``explain=True`` additionally fills the plan's
        :attr:`QueryPlan.candidates_scored` provenance table.
        """
        if item is None:
            item = self.select(constraints, candidates, record=record)
        scored = (
            self.candidate_table(constraints, candidates, chosen=item)
            if explain
            else []
        )
        if item is None:
            region = constraints.region()
            plan = QueryPlan(
                case=CASE_MISS,
                cache_hit=False,
                stable=None,
                candidates=0,
                item_id=None,
                reusable_points=0,
                range_queries=1,
                estimated_points=self.estimate_box(region),
                boxes=[region],
                candidates_scored=scored,
            )
            return PlannedQuery(plan=plan, constraints=constraints)

        case = classify_change(item.constraints, constraints)
        if case == CASE_EXACT:
            plan = QueryPlan(
                case=CASE_EXACT,
                cache_hit=True,
                stable=True,
                candidates=len(candidates),
                item_id=item.item_id,
                reusable_points=item.skyline_size,
                range_queries=0,
                estimated_points=0,
                candidates_scored=scored,
            )
            return PlannedQuery(plan=plan, constraints=constraints, item=item)

        mpr = self.compute_region(
            item, candidates, constraints, region_override=region_override
        )
        plan = QueryPlan(
            case=case,
            cache_hit=True,
            stable=mpr.stable,
            candidates=len(candidates),
            item_id=item.item_id,
            reusable_points=len(mpr.surviving),
            range_queries=len(mpr.boxes),
            estimated_points=sum(self.estimate_box(b) for b in mpr.boxes),
            boxes=list(mpr.boxes),
            candidates_scored=scored,
        )
        return PlannedQuery(plan=plan, constraints=constraints, item=item, mpr=mpr)

    def estimate_box(self, box: Box) -> int:
        """Most-selective-dimension estimate of a box's row count."""
        return min(
            self.estimate_count(i, iv.lo, iv.hi)
            for i, iv in enumerate(box.intervals)
        )

    def compute_region(self, item, candidates, constraints, region_override=None):
        """Compute the missing-points region for the chosen item.

        Region computers exposing ``compute_multi`` (the Section 6.3
        multi-item extension, :class:`repro.core.multi.MultiItemMPR`)
        receive the strategy's pick first plus the remaining candidates
        ranked by overlap volume; single-item computers get the pick alone.
        """
        region = self.region if region_override is None else region_override
        if hasattr(region, "compute_multi") and len(candidates) > 1:
            others = sorted(
                (c for c in candidates if c is not item),
                key=lambda c: c.constraints.overlap_volume(constraints),
                reverse=True,
            )
            ranked = [(item.constraints, item.skyline)] + [
                (c.constraints, c.skyline) for c in others
            ]
            return region.compute_multi(ranked, constraints)
        return region.compute(item.constraints, item.skyline, constraints)
