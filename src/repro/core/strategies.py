"""Cache search strategies (paper Section 6.1).

When several cached items overlap a query, a strategy picks the one expected
to be cheapest to complete.  All seven strategies from the paper are
implemented; each takes the query constraints and the candidate items and
returns one item.

- **Random** -- uniform choice (the control).
- **MaxOverlap** -- largest overlap volume between the item's constraint
  region and the query region (high overlap means a small MPR).
- **MaxOverlapSP** -- like MaxOverlap but stable items are always preferred
  over unstable ones, "even if there is an unstable option with a higher
  degree of overlap".
- **Prioritized1D** -- prefers simple single-bound cases in the paper's
  experimentally chosen order: case b, case c, case a, general stable,
  case d, general unstable; ties broken by overlap.
- **PrioritizedND(c1, c2, c3, c4)** -- scores each changed bound by its case
  penalty and sums, "penalizing cache items for each dimension where
  constraints differ"; lowest total wins, ties broken by overlap.  The
  paper's tuned variant is (10, 0, 5, 20) ("Std") and the deliberately bad
  one (10, 50, 30, 0) ("Bad").
- **OptimumDistance** -- smallest distance between the item's and the
  query's lower constraint corner, "to give priority to likely dominating
  regions".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.cache import CacheItem
from repro.core.cases import (
    CASE_A,
    CASE_B,
    CASE_C,
    CASE_D,
    CASE_EXACT,
    GENERAL_STABLE,
    GENERAL_UNSTABLE,
    classify_change,
    classify_dimension_changes,
)
from repro.core.stability import guaranteed_stable
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS

Rng = Union[int, np.random.Generator, None]


class CacheSearchStrategy:
    """Base class: rank candidate items, return the best.

    ``select`` is a template method: it validates, opens a ``cache.select``
    span, delegates the actual ranking to ``_select`` (overridable), and
    counts the pick in ``strategy_selections_total{strategy=...}``.
    Observability defaults to the shared no-op; the CBCS engine rebinds it
    via :meth:`bind_obs` when instrumented.
    """

    name = "abstract"
    obs = NULL_OBS
    #: Machine-readable reason an unselected candidate lost; strategies with
    #: non-score-based selection override it (``Random``: "not-sampled",
    #: ``CostBased``: "costlier-plan").  Surfaced per candidate by the
    #: explain layer (:mod:`repro.obs.explain`).
    rejection_reason = "outscored"

    def bind_obs(self, obs) -> "CacheSearchStrategy":
        """Attach observability (selection spans + counters)."""
        self.obs = NULL_OBS if obs is None else obs
        return self

    def select(
        self,
        query: Constraints,
        items: Sequence[CacheItem],
        record: bool = True,
    ) -> CacheItem:
        """Return the preferred cache item for ``query``.

        ``record=False`` skips the selection span and the
        ``strategy_selections_total`` counter -- the explain-only planning
        path uses it so an ``explain()`` followed by ``query()`` counts one
        selection, not two.
        """
        if not items:
            raise ValueError("select() requires at least one candidate item")
        obs = self.obs
        if not obs.enabled or not record:
            return self._select(query, items)
        with obs.tracer.span(
            "cache.select", strategy=self.name, candidates=len(items)
        ) as span:
            item = self._select(query, items)
            span.set(item_id=item.item_id)
        obs.metrics.inc("strategy_selections_total", strategy=self.name)
        return item

    def score(self, query: Constraints, item: CacheItem):
        """Inspection-only ranking score of one candidate (no side effects).

        Returns whatever ``_score`` ranks by (a float or a tuple), or None
        for strategies whose selection is not a per-item static score
        (``Random``).  The explain layer records this next to each
        candidate so rejections are explainable: the selected item's score
        weakly dominates every rejected one's.
        """
        try:
            return self._score(query, item)
        except NotImplementedError:
            return None

    def _select(self, query: Constraints, items: Sequence[CacheItem]) -> CacheItem:
        return max(items, key=lambda item: self._score(query, item))

    def _score(self, query: Constraints, item: CacheItem):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomStrategy(CacheSearchStrategy):
    """Uniformly random choice among the overlapping items."""

    name = "Random"
    rejection_reason = "not-sampled"

    def __init__(self, seed: Rng = None):
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    def _select(self, query: Constraints, items: Sequence[CacheItem]) -> CacheItem:
        return items[int(self._rng.integers(len(items)))]


class MaxOverlap(CacheSearchStrategy):
    """Largest constraint-region overlap volume with the query."""

    name = "MaxOverlap"

    def _score(self, query: Constraints, item: CacheItem):
        return item.constraints.overlap_volume(query)


class MaxOverlapSP(CacheSearchStrategy):
    """Stability-preferring MaxOverlap: any stable item beats any unstable
    one; overlap volume breaks ties within each group."""

    name = "MaxOverlapSP"

    def _score(self, query: Constraints, item: CacheItem):
        stable = guaranteed_stable(item.constraints, query)
        return (1 if stable else 0, item.constraints.overlap_volume(query))


class Prioritized1D(CacheSearchStrategy):
    """Case-priority ranking for single-bound changes (Section 6.1).

    Priority order (best first): case b, case c, case a, general stable,
    case d, general unstable.  Exact matches outrank everything; ties are
    settled by MaxOverlap.
    """

    name = "Prioritized1D"

    _PRIORITY: Dict[str, int] = {
        CASE_EXACT: 7,
        CASE_B: 6,
        CASE_C: 5,
        CASE_A: 4,
        GENERAL_STABLE: 3,
        CASE_D: 2,
        GENERAL_UNSTABLE: 1,
    }

    def _score(self, query: Constraints, item: CacheItem):
        case = classify_change(item.constraints, query)
        return (
            self._PRIORITY.get(case, 0),
            item.constraints.overlap_volume(query),
        )


class PrioritizedND(CacheSearchStrategy):
    """Per-bound case scoring summed over every differing dimension.

    Each changed bound of each dimension is classified as one of the four
    incremental cases and charged that case's penalty; the item with the
    lowest total is selected (ties: larger overlap).  ``PrioritizedND.std()``
    and ``PrioritizedND.bad()`` build the paper's two evaluated variants.
    """

    name = "PrioritizedND"

    def __init__(self, c1: float, c2: float, c3: float, c4: float):
        self.penalties: Dict[str, float] = {
            CASE_A: float(c1),
            CASE_B: float(c2),
            CASE_C: float(c3),
            CASE_D: float(c4),
        }
        self.name = f"PrioritizedND({c1:g},{c2:g},{c3:g},{c4:g})"

    @classmethod
    def std(cls) -> "PrioritizedND":
        """The paper's well-performing variant, PrioritizednD (Std)."""
        return cls(10, 0, 5, 20)

    @classmethod
    def bad(cls) -> "PrioritizedND":
        """The paper's deliberately mis-weighted variant, PrioritizednD (Bad)."""
        return cls(10, 50, 30, 0)

    def _score(self, query: Constraints, item: CacheItem):
        labels = classify_dimension_changes(item.constraints, query)
        penalty = sum(self.penalties[label] for label in labels)
        return (-penalty, item.constraints.overlap_volume(query))


class OptimumDistance(CacheSearchStrategy):
    """Smallest L2 distance between lower constraint corners."""

    name = "OptimumDistance"

    def _score(self, query: Constraints, item: CacheItem):
        dist = float(np.linalg.norm(item.constraints.lo - query.lo))
        return -dist


class CostBased(CacheSearchStrategy):
    """EXTENSION (not in the paper): pick by *estimated execution cost*.

    The paper's strategies rank items by proxies (overlap volume, stability,
    per-bound case penalties).  This strategy evaluates the real plan: it
    runs the region computer for each of the most-overlapping candidates
    and costs the resulting decomposition with the table's selectivity
    estimates and disk constants -- one seek per non-trivial box plus the
    transfer cost of its estimated rows -- then picks the cheapest.

    Selection itself becomes more expensive (one region computation per
    evaluated candidate), so ``max_candidates`` bounds the evaluation to
    the most-overlapping few; the paper anticipates exactly this tension
    when it notes that smarter cache search "would become more complicated"
    (Section 6.3).
    """

    name = "CostBased"
    rejection_reason = "costlier-plan"

    def __init__(self, table, region, max_candidates: int = 4):
        if max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        self.table = table
        self.region = region
        self.max_candidates = max_candidates

    def _select(self, query: Constraints, items: Sequence[CacheItem]) -> CacheItem:
        shortlist = sorted(
            items,
            key=lambda it: it.constraints.overlap_volume(query),
            reverse=True,
        )[: self.max_candidates]
        best, best_cost = shortlist[0], float("inf")
        for item in shortlist:
            cost = self._estimated_cost(query, item)
            if cost < best_cost:
                best, best_cost = item, cost
        return best

    def score(self, query: Constraints, item: CacheItem):
        """Negated estimated plan cost (higher is better, like ``_score``)."""
        return -self._estimated_cost(query, item)

    def _estimated_cost(self, query: Constraints, item: CacheItem) -> float:
        mpr = self.region.compute(item.constraints, item.skyline, query)
        model = self.table.cost_model
        per_point_ms = model.page_read_ms / model.page_size
        cost = 0.0
        for box in mpr.boxes:
            rows = min(
                self.table.estimate_count(i, iv.lo, iv.hi)
                for i, iv in enumerate(box.intervals)
            )
            if rows:
                cost += model.seek_ms + rows * per_point_ms
        return cost


def default_strategy_suite(seed: Rng = 0) -> List[CacheSearchStrategy]:
    """Return all strategies the paper compares in Figure 11."""
    return [
        RandomStrategy(seed=seed),
        MaxOverlap(),
        MaxOverlapSP(),
        Prioritized1D(),
        PrioritizedND.std(),
        PrioritizedND.bad(),
        OptimumDistance(),
    ]
