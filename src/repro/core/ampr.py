"""Region computers: exact MPR and the approximate MPR (Section 5.3).

The exact MPR is minimal in points fetched but its box count explodes with
dimensionality (paper Figure 9: ~50k disjoint range queries for one 6-D
query).  The aMPR is "a conservative approximation of the MPR which produces
no false negatives": instead of pruning with *every* surviving cached
skyline point, it prunes with only the ``k`` nearest neighbours of the
queried constraints -- the points most likely to prune the most (the same
intuition as sort-based skyline algorithms).  The result is a superset of
the MPR decomposed into far fewer, larger range queries.

Both classes expose ``compute(old, skyline, new) -> MPRResult`` so the CBCS
engine can swap them freely; ``k`` trades points read against random-access
range queries (evaluated in the paper's Figures 9 and 12b).
"""

from __future__ import annotations

import numpy as np

from repro.core.mpr import MPRResult, compute_mpr
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS


class ExactMPR:
    """The exact Missing Points Region of Definition 5."""

    name = "MPR"
    obs = NULL_OBS

    def bind_obs(self, obs) -> "ExactMPR":
        """Attach observability (spans + MPR metrics) to this computer."""
        self.obs = NULL_OBS if obs is None else obs
        return self

    def compute(
        self, old: Constraints, skyline: np.ndarray, new: Constraints
    ) -> MPRResult:
        """Prune with every surviving cached skyline point."""
        return compute_mpr(old, skyline, new, prune_with=None, obs=self.obs)


class ApproximateMPR:
    """The aMPR: prune with only the ``k`` nearest surviving skyline points.

    "Nearest" is Euclidean distance to the lower corner of the queried
    constraint region -- the corner every dominance region within the region
    grows away from, so proximity to it maximizes pruning power.

    The unstable-case invalidation decomposition is bounded by
    ``max_invalidation_pieces`` in the same spirit: when the exact staircase
    of expelled dominance regions would tile into too many pieces, it is
    covered by one conservative corner region instead (superset, no false
    negatives; see :func:`repro.core.mpr.compute_mpr`).
    """

    def __init__(
        self,
        k: int = 1,
        max_invalidation_pieces: int = 128,
        invalidation_anchors: int = 8,
        merge_boxes: bool = True,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        if max_invalidation_pieces < 1:
            raise ValueError("max_invalidation_pieces must be positive")
        if invalidation_anchors < 1:
            raise ValueError("invalidation_anchors must be positive")
        self.k = k
        self.max_invalidation_pieces = max_invalidation_pieces
        self.invalidation_anchors = invalidation_anchors
        self.merge_boxes = merge_boxes
        self.obs = NULL_OBS

    def bind_obs(self, obs) -> "ApproximateMPR":
        """Attach observability (spans + MPR metrics) to this computer."""
        self.obs = NULL_OBS if obs is None else obs
        return self

    @property
    def name(self) -> str:
        return f"aMPR({self.k}NN)"

    def compute(
        self, old: Constraints, skyline: np.ndarray, new: Constraints
    ) -> MPRResult:
        """Compute a conservative superset of the MPR."""
        skyline = np.asarray(skyline, dtype=float)
        surviving = (
            skyline[new.satisfied_mask(skyline)]
            if len(skyline)
            else skyline.reshape(0, new.ndim)
        )
        pruners = nearest_to_corner(surviving, new.lo, self.k)
        return compute_mpr(
            old,
            skyline,
            new,
            prune_with=pruners,
            max_invalidation_pieces=self.max_invalidation_pieces,
            max_invalidation_anchors=self.invalidation_anchors,
            merge_boxes=self.merge_boxes,
            obs=self.obs,
        )


def nearest_to_corner(points: np.ndarray, corner: np.ndarray, k: int) -> np.ndarray:
    """Return the ``k`` rows of ``points`` nearest (L2) to ``corner``."""
    points = np.asarray(points, dtype=float)
    if len(points) <= k:
        return points
    dist = np.sum((points - np.asarray(corner, dtype=float)) ** 2, axis=1)
    nearest = np.argpartition(dist, k)[:k]
    return points[nearest]
