"""The execution layer: runs a plan's range queries against a backend.

The :class:`Executor` is the only component that talks to the
:class:`~repro.storage.backend.StorageBackend` during a query.  It takes
the planner's disjoint boxes and issues one ``range_query`` per box --
serially with the default ``workers=1`` (bit-identical to the historic
``fetch_boxes`` path), or concurrently on a bounded thread pool when
``workers > 1``.  Results are gathered *in box order* regardless of
completion order, so the concatenated point set -- and therefore the
skyline computed from it -- is byte-identical at any worker count.

Simulated-time accounting under parallelism: every
:class:`~repro.storage.table.RangeResult` carries the ``io_ms`` its call
charged (latency-spike faults included).  The executor reports both

- ``io_ms_total``: the plain sum -- total disk work, matching the table's
  aggregate counters; and
- ``effective_io_ms``: the makespan of the per-box latencies greedily
  scheduled onto ``min(workers, boxes)`` lanes -- what would actually
  elapse with that much I/O overlap.  Deterministic (box order is fixed),
  and equal to ``io_ms_total`` when serial.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.box import Box
from repro.obs import NULL_OBS, bind, current_query_id
from repro.storage.table import RangeResult


def effective_latency_ms(io_ms: Sequence[float], workers: int) -> float:
    """Makespan of per-box latencies on ``workers`` greedy lanes.

    Boxes are assigned in plan order to the least-loaded lane (list-
    scheduling, the executor's actual dispatch discipline in simulated
    time); the busiest lane's total is the effective fetch latency.
    """
    lanes = [0.0] * max(1, min(int(workers), len(io_ms)) or 1)
    for ms in io_ms:
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[lane] += ms
    return max(lanes) if lanes else 0.0


@dataclass(frozen=True)
class FetchOutcome:
    """One fetch stage's merged result plus its two I/O accountings.

    ``parts`` keeps the per-box :class:`RangeResult` records in plan order
    (one per box fetched), so the explain layer can join each planned box's
    predicted cost against the rows/pages/seeks/io_ms that box actually
    charged.  The tuple aliases the same arrays the merged ``result``
    concatenates -- no copies.
    """

    result: RangeResult
    io_ms_total: float
    effective_io_ms: float
    boxes: int = 0
    workers: int = 1
    parts: tuple = ()


class Executor:
    """Runs a plan's range queries against a storage backend.

    ``workers=1`` (the default) keeps the historic serial semantics --
    every box fetched in order on the calling thread, no pool at all.
    ``workers > 1`` fans the boxes out over a bounded, lazily created
    :class:`~concurrent.futures.ThreadPoolExecutor` that is reused across
    queries.  ``retry_state`` (when resilience is on) is forwarded to the
    backend, whose resilient decorator retries each box against the shared
    per-query budget.
    """

    def __init__(self, workers: int = 1, obs=None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self.obs = NULL_OBS if obs is None else obs
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def fetch(self, backend, boxes, retry_state=None) -> FetchOutcome:
        """Fetch every box and merge the results in box order.

        Exceptions (fault-injected errors, ``RetriesExhausted``,
        ``CircuitOpenError``) propagate exactly as the serial path raised
        them: the first failing box *in plan order* wins, so the engine's
        degradation ladder sees the same error at any worker count.
        """
        boxes = list(boxes)
        if len(boxes) > 1 and self.workers > 1:
            parts = self._fetch_parallel(backend, boxes, retry_state)
        else:
            parts = [
                self._range_query(backend, box, retry_state) for box in boxes
            ]
        io_each = [p.io_ms for p in parts]
        io_total = float(sum(io_each))
        effective = (
            effective_latency_ms(io_each, self.workers)
            if self.workers > 1
            else io_total
        )
        outcome = FetchOutcome(
            result=self._merge(backend, parts),
            io_ms_total=io_total,
            effective_io_ms=effective,
            boxes=len(boxes),
            workers=min(self.workers, max(len(boxes), 1)),
            parts=tuple(parts),
        )
        if self.obs.enabled and self.workers > 1:
            self.obs.tracer.record(
                "executor.fetch",
                round(effective, 6),
                boxes=len(boxes),
                workers=outcome.workers,
                io_ms_total=round(io_total, 6),
            )
            self.obs.metrics.inc(
                "executor_fetches_total",
                mode="parallel" if len(boxes) > 1 else "serial",
            )
        return outcome

    def _range_query(self, backend, box: Box, retry_state) -> RangeResult:
        if retry_state is not None:
            return backend.range_query(box, retry_state=retry_state)
        return backend.range_query(box)

    def _fetch_parallel(
        self, backend, boxes: List[Box], retry_state
    ) -> List[RangeResult]:
        pool = self._ensure_pool()
        # contextvars do not flow into pool threads on their own: re-bind
        # the caller's query id in each lane so worker-side spans (range
        # queries, retries, backend errors) stay joinable with the query.
        query_id = current_query_id()

        def lane(box: Box) -> RangeResult:
            with bind(query_id):
                return self._range_query(backend, box, retry_state)

        futures = [pool.submit(lane, box) for box in boxes]
        parts: List[RangeResult] = []
        first_error: Optional[BaseException] = None
        for future in futures:  # gather in box order, not completion order
            try:
                parts.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return parts

    def _merge(self, backend, parts: List[RangeResult]) -> RangeResult:
        """Concatenate per-box results in box order.

        Points and rowids are concatenated independently so a fault-
        truncated box (points shorter than rowids) keeps its mismatched
        signature for downstream validation, exactly as the single-threaded
        ``fetch_boxes`` aggregation did.
        """
        if len(parts) == 1:
            return parts[0]
        empty = backend._empty_result()
        if not parts:
            return empty
        points = [p.points for p in parts if len(p.points)]
        rowids = [p.rowids for p in parts if len(p.rowids)]
        return replace(
            empty,
            points=np.concatenate(points) if points else empty.points,
            rowids=np.concatenate(rowids) if rowids else empty.rowids,
            rows_fetched=sum(p.rows_fetched for p in parts),
            io_ms=float(sum(p.io_ms for p in parts)),
            pages_read=sum(p.pages_read for p in parts),
            seeks=sum(p.seeks for p in parts),
        )

    # ------------------------------------------------------------------
    # Generic ordered fan-out (shard execution)
    # ------------------------------------------------------------------
    def map_ordered(self, tasks: Sequence) -> list:
        """Run zero-arg callables on the pool, gathering in submission order.

        The shard fan-out analogue of :meth:`fetch`: results come back in
        task order regardless of completion order, so a sharded merge is
        deterministic at any worker count.  Serial (calling thread, no
        pool) when ``workers == 1`` or there is a single task.  The first
        failing task *in submission order* raises, as with boxes.
        """
        tasks = list(tasks)
        if len(tasks) <= 1 or self.workers == 1:
            return [task() for task in tasks]
        pool = self._ensure_pool()
        query_id = current_query_id()

        def lane(task):
            with bind(query_id):
                return task()

        futures = [pool.submit(lane, task) for task in tasks]
        results = []
        first_error: Optional[BaseException] = None
        for future in futures:  # submission order, not completion order
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="cbcs-exec"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreates on use)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Executor(workers={self.workers})"
