"""Dynamic data support (paper Section 6.2) with an optional durable write path.

"Dynamic data can be supported by viewing each cache item as a separate
dataset with a continuous skyline query maintained by any existing method."
The paper defers the evaluation; this module implements the mechanism:

- **insert**: a new point inside an item's constraint region either is
  dominated by the cached skyline (nothing changes) or enters the skyline,
  evicting the cached points it dominates.  This is exact: points that the
  evicted members used to dominate are, by transitivity, dominated by the
  new point too.
- **delete**: a deleted point that coordinate-matches a cached skyline row
  loses one occurrence; since its dominance may have suppressed other
  points, the item is either *refreshed* (recomputed with one range query
  against the table -- the simplest "existing method") or *evicted*,
  according to ``on_delete``.  Deleted points that were not in the cached
  skyline were dominated and change nothing.

:class:`DynamicCBCS` wires the maintenance into the engine so that queries
interleaved with updates stay exact -- verified against brute force in
``tests/core/test_dynamic.py``.

Durability.  With ``durability=`` set (a directory or a
:class:`~repro.storage.durability.DurabilityManager`), every update batch
is WAL-logged *before* it is applied -- the PostgreSQL write path -- and
:meth:`DynamicCBCS.recover` rebuilds a crashed engine from the last
checkpoint plus the log tail, provably converging to the committed
pre-crash state (asserted bit-exactly by :mod:`repro.bench.crashdrill`).
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.core.cbcs import CBCS
from repro.geometry.dominance import dominated_mask
from repro.resilience import DEGRADABLE
from repro.skyline.sfs import sfs_skyline
from repro.storage.durability import DurabilityManager

DeletePolicy = Literal["refresh", "evict"]


class DynamicCBCS(CBCS):
    """A CBCS engine whose table may change between queries.

    ``on_delete`` selects the maintenance of items that lose a skyline
    point: ``"refresh"`` recomputes the item from the table (keeps the cache
    warm at the cost of one range query), ``"evict"`` simply drops it.

    ``durability`` enables the WAL-backed write path: a directory (or a
    prepared :class:`~repro.storage.durability.DurabilityManager`) where
    update batches are journaled before they apply and the table is
    checkpointed.  The default ``None`` keeps updates in-memory only,
    bit-identical to the historic behavior.
    """

    def __init__(
        self,
        *args,
        on_delete: DeletePolicy = "refresh",
        durability=None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if on_delete not in ("refresh", "evict"):
            raise ValueError(f"unknown delete policy {on_delete!r}")
        self.on_delete: DeletePolicy = on_delete
        if durability is not None and not isinstance(durability, DurabilityManager):
            durability = DurabilityManager(durability)
        self.durability: Optional[DurabilityManager] = durability
        #: set by :meth:`recover` on recovered engines
        self.recovery_report = None
        if self.durability is not None:
            # A fresh durability directory needs the base snapshot:
            # recovery rebuilds "checkpoint + tail", never from nothing.
            self.durability.ensure_checkpoint(self.table)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_points(self, rows: np.ndarray) -> np.ndarray:
        """Append rows to the table and maintain every affected cache item.

        With durability on, the batch is WAL-logged (and fsynced) first;
        the update is committed the moment the log record is durable.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[1] != self.table.ndim:
            raise ValueError("inserted rows must match the table's dimensionality")
        if rows.size and not np.isfinite(rows).all():
            raise ValueError("inserted rows must be finite")
        if self.durability is not None:
            self.durability.log_insert(rows, start=self.table.n)
        new_ids = self.table.append(rows)
        for row in rows:
            self._maintain_insert(row)
        if self.durability is not None:
            self.durability.maybe_checkpoint(self.table)
        return new_ids

    def delete_points(self, rowids) -> int:
        """Delete table rows and maintain every affected cache item."""
        rowids = np.atleast_1d(np.asarray(rowids, dtype=np.int64))
        # Reading the coordinates first also validates the row ids, so an
        # invalid request fails before anything reaches the WAL.
        coords = [self.table.row(int(r)) for r in rowids]
        if self.durability is not None:
            self.durability.log_delete(rowids, np.asarray(coords))
        killed = self.table.delete(rowids)
        for row in coords:
            self._maintain_delete(np.asarray(row))
        if self.durability is not None:
            self.durability.maybe_checkpoint(self.table)
        return killed

    # ------------------------------------------------------------------
    # Durability lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint the table (and the cache's backend, if persistent)."""
        if self.durability is not None:
            self.durability.checkpoint(self.table)
        self.cache.checkpoint()

    def close(self) -> None:
        """Checkpoint durable state, close the WAL, release the executor."""
        if self.durability is not None:
            self.durability.close(self.table)
        super().close()

    @classmethod
    def recover(cls, source, table_wrapper=None, **kwargs) -> "DynamicCBCS":
        """Rebuild a durable engine after a crash.

        ``source`` is the durability directory (or a prepared
        :class:`~repro.storage.durability.DurabilityManager`, e.g. one
        carrying the drill's fault injector); remaining ``kwargs`` go to
        the engine constructor (cache, resilience, workers, ...).
        ``table_wrapper`` optionally re-wraps the recovered table (e.g. in
        a :class:`~repro.storage.faults.FaultyDiskTable`) before the
        engine adopts it.

        Recovery: load the last table checkpoint, replay the WAL tail
        (torn tail truncated), then *reconcile the cache* -- every cache
        item whose region contains a replayed row is dropped, because the
        crash may have swallowed that item's in-memory maintenance.  Over-
        evicting costs a cache miss; under-evicting would serve stale
        skylines, so reconciliation always errs on eviction.  The
        :class:`~repro.storage.durability.RecoveryReport` lands on
        ``engine.recovery_report``.
        """
        manager = (
            source
            if isinstance(source, DurabilityManager)
            else DurabilityManager(source)
        )
        table, report = manager.recover()
        if table_wrapper is not None:
            table = table_wrapper(table)
        engine = cls(table, durability=manager, **kwargs)
        for _op, rows in report.replayed:
            for row in np.atleast_2d(rows):
                for item in list(engine.cache):
                    if item.constraints.satisfies(row):
                        engine.cache.remove(item)
        engine.recovery_report = report
        # Seal the recovered state so the next restart replays nothing.
        manager.checkpoint(engine.table)
        return engine

    # ------------------------------------------------------------------
    # Per-item continuous skyline maintenance
    # ------------------------------------------------------------------
    def _maintain_insert(self, row: np.ndarray) -> None:
        for item in list(self.cache):
            if not item.constraints.satisfies(row):
                continue
            sky = item.skyline
            if dominated_mask(row.reshape(1, -1), sky)[0]:
                continue  # dominated within the item: skyline unchanged
            keep = ~dominated_mask(sky, row.reshape(1, -1))
            new_sky = np.vstack([sky[keep], row.reshape(1, -1)])
            self._replace_item(item, new_sky)

    def _maintain_delete(self, row: np.ndarray) -> None:
        for item in list(self.cache):
            if not item.constraints.satisfies(row):
                continue
            matches = np.flatnonzero(np.all(item.skyline == row, axis=1))
            if len(matches) == 0:
                continue  # dominated point: its absence changes nothing
            if self.on_delete == "evict":
                self._evict_item(item)
                continue
            # refresh: one range query re-derives the item's skyline.  The
            # fetch runs through the engine's storage stack, so with
            # resilience on it is validated and retried; a refresh that
            # still fails falls back to eviction (a miss, never staleness).
            try:
                result = self.backend.range_query(item.constraints.region())
            except DEGRADABLE:
                self._evict_item(item)
                continue
            new_sky = result.points[sfs_skyline(result.points)]
            if len(new_sky):
                self._replace_item(item, new_sky)
            else:
                self._evict_item(item)

    def _replace_item(self, item, new_skyline: np.ndarray) -> None:
        self.cache.replace_skyline(item, new_skyline)

    def _evict_item(self, item) -> None:
        self.cache.remove(item)
