"""Dynamic data support (paper Section 6.2).

"Dynamic data can be supported by viewing each cache item as a separate
dataset with a continuous skyline query maintained by any existing method."
The paper defers the evaluation; this module implements the mechanism:

- **insert**: a new point inside an item's constraint region either is
  dominated by the cached skyline (nothing changes) or enters the skyline,
  evicting the cached points it dominates.  This is exact: points that the
  evicted members used to dominate are, by transitivity, dominated by the
  new point too.
- **delete**: a deleted point that coordinate-matches a cached skyline row
  loses one occurrence; since its dominance may have suppressed other
  points, the item is either *refreshed* (recomputed with one range query
  against the table -- the simplest "existing method") or *evicted*,
  according to ``on_delete``.  Deleted points that were not in the cached
  skyline were dominated and change nothing.

:class:`DynamicCBCS` wires the maintenance into the engine so that queries
interleaved with updates stay exact -- verified against brute force in
``tests/core/test_dynamic.py``.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.cbcs import CBCS
from repro.geometry.dominance import dominated_mask
from repro.skyline.sfs import sfs_skyline

DeletePolicy = Literal["refresh", "evict"]


class DynamicCBCS(CBCS):
    """A CBCS engine whose table may change between queries.

    ``on_delete`` selects the maintenance of items that lose a skyline
    point: ``"refresh"`` recomputes the item from the table (keeps the cache
    warm at the cost of one range query), ``"evict"`` simply drops it.
    """

    def __init__(self, *args, on_delete: DeletePolicy = "refresh", **kwargs):
        super().__init__(*args, **kwargs)
        if on_delete not in ("refresh", "evict"):
            raise ValueError(f"unknown delete policy {on_delete!r}")
        self.on_delete: DeletePolicy = on_delete

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_points(self, rows: np.ndarray) -> np.ndarray:
        """Append rows to the table and maintain every affected cache item."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        new_ids = self.table.append(rows)
        for row in rows:
            self._maintain_insert(row)
        return new_ids

    def delete_points(self, rowids) -> int:
        """Delete table rows and maintain every affected cache item."""
        rowids = np.atleast_1d(np.asarray(rowids, dtype=np.int64))
        coords = [self.table.row(int(r)) for r in rowids]
        killed = self.table.delete(rowids)
        for row in coords:
            self._maintain_delete(np.asarray(row))
        return killed

    # ------------------------------------------------------------------
    # Per-item continuous skyline maintenance
    # ------------------------------------------------------------------
    def _maintain_insert(self, row: np.ndarray) -> None:
        for item in list(self.cache):
            if not item.constraints.satisfies(row):
                continue
            sky = item.skyline
            if dominated_mask(row.reshape(1, -1), sky)[0]:
                continue  # dominated within the item: skyline unchanged
            keep = ~dominated_mask(sky, row.reshape(1, -1))
            new_sky = np.vstack([sky[keep], row.reshape(1, -1)])
            self._replace_item(item, new_sky)

    def _maintain_delete(self, row: np.ndarray) -> None:
        for item in list(self.cache):
            if not item.constraints.satisfies(row):
                continue
            matches = np.flatnonzero(np.all(item.skyline == row, axis=1))
            if len(matches) == 0:
                continue  # dominated point: its absence changes nothing
            if self.on_delete == "evict":
                self._evict_item(item)
                continue
            # refresh: one range query re-derives the item's skyline
            result = self.table.range_query(item.constraints.region())
            new_sky = result.points[sfs_skyline(result.points)]
            if len(new_sky):
                self._replace_item(item, new_sky)
            else:
                self._evict_item(item)

    def _replace_item(self, item, new_skyline: np.ndarray) -> None:
        self.cache.replace_skyline(item, new_skyline)

    def _evict_item(self, item) -> None:
        self.cache.remove(item)
