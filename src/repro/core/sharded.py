"""Partition-aware sharded CBCS: shard-pruned planning, per-shard caches,
fan-out/merge execution.

:class:`ShardedCBCS` is the fleet engine over a
:class:`~repro.storage.sharding.ShardedTable`.  One query runs in four
steps, each reusing a layer built earlier:

1. **Prune** (:mod:`repro.core.shardplan`): classify every shard
   ``disjoint | dominated | surviving`` from its MBR summary -- zero I/O --
   and cache the decision set per constraint region
   (:class:`~repro.core.shardplan.PruningSetCache`), so a repeat query skips
   both the pruned shards *and* the pruning computation.
2. **Fan out**: surviving shards each answer the query on their own full
   CBCS engine (own :class:`~repro.core.cache.SkylineCache`, own
   ``build_backend`` stack, own resilience/circuit breaker), dispatched
   through the bounded :class:`~repro.core.executor.Executor` pool and
   gathered in shard order -- deterministic at any worker count.
3. **Merge**: pool the per-shard constrained skylines and run one final
   dominance pass.  Correctness: ``Sky(S ∩ C) = Sky(∪_i Sky(S_i ∩ C))`` --
   a global skyline point is undominated in its own shard (so it survives
   step 2) and undominated in the pool (so it survives the merge); a
   non-skyline point is dominated by some global skyline point, which is in
   the pool.  Coordinate duplicates on different shards both survive,
   exactly as both survive the unsharded pass.  The merged answer is
   therefore **bit-identical** to the unsharded engine's
   (``repro.bench.shardsweep`` enforces this over seeds x shard counts x
   strategies).
4. **Account**: the fleet outcome's I/O is the sum of the per-shard deltas
   (reconciles with the shard tables' counters by construction); the stage
   breakdown sums per-shard work, with the fetch stage taking the
   worker-pool makespan when the fan-out actually overlapped.

Observability is fleet-level by design: shard engines run with ``obs=None``
and the fleet records exactly one outcome and one EXPLAIN record (with a
``shard_pruning`` section) per query, so per-method metric reconciliation
(``queries_total`` vs ``points_read_total``) keeps holding.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.cbcs import (
    CBCS,
    RUNG_AMPR,
    RUNG_BOUNDING,
    RUNG_STALE,
    RUNG_UNAVAILABLE,
)
from repro.core.dynamic import DynamicCBCS
from repro.core.executor import Executor, effective_latency_ms
from repro.core.shardplan import (
    PruningSetCache,
    ShardDecision,
    prune_shards,
)
from repro.geometry.constraints import Constraints
from repro.obs import NULL_OBS, bind
from repro.resilience.deadline import Deadline
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, Stopwatch
from repro.storage.pager import IOStats
from repro.storage.sharding import ShardedTable

__all__ = ["ShardedCBCS", "ShardedOutcome"]

#: Ladder rungs ordered worst-last; the fleet reports the worst rung any
#: shard fell to, so degradation semantics stay visible through the merge.
_RUNG_SEVERITY = {
    None: 0,
    RUNG_AMPR: 1,
    RUNG_BOUNDING: 2,
    RUNG_STALE: 3,
    RUNG_UNAVAILABLE: 4,
}


@dataclass
class ShardedOutcome(QueryOutcome):
    """A :class:`~repro.stats.QueryOutcome` plus the shard accounting.

    ``shards_pruned``/``shards_scanned`` are the shard-level analogue of
    ``points_read``: how much of the fleet the pruning pass saved versus
    touched.  ``merge_candidates`` is the pooled per-shard skyline size fed
    to the final dominance pass -- the second term of the I/O
    reconciliation (sum of per-shard ``points_read`` + merge candidates).
    """

    shards_total: int = 0
    shards_pruned: int = 0
    shards_scanned: int = 0
    merge_candidates: int = 0
    pruning_cached: bool = False
    shard_decisions: List[ShardDecision] = field(default_factory=list)
    per_shard: List[dict] = field(default_factory=list)

    def as_record(self) -> dict:
        record = super().as_record()
        record["sharding"] = {
            "shards_total": self.shards_total,
            "shards_pruned": self.shards_pruned,
            "shards_scanned": self.shards_scanned,
            "merge_candidates": self.merge_candidates,
            "pruning_cached": self.pruning_cached,
            "decisions": [d.as_dict() for d in self.shard_decisions],
            "per_shard": [dict(p) for p in self.per_shard],
        }
        return record


class ShardedCBCS:
    """The fleet CBCS engine over a :class:`ShardedTable`.

    Every shard gets a *full* engine of its own -- cache, planner,
    ``build_backend`` stack, resilience -- so per-shard cache backends
    (memory/disk/warm-restart) and per-shard circuit breakers come for
    free.  The factories are called once per shard at construction:

    - ``cache_factory(shard_id)`` -> the shard's ``SkylineCache`` (None:
      fresh in-memory caches);
    - ``strategy_factory()`` / ``region_factory()`` -> per-shard strategy /
      region computer (None: engine defaults; fresh instances per shard so
      no state is shared across threads);
    - ``shard_table_wrapper(shard_id, table)`` -> the table the shard's
      engine actually queries (e.g. a ``FaultyDiskTable`` around one shard
      to fault it specifically);
    - ``resilience`` is forwarded to every shard engine; pass ``True`` so
      each shard resolves its *own* breaker + retry budget.

    ``dynamic=True`` builds :class:`~repro.core.dynamic.DynamicCBCS`
    shard engines and enables :meth:`insert_points` / :meth:`delete_points`
    with pruning-set invalidation tied to actual MBR growth.
    """

    def __init__(
        self,
        table: ShardedTable,
        cache_factory: Optional[Callable[[int], object]] = None,
        strategy_factory: Optional[Callable[[], object]] = None,
        region_factory: Optional[Callable[[], object]] = None,
        skyline_algorithm: Callable[[np.ndarray], np.ndarray] = sfs_skyline,
        cache_results: bool = True,
        obs=None,
        resilience=None,
        workers: int = 1,
        pruning_cache_capacity: int = 256,
        dynamic: bool = False,
        shard_table_wrapper=None,
        engine_kwargs: Optional[dict] = None,
    ):
        self.table = table
        self.obs = NULL_OBS if obs is None else obs
        self.skyline_algorithm = skyline_algorithm
        self.workers = int(workers)
        self.dynamic = bool(dynamic)
        self.pruning_cache = PruningSetCache(capacity=pruning_cache_capacity)
        self.executor = Executor(workers=self.workers, obs=obs)
        engine_cls = DynamicCBCS if dynamic else CBCS
        extra = dict(engine_kwargs or {})
        self.engines: List = []
        for shard in table:
            shard_table = shard.table
            if shard_table_wrapper is not None:
                shard_table = shard_table_wrapper(shard.shard_id, shard_table)
            self.engines.append(
                engine_cls(
                    shard_table,
                    cache=cache_factory(shard.shard_id)
                    if cache_factory is not None
                    else None,
                    strategy=strategy_factory()
                    if strategy_factory is not None
                    else None,
                    region_computer=region_factory()
                    if region_factory is not None
                    else None,
                    skyline_algorithm=skyline_algorithm,
                    cache_results=cache_results,
                    obs=None,  # fleet-level observability only (see module doc)
                    resilience=resilience,
                    workers=1,  # parallelism lives at the shard fan-out
                    **extra,
                )
            )

    @property
    def name(self) -> str:
        return f"ShardedCBCS[{self.table.n_shards}x{self.engines[0].region.name}]"

    @property
    def n_shards(self) -> int:
        return self.table.n_shards

    def shard_caches(self) -> List:
        """Per-shard ``SkylineCache`` handles, in shard order (the hook
        ``QueryService`` and ``repro.obs.cacheview`` aggregate across)."""
        return [engine.cache for engine in self.engines]

    def close(self) -> None:
        self.executor.close()
        for engine in self.engines:
            engine.close()

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        constraints: Constraints,
        query_id: Optional[str] = None,
        deadline=None,
    ) -> ShardedOutcome:
        """Answer one constrained skyline query across the fleet.

        Prune -> fan out -> merge -> account (module doc).  The answer is
        bit-identical to an unsharded engine over the same data; degraded /
        stale flags surface the *worst* shard rung, so a faulted shard's
        degradation semantics are preserved per shard and visible at the
        fleet level.
        """
        if constraints.ndim != self.table.ndim:
            raise ValueError("constraints dimensionality does not match the table")
        deadline = Deadline.normalize(deadline)
        obs = self.obs
        if query_id is None and obs.enabled:
            query_id = obs.correlation.new_id()
        profiler = obs.profiler
        sample = (
            profiler.maybe(query_id) if profiler is not None else nullcontext(False)
        )
        with bind(query_id), sample:
            with obs.tracer.span(
                "sharded.query", shards=self.table.n_shards
            ) as qspan:
                outcome = self._answer(constraints, qspan, deadline=deadline)
            outcome.query_id = query_id
            obs.record_outcome(outcome)
            self._record_shard_metrics(outcome)
            self._record_explain(constraints, outcome)
        return outcome

    def _answer(
        self, constraints: Constraints, qspan, deadline=None
    ) -> ShardedOutcome:
        obs = self.obs
        watch = Stopwatch(tracer=obs.tracer, profiler=obs.profiler)

        with watch.stage("processing"):
            with obs.tracer.span("shard.prune") as pspan:
                decisions = self.pruning_cache.lookup(constraints)
                pruning_cached = decisions is not None
                if decisions is None:
                    decisions = prune_shards(self.table.summaries, constraints)
                    self.pruning_cache.store(constraints, decisions)
                surviving = [d.shard_id for d in decisions if not d.pruned]
                if obs.enabled:
                    pspan.set(
                        cached=pruning_cached,
                        pruned=len(decisions) - len(surviving),
                        surviving=len(surviving),
                    )

        sub_outcomes: List[QueryOutcome] = []
        if surviving:
            tasks = [
                (lambda engine=self.engines[sid]: engine.query(
                    constraints, deadline=deadline
                ))
                for sid in surviving
            ]
            with watch.stage("fetch_wall"):
                sub_outcomes = self.executor.map_ordered(tasks)
            # fetch_wall measured the real fan-out wall time; replace it
            # below with the per-shard sum so the breakdown stays additive
            # with the per-shard stage accounting (parallel overlap is
            # expressed in fetch_io_ms instead, as the executor does).
            watch.timings.fetch_wall_ms = 0.0

        skylines = [sub.skyline for sub in sub_outcomes if len(sub.skyline)]
        merge_candidates = int(sum(len(s) for s in skylines))
        with watch.stage("skyline"):
            with obs.tracer.span("shard.merge") as mspan:
                if not skylines:
                    skyline = np.empty((0, constraints.ndim))
                else:
                    pool = (
                        np.vstack(skylines) if len(skylines) > 1 else skylines[0]
                    )
                    skyline = pool[self.skyline_algorithm(pool)]
                if obs.enabled:
                    mspan.set(
                        candidates=merge_candidates, skyline=len(skyline)
                    )

        io = IOStats()
        for sub in sub_outcomes:
            io.add(sub.io)
        timings = watch.timings
        timings.processing_ms += sum(s.timings.processing_ms for s in sub_outcomes)
        timings.fetch_wall_ms += sum(s.timings.fetch_wall_ms for s in sub_outcomes)
        timings.skyline_ms += sum(s.timings.skyline_ms for s in sub_outcomes)
        timings.io_ms_total = sum(s.timings.io_ms_total for s in sub_outcomes)
        shard_io = [s.timings.fetch_io_ms for s in sub_outcomes]
        timings.fetch_io_ms = (
            effective_latency_ms(shard_io, self.workers)
            if self.workers > 1
            else float(sum(shard_io))
        )

        degraded = max(
            (s.degraded for s in sub_outcomes),
            key=lambda r: _RUNG_SEVERITY.get(r, 0),
            default=None,
        )
        outcome = ShardedOutcome(
            skyline=skyline,
            method=self.name,
            timings=timings,
            io=io,
            case=None,
            stable=None,
            cache_hit=any(s.cache_hit for s in sub_outcomes),
            degraded=degraded,
            stale=any(s.stale for s in sub_outcomes),
            retries=sum(s.retries for s in sub_outcomes),
            shards_total=len(decisions),
            shards_pruned=len(decisions) - len(surviving),
            shards_scanned=len(surviving),
            merge_candidates=merge_candidates,
            pruning_cached=pruning_cached,
            shard_decisions=list(decisions),
            per_shard=[
                {
                    "shard_id": sid,
                    "skyline_size": int(sub.skyline_size),
                    "points_read": int(sub.points_read),
                    "case": sub.case,
                    "cache_hit": bool(sub.cache_hit),
                    "degraded": sub.degraded,
                    "stale": bool(sub.stale),
                    "retries": int(sub.retries),
                }
                for sid, sub in zip(surviving, sub_outcomes)
            ],
        )
        if obs.enabled:
            qspan.set(
                pruned=outcome.shards_pruned,
                scanned=outcome.shards_scanned,
                degraded=degraded,
                stale=outcome.stale,
            )
        return outcome

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record_shard_metrics(self, outcome: ShardedOutcome) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        obs.metrics.inc(
            "pruning_cache_lookups_total",
            outcome="hit" if outcome.pruning_cached else "miss",
        )
        for decision in outcome.shard_decisions:
            if decision.pruned:
                obs.metrics.inc("shards_pruned_total", reason=decision.decision)
        if outcome.shards_scanned:
            obs.metrics.inc("shards_scanned_total", amount=outcome.shards_scanned)
        obs.metrics.observe("merge_candidates", outcome.merge_candidates)

    def _record_explain(
        self, constraints: Constraints, outcome: ShardedOutcome
    ) -> None:
        """Emit one fleet-level EXPLAIN record with the shard decisions.

        ``predicted_surviving`` is the planner's claim (shards classified
        surviving); ``actual_surviving`` counts scanned shards that really
        contributed at least one point -- the pair feeds the
        ``calibration_shard_*`` MARE.
        """
        explainer = getattr(self.obs, "explainer", None)
        if explainer is None:
            return
        actual = sum(1 for p in outcome.per_shard if p["skyline_size"] > 0)
        explainer.record(
            {
                "query_id": outcome.query_id,
                "method": self.name,
                "case": outcome.case,
                "cache_hit": outcome.cache_hit,
                "stable": outcome.stable,
                "degraded": outcome.degraded,
                "attempts": outcome.retries + 1,
                "constraints": {
                    "lo": [float(v) for v in constraints.lo],
                    "hi": [float(v) for v in constraints.hi],
                },
                "shard_pruning": {
                    "decisions": [d.as_dict() for d in outcome.shard_decisions],
                    "shards_total": outcome.shards_total,
                    "shards_pruned": outcome.shards_pruned,
                    "shards_scanned": outcome.shards_scanned,
                    "merge_candidates": outcome.merge_candidates,
                    "pruning_cached": outcome.pruning_cached,
                    "predicted_surviving": outcome.shards_scanned,
                    "actual_surviving": actual,
                },
                "actual": {
                    "points": outcome.points_read,
                    "pages": outcome.io.pages_read,
                    "seeks": outcome.io.seeks,
                    "io_ms": outcome.io.simulated_io_ms,
                    "skyline_size": outcome.skyline_size,
                    "total_ms": outcome.total_ms,
                },
            }
        )

    # ------------------------------------------------------------------
    # Maintenance (dynamic mode)
    # ------------------------------------------------------------------
    def _require_dynamic(self, operation: str) -> None:
        if not self.dynamic:
            raise TypeError(
                f"{operation} requires dynamic=True (DynamicCBCS shard engines)"
            )

    def insert_points(self, rows) -> List[int]:
        """Route new rows to their shards and maintain caches + summaries.

        Each shard's :class:`DynamicCBCS` does its own continuous cache
        maintenance; the fleet drops its cached pruning sets **only when a
        shard MBR actually grew** -- an insert inside the current MBR cannot
        change any disjoint/dominated classification, so those cached
        decisions stay valid and are kept.
        """
        self._require_dynamic("insert_points")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        by_shard: dict = {}
        for row in rows:
            by_shard.setdefault(self.table.route(row), []).append(row)
        rowids: List[int] = []
        invalidate = False
        for sid, shard_rows in sorted(by_shard.items()):
            block = np.asarray(shard_rows)
            rowids.extend(self.engines[sid].insert_points(block))
            if self.table.record_append(sid, block):
                invalidate = True
        if invalidate:
            self.pruning_cache.invalidate()
        return rowids

    def delete_points(self, shard_id: int, rowids: Sequence[int]) -> int:
        """Delete shard-local rows; conservatively drops cached pruning sets
        (a delete can empty a shard or shrink its true extent, and the kept
        superset MBR cannot prove a ``dominated`` witness still exists)."""
        self._require_dynamic("delete_points")
        deleted = self.engines[shard_id].delete_points(rowids)
        self.table.record_delete(shard_id)
        self.pruning_cache.invalidate()
        return deleted

    def warm(self, queries) -> int:
        """Answer ``queries`` to preload every per-shard cache."""
        for constraints in queries:
            self.query(constraints)
        return sum(len(cache) for cache in self.shard_caches())

    def __repr__(self) -> str:
        return (
            f"ShardedCBCS(shards={self.table.n_shards}, "
            f"workers={self.workers}, dynamic={self.dynamic})"
        )
