"""Constrained-skyline stability (paper Section 4.1).

``Sky(S, C)`` is *stable* relative to new constraints ``C'`` when every
point of ``S_C`` that is not in ``Sky(S, C)`` is also guaranteed not to be
in ``Sky(S, C')`` (Definition 4).  Stability is what lets the cache skip
re-examining the overlap region: only genuinely new territory needs
fetching (Corollary 1).

Theorem 1 gives the syntactic guarantee: stability holds iff no lower
constraint increased (``C'_lo <= C_lo`` in every dimension) or the regions
are disjoint.  Increasing a lower constraint may expel a cached skyline
point whose dominance used to suppress other points -- those suppressed
points can resurface (Corollary 2), which is the *unstable* case handled by
the invalidation step of the MPR.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.constraints import Constraints


def guaranteed_stable(old: Constraints, new: Constraints) -> bool:
    """Theorem 1: syntactic stability of ``Sky(S, old)`` relative to ``new``.

    True iff every new lower constraint is at or below the old one, or the
    two constraint regions are disjoint.
    """
    if old.ndim != new.ndim:
        raise ValueError("constraint dimensionality mismatch")
    if bool(np.all(new.lo <= old.lo)):
        return True
    return not old.overlaps(new)


def removed_mask(skyline: np.ndarray, new: Constraints) -> np.ndarray:
    """Return the mask of cached skyline points expelled by ``new``.

    These are the points whose departure can invalidate cached knowledge
    (Corollary 2's witnesses ``t``)."""
    skyline = np.asarray(skyline, dtype=float)
    if len(skyline) == 0:
        return np.zeros(0, dtype=bool)
    return ~new.satisfied_mask(skyline)


def is_stable_for(old: Constraints, new: Constraints, skyline: np.ndarray) -> bool:
    """Operational stability of a concrete cached item.

    Stronger than Theorem 1: even when the syntactic guarantee fails, the
    cached result is de-facto stable if no cached skyline point actually
    falls outside the new constraints -- then no dominance influence was
    lost and Corollary 2's instability witness cannot exist.
    """
    if guaranteed_stable(old, new):
        return True
    return not bool(removed_mask(skyline, new).any())
