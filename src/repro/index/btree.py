"""A B+-tree with array-backed leaves.

This is the reproduction's stand-in for the per-dimension B-tree indexes the
paper builds in PostgreSQL ("Data is stored in PostgreSQL 9.1.13 with each
dimension indexed by a standard B-tree", Section 7).  It maps one column's
values to row identifiers and supports:

- logarithmic point and range lookups with open or closed bounds,
- range *counting* without materializing row ids (used by the query planner
  to pick the most selective index),
- bulk loading from a sorted column (how :class:`~repro.storage.table.DiskTable`
  builds its indexes), and
- ordinary top-down inserts for dynamic use.

Leaves store contiguous numpy arrays of (key, rowid) pairs, so range scans
return whole array slices per leaf rather than iterating Python objects --
the same reason real B+-trees read whole pages.  The tree counts node visits
in :attr:`BPlusTree.nodes_visited`; index traversal is assumed to be
in-memory (the paper never charges index I/O separately either).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

import numpy as np

_DEFAULT_LEAF_CAPACITY = 256
_DEFAULT_FANOUT = 64


class _Leaf:
    """A leaf page: sorted keys with their row ids, plus a next-leaf link."""

    __slots__ = ("keys", "rows", "next")

    def __init__(self, keys: np.ndarray, rows: np.ndarray):
        self.keys = keys
        self.rows = rows
        self.next: Optional["_Leaf"] = None

    def __len__(self) -> int:
        return len(self.keys)


class _Internal:
    """An internal node: children separated by the minimum key of each child
    but the first."""

    __slots__ = ("separators", "children")

    def __init__(self, separators: List[float], children: List[object]):
        self.separators = separators
        self.children = children

    def child_index(self, key: float) -> int:
        """Return the index of the child subtree that may contain ``key``."""
        return bisect.bisect_right(self.separators, key)

    def __len__(self) -> int:
        return len(self.children)


class BPlusTree:
    """A B+-tree mapping float keys to integer row ids (duplicates allowed)."""

    def __init__(
        self,
        leaf_capacity: int = _DEFAULT_LEAF_CAPACITY,
        fanout: int = _DEFAULT_FANOUT,
    ):
        if leaf_capacity < 2 or fanout < 3:
            raise ValueError("leaf_capacity must be >= 2 and fanout >= 3")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.nodes_visited = 0
        self._size = 0
        self._root: object = _Leaf(np.empty(0), np.empty(0, dtype=np.int64))
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        keys: np.ndarray,
        rows: np.ndarray,
        leaf_capacity: int = _DEFAULT_LEAF_CAPACITY,
        fanout: int = _DEFAULT_FANOUT,
        presorted: bool = False,
    ) -> "BPlusTree":
        """Build a tree from a column of keys and their row ids.

        Leaves are filled to capacity left to right; upper levels are packed
        bottom-up, giving the classic bulk-loaded B+-tree shape.
        """
        tree = cls(leaf_capacity=leaf_capacity, fanout=fanout)
        keys = np.asarray(keys, dtype=float)
        rows = np.asarray(rows, dtype=np.int64)
        if keys.shape != rows.shape or keys.ndim != 1:
            raise ValueError("keys and rows must be 1-D arrays of equal length")
        if len(keys) == 0:
            return tree
        if not presorted:
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            rows = rows[order]
        elif np.any(np.diff(keys) < 0):
            raise ValueError("presorted=True but keys are not sorted")

        # Even distribution (sizes differing by at most one) keeps every
        # node at or above half fill, so the deletion rebalancing invariant
        # holds from the start.
        n_leaves = -(-len(keys) // leaf_capacity)
        leaves: List[_Leaf] = [
            _Leaf(k.copy(), r.copy())
            for k, r in zip(np.array_split(keys, n_leaves), np.array_split(rows, n_leaves))
        ]
        for prev, nxt in zip(leaves, leaves[1:]):
            prev.next = nxt

        level: List[object] = list(leaves)
        height = 1
        while len(level) > 1:
            n_parents = -(-len(level) // fanout)
            parents: List[object] = []
            bounds = np.array_split(np.arange(len(level)), n_parents)
            for group_idx in bounds:
                group = [level[i] for i in group_idx]
                separators = [tree._min_key(child) for child in group[1:]]
                parents.append(_Internal(separators, group))
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        tree._size = len(keys)
        return tree

    def insert(self, key: float, row: int) -> None:
        """Insert one (key, row) pair, splitting nodes as required."""
        split = self._insert_into(self._root, float(key), int(row))
        if split is not None:
            sep, right = split
            self._root = _Internal([sep], [self._root, right])
            self._height += 1
        self._size += 1

    def delete(self, key: float, row: int) -> bool:
        """Delete one (key, row) pair; returns False if it is not present.

        Underfull nodes borrow from a sibling or merge with one, with
        separators maintained and the root collapsed when it empties --
        the standard B+-tree rebalancing.
        """
        if self._delete_from(self._root, float(key), int(row)):
            root = self._root
            if isinstance(root, _Internal) and len(root.children) == 1:
                self._root = root.children[0]
                self._height -= 1
            self._size -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def range_rows(
        self,
        lo: float = -np.inf,
        hi: float = np.inf,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> np.ndarray:
        """Return row ids whose key lies in the given interval.

        Rows come back in key order.  Bounds follow the open/closed
        convention of :class:`repro.geometry.interval.Interval`.
        """
        chunks: List[np.ndarray] = []
        for leaf, start, stop in self._leaf_slices(lo, hi, lo_open, hi_open):
            chunks.append(leaf.rows[start:stop])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def count_range(
        self,
        lo: float = -np.inf,
        hi: float = np.inf,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> int:
        """Return the number of keys in the interval without materializing
        row ids.  Same traversal cost as :meth:`range_rows`, no copies."""
        total = 0
        for _leaf, start, stop in self._leaf_slices(lo, hi, lo_open, hi_open):
            total += stop - start
        return total

    def lookup(self, key: float) -> np.ndarray:
        """Return all row ids stored under exactly ``key``."""
        return self.range_rows(key, key)

    def items(self) -> Iterator[Tuple[float, int]]:
        """Yield (key, row) pairs in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, row in zip(leaf.keys, leaf.rows):
                yield float(key), int(row)
            leaf = leaf.next

    def min_key(self) -> Optional[float]:
        """Return the smallest key, or None if the tree is empty."""
        if self._size == 0:
            return None
        leaf = self._leftmost_leaf()
        while leaf is not None and len(leaf) == 0:
            leaf = leaf.next
        return float(leaf.keys[0]) if leaf is not None else None

    # ------------------------------------------------------------------
    # Invariant checking (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        self._check_node(self._root, depth=1)
        # leaf chain is globally sorted and covers _size entries
        leaf = self._leftmost_leaf()
        prev = -np.inf
        count = 0
        while leaf is not None:
            if len(leaf):
                assert np.all(np.diff(leaf.keys) >= 0), "leaf keys unsorted"
                assert leaf.keys[0] >= prev, "leaf chain unordered"
                prev = leaf.keys[-1]
                count += len(leaf)
            leaf = leaf.next
        assert count == self._size, "leaf chain size mismatch"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _min_key(self, node: object) -> float:
        while isinstance(node, _Internal):
            node = node.children[0]
        return float(node.keys[0])

    def _leftmost_leaf(self) -> Optional[_Leaf]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def _descend_to_leaf(self, key: float) -> _Leaf:
        """Descend to the leftmost leaf that may contain ``key``.

        Uses a left-biased child choice (``bisect_left`` on separators) so
        duplicate runs spanning a leaf boundary are scanned from their first
        occurrence; inserts use the right-biased :meth:`_Internal.child_index`.
        """
        node = self._root
        self.nodes_visited += 1
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_left(node.separators, key)]
            self.nodes_visited += 1
        return node

    def _leaf_slices(
        self, lo: float, hi: float, lo_open: bool, hi_open: bool
    ) -> Iterator[Tuple[_Leaf, int, int]]:
        """Yield (leaf, start, stop) slices covering the key interval."""
        if lo > hi or self._size == 0:
            return
        leaf = self._descend_to_leaf(lo)
        while leaf is not None:
            self.nodes_visited += 1
            keys = leaf.keys
            if len(keys):
                if lo_open:
                    start = int(np.searchsorted(keys, lo, side="right"))
                else:
                    start = int(np.searchsorted(keys, lo, side="left"))
                if hi_open:
                    stop = int(np.searchsorted(keys, hi, side="left"))
                else:
                    stop = int(np.searchsorted(keys, hi, side="right"))
                if start < stop:
                    yield leaf, start, stop
                if stop < len(keys):
                    # interval ends inside this leaf
                    return
            leaf = leaf.next

    def _insert_into(
        self, node: object, key: float, row: int
    ) -> Optional[Tuple[float, object]]:
        """Insert below ``node``; return (separator, new right sibling) on split."""
        if isinstance(node, _Leaf):
            pos = int(np.searchsorted(node.keys, key, side="right"))
            node.keys = np.insert(node.keys, pos, key)
            node.rows = np.insert(node.rows, pos, row)
            if len(node.keys) <= self.leaf_capacity:
                return None
            mid = len(node.keys) // 2
            right = _Leaf(node.keys[mid:].copy(), node.rows[mid:].copy())
            node.keys = node.keys[:mid].copy()
            node.rows = node.rows[:mid].copy()
            right.next = node.next
            node.next = right
            return float(right.keys[0]), right

        idx = node.child_index(key)
        split = self._insert_into(node.children[idx], key, row)
        if split is None:
            return None
        sep, right = split
        node.separators.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self.fanout:
            return None
        mid = len(node.children) // 2
        push_up = node.separators[mid - 1]
        right_node = _Internal(node.separators[mid:], node.children[mid:])
        node.separators = node.separators[: mid - 1]
        node.children = node.children[:mid]
        return push_up, right_node

    def _delete_from(self, node: object, key: float, row: int) -> bool:
        """Delete below ``node``; rebalances children after removal."""
        if isinstance(node, _Leaf):
            start = int(np.searchsorted(node.keys, key, side="left"))
            stop = int(np.searchsorted(node.keys, key, side="right"))
            for pos in range(start, stop):
                if node.rows[pos] == row:
                    node.keys = np.delete(node.keys, pos)
                    node.rows = np.delete(node.rows, pos)
                    return True
            return False
        # Duplicates of ``key`` may span several children: try every child
        # whose key range can contain it, leftmost first.
        first = bisect.bisect_left(node.separators, key)
        last = bisect.bisect_right(node.separators, key)
        for idx in range(first, last + 1):
            if self._delete_from(node.children[idx], key, row):
                self._rebalance_child(node, idx)
                return True
        return False

    def _min_fill_leaf(self) -> int:
        return self.leaf_capacity // 2

    def _min_fill_internal(self) -> int:
        return (self.fanout + 1) // 2

    def _rebalance_child(self, parent: "_Internal", idx: int) -> None:
        """Restore the fill invariant of ``parent.children[idx]``."""
        child = parent.children[idx]
        if isinstance(child, _Leaf):
            if len(child) >= self._min_fill_leaf():
                return
        elif len(child.children) >= self._min_fill_internal():
            return

        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if isinstance(child, _Leaf):
            if left is not None and len(left) > self._min_fill_leaf():
                child.keys = np.insert(child.keys, 0, left.keys[-1])
                child.rows = np.insert(child.rows, 0, left.rows[-1])
                left.keys = left.keys[:-1]
                left.rows = left.rows[:-1]
                parent.separators[idx - 1] = float(child.keys[0])
            elif right is not None and len(right) > self._min_fill_leaf():
                child.keys = np.append(child.keys, right.keys[0])
                child.rows = np.append(child.rows, right.rows[0])
                right.keys = right.keys[1:]
                right.rows = right.rows[1:]
                parent.separators[idx] = float(right.keys[0])
            elif left is not None:
                left.keys = np.concatenate([left.keys, child.keys])
                left.rows = np.concatenate([left.rows, child.rows])
                left.next = child.next
                parent.children.pop(idx)
                parent.separators.pop(idx - 1)
            elif right is not None:
                child.keys = np.concatenate([child.keys, right.keys])
                child.rows = np.concatenate([child.rows, right.rows])
                child.next = right.next
                parent.children.pop(idx + 1)
                parent.separators.pop(idx)
            return

        # internal child
        if left is not None and len(left.children) > self._min_fill_internal():
            moved = left.children.pop()
            child.children.insert(0, moved)
            child.separators.insert(0, parent.separators[idx - 1])
            parent.separators[idx - 1] = left.separators.pop()
        elif right is not None and len(right.children) > self._min_fill_internal():
            moved = right.children.pop(0)
            child.children.append(moved)
            child.separators.append(parent.separators[idx])
            parent.separators[idx] = right.separators.pop(0)
        elif left is not None:
            left.separators.append(parent.separators[idx - 1])
            left.separators.extend(child.separators)
            left.children.extend(child.children)
            parent.children.pop(idx)
            parent.separators.pop(idx - 1)
        elif right is not None:
            child.separators.append(parent.separators[idx])
            child.separators.extend(right.separators)
            child.children.extend(right.children)
            parent.children.pop(idx + 1)
            parent.separators.pop(idx)

    def _check_node(self, node: object, depth: int) -> int:
        """Return the depth of the leaves under ``node`` (must be uniform)."""
        is_root = node is self._root
        if isinstance(node, _Leaf):
            assert len(node) <= self.leaf_capacity, "leaf overflow"
            if not is_root:
                assert len(node) >= self._min_fill_leaf(), "leaf underflow"
            return depth
        assert isinstance(node, _Internal)
        assert len(node.children) <= self.fanout, "internal overflow"
        if not is_root:
            assert len(node.children) >= self._min_fill_internal(), (
                "internal underflow"
            )
        else:
            assert len(node.children) >= 2, "root must have >= 2 children"
        assert len(node.separators) == len(node.children) - 1
        assert all(
            a <= b for a, b in zip(node.separators, node.separators[1:])
        ), "separators unsorted"
        depths = {self._check_node(child, depth + 1) for child in node.children}
        assert len(depths) == 1, "tree not balanced"
        return depths.pop()
