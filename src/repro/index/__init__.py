"""Disk-style index structures built from scratch.

- :class:`~repro.index.btree.BPlusTree` -- an order-configurable B+-tree with
  array-backed leaves, standing in for the per-dimension PostgreSQL B-tree
  indexes of the paper's experimental setup (Section 7).
- :class:`~repro.index.rtree.RTree` -- an R-tree with STR bulk loading and
  R*-style insertion/deletion (see :mod:`repro.index.rstar`), used both as the
  dataset index of the BBS algorithm [19] and as the cache's MBR index
  (paper Section 6).
"""

from repro.index.btree import BPlusTree
from repro.index.rtree import RTree

__all__ = ["BPlusTree", "RTree"]
