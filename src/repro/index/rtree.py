"""An R-tree over points or rectangles, with STR bulk loading.

Two of the paper's components sit on R-trees:

- the dataset index used by BBS [19], the I/O-optimal constrained-skyline
  algorithm the paper compares against (built here with Sort-Tile-Recursive
  bulk loading, the standard way to pack a static R-tree), and
- the in-memory cache of Section 6, "organized by an R*-tree indexing the
  MBR of each cached skyline" (dynamic inserts/deletes, using the R*
  heuristics from :mod:`repro.index.rstar`).

Leaf entries carry a rectangle (``lo``/``hi``; equal for points) and an
opaque payload (a row id for dataset trees, a cache item for the cache
index).  Nodes track their level (leaves are level 0) so that R* forced
reinsertion and deletion-condensation can re-insert entries at the correct
height.  Node accesses during searches and structured traversals are counted
in :attr:`RTree.nodes_accessed`; BBS charges one page read per node it pops.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


class RNode:
    """One R-tree node.  Leaves hold entry rectangles + payloads; internal
    nodes hold child nodes.  ``lo``/``hi`` cache the node's MBR."""

    __slots__ = ("level", "entry_lo", "entry_hi", "payloads", "children", "lo", "hi")

    def __init__(self, level: int):
        self.level = level
        self.entry_lo: Optional[np.ndarray] = None  # (k, d) for leaves
        self.entry_hi: Optional[np.ndarray] = None
        self.payloads: Optional[list] = None
        self.children: Optional[List["RNode"]] = None  # for internal nodes
        self.lo: Optional[np.ndarray] = None  # node MBR
        self.hi: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def entry_count(self) -> int:
        """Return the number of entries (leaf rectangles or children)."""
        if self.is_leaf:
            return 0 if self.entry_lo is None else len(self.entry_lo)
        return len(self.children)

    def recompute_mbr(self) -> None:
        """Recompute the cached MBR from the node's entries."""
        if self.is_leaf:
            if self.entry_lo is None or len(self.entry_lo) == 0:
                self.lo = self.hi = None
                return
            self.lo = self.entry_lo.min(axis=0)
            self.hi = self.entry_hi.max(axis=0)
        else:
            if not self.children:
                self.lo = self.hi = None
                return
            self.lo = np.min([c.lo for c in self.children], axis=0)
            self.hi = np.max([c.hi for c in self.children], axis=0)


def _mbr_area(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.prod(np.maximum(hi - lo, 0.0)))


def _mbr_margin(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.sum(np.maximum(hi - lo, 0.0)))


def _union(lo1, hi1, lo2, hi2) -> Tuple[np.ndarray, np.ndarray]:
    return np.minimum(lo1, lo2), np.maximum(hi1, hi2)


def _intersects(lo1, hi1, lo2, hi2) -> bool:
    return bool(np.all(lo1 <= hi2) and np.all(lo2 <= hi1))


def _overlap_area(lo1, hi1, lo2, hi2) -> float:
    lo = np.maximum(lo1, lo2)
    hi = np.minimum(hi1, hi2)
    return float(np.prod(np.maximum(hi - lo, 0.0)))


class RTree:
    """A dynamic R-tree with R* insertion heuristics and STR bulk loading."""

    def __init__(self, ndim: int, max_entries: int = 64, min_entries: Optional[int] = None):
        if ndim < 1:
            raise ValueError("ndim must be positive")
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.ndim = ndim
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, int(round(0.4 * max_entries)))
        if self.min_entries * 2 > max_entries:
            raise ValueError("min_entries must be at most max_entries / 2")
        self.nodes_accessed = 0
        self._size = 0
        root = RNode(level=0)
        root.entry_lo = np.empty((0, ndim))
        root.entry_hi = np.empty((0, ndim))
        root.payloads = []
        self._root = root

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load_points(
        cls,
        points: np.ndarray,
        payloads: Optional[Sequence] = None,
        max_entries: int = 64,
    ) -> "RTree":
        """STR bulk-load a tree over point data.

        ``payloads`` defaults to row indices ``0..n-1``.
        """
        points = np.asarray(points, dtype=float)
        if payloads is None:
            payloads = np.arange(len(points), dtype=np.int64)
        return cls.bulk_load_boxes(points, points, payloads, max_entries=max_entries)

    @classmethod
    def bulk_load_boxes(
        cls,
        los: np.ndarray,
        his: np.ndarray,
        payloads: Sequence,
        max_entries: int = 64,
    ) -> "RTree":
        """STR bulk-load a tree over rectangle data."""
        los = np.asarray(los, dtype=float)
        his = np.asarray(his, dtype=float)
        if los.ndim != 2 or los.shape != his.shape:
            raise ValueError("los and his must be matching (n, d) arrays")
        n, ndim = los.shape
        tree = cls(ndim, max_entries=max_entries)
        if n == 0:
            return tree
        centers = (los + his) / 2.0

        leaves: List[RNode] = []
        payload_arr = (
            np.asarray(payloads)
            if isinstance(payloads, np.ndarray)
            else payloads
        )
        for idx in _str_tiles(centers, np.arange(n), max_entries, dim=0):
            leaf = RNode(level=0)
            leaf.entry_lo = los[idx].copy()
            leaf.entry_hi = his[idx].copy()
            if isinstance(payload_arr, np.ndarray):
                leaf.payloads = list(payload_arr[idx])
            else:
                leaf.payloads = [payload_arr[i] for i in idx]
            leaf.recompute_mbr()
            leaves.append(leaf)

        level_nodes = leaves
        level = 0
        while len(level_nodes) > 1:
            level += 1
            node_centers = np.array(
                [(node.lo + node.hi) / 2.0 for node in level_nodes]
            )
            parents: List[RNode] = []
            for idx in _str_tiles(
                node_centers, np.arange(len(level_nodes)), max_entries, dim=0
            ):
                parent = RNode(level=level)
                parent.children = [level_nodes[i] for i in idx]
                parent.recompute_mbr()
                parents.append(parent)
            level_nodes = parents
        tree._root = level_nodes[0]
        tree._size = n
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> RNode:
        return self._root

    @property
    def height(self) -> int:
        return self._root.level + 1

    def reset_stats(self) -> None:
        """Zero the node-access counter."""
        self.nodes_accessed = 0

    def search(self, lo: Sequence[float], hi: Sequence[float]) -> list:
        """Return payloads of entries whose rectangle intersects [lo, hi]."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        out: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_accessed += 1
            if node.lo is None:
                continue
            if node.is_leaf:
                mask = np.all(node.entry_lo <= hi, axis=1) & np.all(
                    node.entry_hi >= lo, axis=1
                )
                for i in np.flatnonzero(mask):
                    out.append(node.payloads[i])
            else:
                for child in node.children:
                    if _intersects(child.lo, child.hi, lo, hi):
                        stack.append(child)
        return out

    def nearest(self, point: Sequence[float], k: int = 1) -> list:
        """Return the payloads of the ``k`` entries nearest to ``point``.

        Classic best-first nearest-neighbour search: nodes are expanded in
        ascending minimum Euclidean distance between ``point`` and their
        MBR, so no node is read whose subtree cannot contain a result.
        Entry distance uses the entry rectangle's mindist (equals the point
        distance for point entries).  Ties are broken arbitrarily.
        """
        import heapq
        import itertools

        if k < 1:
            raise ValueError("k must be positive")
        point = np.asarray(point, dtype=float)
        if point.shape != (self.ndim,):
            raise ValueError(f"point must be {self.ndim}-dimensional")

        def mindist2(lo: np.ndarray, hi: np.ndarray) -> float:
            clipped = np.clip(point, lo, hi)
            return float(np.sum((point - clipped) ** 2))

        counter = itertools.count()
        heap: list = []
        if self._root.lo is not None:
            heap.append((0.0, next(counter), self._root, None))
        results: list = []
        while heap and len(results) < k:
            _, _, node, payload = heapq.heappop(heap)
            self.nodes_accessed += 1 if payload is None and node is not None else 0
            if node is None:
                results.append(payload)
                continue
            if node.is_leaf:
                for i in range(node.entry_count()):
                    d = mindist2(node.entry_lo[i], node.entry_hi[i])
                    heapq.heappush(
                        heap, (d, next(counter), None, node.payloads[i])
                    )
            else:
                for child in node.children:
                    d = mindist2(child.lo, child.hi)
                    heapq.heappush(heap, (d, next(counter), child, None))
        return results

    def all_payloads(self) -> list:
        """Return every payload in the tree (tree order)."""
        out: list = []
        for node in self.iter_leaves():
            out.extend(node.payloads)
        return out

    def iter_leaves(self) -> Iterator[RNode]:
        """Yield every leaf node (tree order; no access accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def iter_nodes(self) -> Iterator[RNode]:
        """Yield every node, root first (no access accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Updates (R* heuristics live in repro.index.rstar)
    # ------------------------------------------------------------------
    def insert(self, lo: Sequence[float], hi: Sequence[float], payload) -> None:
        """Insert an entry using R* ChooseSubtree / split / reinsertion."""
        from repro.index import rstar

        lo = np.asarray(lo, dtype=float).copy()
        hi = np.asarray(hi, dtype=float).copy()
        if lo.shape != (self.ndim,) or hi.shape != (self.ndim,):
            raise ValueError(f"entry must be {self.ndim}-dimensional")
        rstar.insert(self, lo, hi, payload, target_level=0, reinserted_levels=set())
        self._size += 1

    def insert_point(self, point: Sequence[float], payload) -> None:
        """Insert a point entry (degenerate rectangle)."""
        self.insert(point, point, payload)

    def delete(self, lo: Sequence[float], hi: Sequence[float], payload) -> bool:
        """Delete the entry with exactly this rectangle and payload.

        Underfull nodes are condensed: they are removed from their parent and
        their surviving entries re-inserted at the correct level.  Returns
        True if the entry was found.
        """
        from repro.index import rstar

        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if rstar.delete(self, lo, hi, payload):
            self._size -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Invariants (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError on any structural violation."""
        assert self._root.level + 1 == self.height
        count = self._check_node(self._root, is_root=True)
        assert count == self._size, f"size mismatch: {count} vs {self._size}"

    def _check_node(self, node: RNode, is_root: bool = False) -> int:
        if node.is_leaf:
            k = node.entry_count()
            assert k <= self.max_entries, "leaf overflow"
            if not is_root:
                assert k >= self.min_entries, "leaf underflow"
            if k:
                np.testing.assert_array_equal(node.lo, node.entry_lo.min(axis=0))
                np.testing.assert_array_equal(node.hi, node.entry_hi.max(axis=0))
                assert len(node.payloads) == k
            return k
        assert node.children, "empty internal node"
        k = len(node.children)
        assert k <= self.max_entries, "internal overflow"
        if not is_root:
            assert k >= self.min_entries, "internal underflow"
        total = 0
        for child in node.children:
            assert child.level == node.level - 1, "level mismatch"
            assert np.all(node.lo <= child.lo) and np.all(node.hi >= child.hi), (
                "child MBR outside parent MBR"
            )
            total += self._check_node(child)
        node_lo = np.min([c.lo for c in node.children], axis=0)
        node_hi = np.max([c.hi for c in node.children], axis=0)
        np.testing.assert_array_equal(node.lo, node_lo)
        np.testing.assert_array_equal(node.hi, node_hi)
        return total


def _str_tiles(
    centers: np.ndarray, indices: np.ndarray, capacity: int, dim: int
) -> List[np.ndarray]:
    """Sort-Tile-Recursive partition of ``indices`` into tiles of ``capacity``.

    Recursively sorts by successive dimensions and slices into vertical
    slabs, the classic STR packing of Leutenegger et al.
    """
    n = len(indices)
    if n <= capacity:
        return [indices]
    ndim = centers.shape[1]
    remaining_dims = ndim - dim
    order = indices[np.argsort(centers[indices, dim], kind="stable")]
    n_tiles = math.ceil(n / capacity)
    if remaining_dims <= 1:
        # Even sizes (differing by at most one) keep every tile at or above
        # half capacity, so bulk-loaded nodes respect the min-fill invariant.
        return list(np.array_split(order, n_tiles))
    n_slabs = math.ceil(n_tiles ** (1.0 / remaining_dims))
    tiles: List[np.ndarray] = []
    for slab in np.array_split(order, n_slabs):
        tiles.extend(_str_tiles(centers, slab, capacity, dim + 1))
    return tiles
