"""R*-tree insertion/deletion heuristics (Beckmann et al., SIGMOD 1990).

The paper's cache "is organized by an R*-tree indexing the MBR of each cached
skyline" (Section 6).  This module implements the R* heuristics on top of the
node structure in :mod:`repro.index.rtree`:

- **ChooseSubtree** -- minimal overlap enlargement when the children are
  leaves, minimal area enlargement otherwise;
- **forced reinsertion** -- on the first overflow per level per insertion,
  the 30% of entries farthest from the node's center are removed and
  re-inserted, which re-shuffles badly placed entries instead of splitting;
- **R\\* split** -- axis chosen by minimal margin sum over candidate
  distributions, split index chosen by minimal overlap (ties: minimal area);
- **condensed deletion** -- underfull nodes are dissolved and their entries
  re-inserted at the correct level.

All functions take the tree as the first argument; they are free functions
(rather than methods) to keep the node/tree structure readable on its own.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.index.rtree import (
    RNode,
    _mbr_area,
    _mbr_margin,
    _overlap_area,
    _union,
)

REINSERT_FRACTION = 0.3


# ----------------------------------------------------------------------
# Insertion
# ----------------------------------------------------------------------
def insert(
    tree,
    lo: np.ndarray,
    hi: np.ndarray,
    item,
    target_level: int,
    reinserted_levels: Set[int],
) -> None:
    """Insert ``item`` (payload if ``target_level == 0``, else a subtree)
    into a node at ``target_level``, applying R* overflow treatment."""
    path = _choose_path(tree, lo, hi, target_level)
    node = path[-1]
    _add_entry(node, lo, hi, item)
    _refresh_mbrs(path)
    _handle_overflow(tree, path, reinserted_levels)


def _choose_path(tree, lo: np.ndarray, hi: np.ndarray, target_level: int) -> List[RNode]:
    """Return the root-to-target path chosen by the R* ChooseSubtree rule."""
    node = tree.root
    path = [node]
    while node.level > target_level:
        node = _choose_subtree(node, lo, hi)
        path.append(node)
    return path


def _choose_subtree(node: RNode, lo: np.ndarray, hi: np.ndarray) -> RNode:
    children = node.children
    if node.level == 1:
        # children are leaves: minimize overlap enlargement
        best, best_key = None, None
        for i, child in enumerate(children):
            new_lo, new_hi = _union(child.lo, child.hi, lo, hi)
            overlap_before = 0.0
            overlap_after = 0.0
            for j, sibling in enumerate(children):
                if i == j:
                    continue
                overlap_before += _overlap_area(
                    child.lo, child.hi, sibling.lo, sibling.hi
                )
                overlap_after += _overlap_area(new_lo, new_hi, sibling.lo, sibling.hi)
            area = _mbr_area(child.lo, child.hi)
            enlargement = _mbr_area(new_lo, new_hi) - area
            key = (overlap_after - overlap_before, enlargement, area)
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best
    # children are internal: minimize area enlargement
    best, best_key = None, None
    for child in children:
        new_lo, new_hi = _union(child.lo, child.hi, lo, hi)
        area = _mbr_area(child.lo, child.hi)
        key = (_mbr_area(new_lo, new_hi) - area, area)
        if best_key is None or key < best_key:
            best, best_key = child, key
    return best


def _add_entry(node: RNode, lo: np.ndarray, hi: np.ndarray, item) -> None:
    if node.is_leaf:
        if node.entry_lo is None or len(node.entry_lo) == 0:
            node.entry_lo = lo.reshape(1, -1).copy()
            node.entry_hi = hi.reshape(1, -1).copy()
            node.payloads = [item]
        else:
            node.entry_lo = np.vstack([node.entry_lo, lo])
            node.entry_hi = np.vstack([node.entry_hi, hi])
            node.payloads = list(node.payloads)
            node.payloads.append(item)
    else:
        node.children.append(item)


def _refresh_mbrs(path: List[RNode]) -> None:
    """Recompute MBRs bottom-up along a root-to-node path."""
    for node in reversed(path):
        node.recompute_mbr()


def _handle_overflow(tree, path: List[RNode], reinserted_levels: Set[int]) -> None:
    idx = len(path) - 1
    while idx >= 0:
        node = path[idx]
        if node.entry_count() <= tree.max_entries:
            idx -= 1
            continue
        parent = path[idx - 1] if idx > 0 else None
        if parent is not None and node.level not in reinserted_levels:
            reinserted_levels.add(node.level)
            _force_reinsert(tree, node, path[: idx + 1], reinserted_levels)
            return
        sibling = _split(tree, node)
        if parent is None:
            new_root = RNode(level=node.level + 1)
            new_root.children = [node, sibling]
            new_root.recompute_mbr()
            tree._root = new_root
            return
        parent.children.append(sibling)
        _refresh_mbrs(path[:idx])
        idx -= 1


def _entry_rects(node: RNode) -> Tuple[np.ndarray, np.ndarray]:
    """Return the (k, d) lower/upper rectangle arrays of a node's entries."""
    if node.is_leaf:
        return node.entry_lo, node.entry_hi
    los = np.array([c.lo for c in node.children])
    his = np.array([c.hi for c in node.children])
    return los, his


def _take_entries(node: RNode, keep: np.ndarray, remove: np.ndarray) -> list:
    """Keep the entries indexed by ``keep``; return the removed entries as
    (lo, hi, item, target_level) tuples."""
    los, his = _entry_rects(node)
    removed = []
    if node.is_leaf:
        for i in remove:
            removed.append((los[i].copy(), his[i].copy(), node.payloads[i], 0))
        node.entry_lo = node.entry_lo[keep].copy()
        node.entry_hi = node.entry_hi[keep].copy()
        node.payloads = [node.payloads[i] for i in keep]
    else:
        for i in remove:
            child = node.children[i]
            removed.append((los[i].copy(), his[i].copy(), child, node.level))
        node.children = [node.children[i] for i in keep]
    node.recompute_mbr()
    return removed


def _force_reinsert(
    tree, node: RNode, path: List[RNode], reinserted_levels: Set[int]
) -> None:
    """R* forced reinsertion: evict the entries farthest from the node's
    center and insert them again from the root."""
    los, his = _entry_rects(node)
    centers = (los + his) / 2.0
    node_center = (node.lo + node.hi) / 2.0
    dist = np.sum((centers - node_center) ** 2, axis=1)
    k = node.entry_count()
    p = max(1, int(round(REINSERT_FRACTION * k)))
    order = np.argsort(dist)  # close-first reinsert order for the tail
    keep, evict = order[: k - p], order[k - p :]
    removed = _take_entries(node, np.sort(keep), evict)
    _refresh_mbrs(path)
    for lo, hi, item, level in removed:
        insert(tree, lo, hi, item, level, reinserted_levels)


def _split(tree, node: RNode) -> RNode:
    """R* topological split; mutates ``node`` in place and returns the new
    sibling at the same level."""
    los, his = _entry_rects(node)
    k = len(los)
    m = tree.min_entries
    axis, order, split_at = _choose_split(los, his, k, m)
    left = order[:split_at]
    right = order[split_at:]

    sibling = RNode(level=node.level)
    if node.is_leaf:
        sibling.entry_lo = node.entry_lo[right].copy()
        sibling.entry_hi = node.entry_hi[right].copy()
        sibling.payloads = [node.payloads[i] for i in right]
        node.entry_lo = node.entry_lo[left].copy()
        node.entry_hi = node.entry_hi[left].copy()
        node.payloads = [node.payloads[i] for i in left]
    else:
        sibling.children = [node.children[i] for i in right]
        node.children = [node.children[i] for i in left]
    node.recompute_mbr()
    sibling.recompute_mbr()
    return sibling


def _choose_split(
    los: np.ndarray, his: np.ndarray, k: int, m: int
) -> Tuple[int, np.ndarray, int]:
    """Return (axis, entry order, split index) per the R* split algorithm."""
    ndim = los.shape[1]
    best_axis, best_axis_margin = 0, None
    axis_orders = {}
    for axis in range(ndim):
        margin_total = 0.0
        orders = [
            np.lexsort((his[:, axis], los[:, axis])),
            np.lexsort((los[:, axis], his[:, axis])),
        ]
        for order in orders:
            for split_at in range(m, k - m + 1):
                g1 = order[:split_at]
                g2 = order[split_at:]
                margin_total += _mbr_margin(
                    los[g1].min(axis=0), his[g1].max(axis=0)
                ) + _mbr_margin(los[g2].min(axis=0), his[g2].max(axis=0))
        axis_orders[axis] = orders
        if best_axis_margin is None or margin_total < best_axis_margin:
            best_axis, best_axis_margin = axis, margin_total

    best_key, best_order, best_split = None, None, None
    for order in axis_orders[best_axis]:
        for split_at in range(m, k - m + 1):
            g1 = order[:split_at]
            g2 = order[split_at:]
            lo1, hi1 = los[g1].min(axis=0), his[g1].max(axis=0)
            lo2, hi2 = los[g2].min(axis=0), his[g2].max(axis=0)
            key = (
                _overlap_area(lo1, hi1, lo2, hi2),
                _mbr_area(lo1, hi1) + _mbr_area(lo2, hi2),
            )
            if best_key is None or key < best_key:
                best_key, best_order, best_split = key, order, split_at
    return best_axis, best_order, best_split


# ----------------------------------------------------------------------
# Deletion
# ----------------------------------------------------------------------
def delete(tree, lo: np.ndarray, hi: np.ndarray, payload) -> bool:
    """Delete the entry matching rectangle and payload; condense the tree."""
    path = _find_leaf(tree.root, lo, hi, payload)
    if path is None:
        return False
    leaf = path[-1]
    idx = _match_index(leaf, lo, hi, payload)
    keep = np.array([i for i in range(leaf.entry_count()) if i != idx], dtype=int)
    _take_entries(leaf, keep, np.array([idx], dtype=int))
    _condense(tree, path)
    return True


def _match_index(leaf: RNode, lo: np.ndarray, hi: np.ndarray, payload) -> Optional[int]:
    for i in range(leaf.entry_count()):
        if (
            np.array_equal(leaf.entry_lo[i], lo)
            and np.array_equal(leaf.entry_hi[i], hi)
            and leaf.payloads[i] is payload
        ):
            return i
    for i in range(leaf.entry_count()):
        if (
            np.array_equal(leaf.entry_lo[i], lo)
            and np.array_equal(leaf.entry_hi[i], hi)
            and leaf.payloads[i] == payload
        ):
            return i
    return None


def _find_leaf(node: RNode, lo, hi, payload) -> Optional[List[RNode]]:
    if node.lo is None:
        return None
    if not (np.all(node.lo <= lo) and np.all(node.hi >= hi)):
        return None
    if node.is_leaf:
        if _match_index(node, lo, hi, payload) is not None:
            return [node]
        return None
    for child in node.children:
        sub = _find_leaf(child, lo, hi, payload)
        if sub is not None:
            return [node] + sub
    return None


def _condense(tree, path: List[RNode]) -> None:
    """Remove underfull nodes along the path and re-insert their entries."""
    orphans: List[Tuple[np.ndarray, np.ndarray, object, int]] = []
    for depth in range(len(path) - 1, 0, -1):
        node = path[depth]
        parent = path[depth - 1]
        if node.entry_count() < tree.min_entries:
            parent.children.remove(node)
            orphans.extend(_collect_entries(node))
        else:
            node.recompute_mbr()
    _refresh_mbrs(path[:1])

    root = tree.root
    while not root.is_leaf and len(root.children) == 1:
        tree._root = root.children[0]
        root = tree.root
    if not root.is_leaf and len(root.children) == 0:
        empty = RNode(level=0)
        empty.entry_lo = np.empty((0, tree.ndim))
        empty.entry_hi = np.empty((0, tree.ndim))
        empty.payloads = []
        tree._root = empty

    for lo, hi, item, level in orphans:
        if isinstance(item, RNode) and item.level >= tree.root.level:
            # The tree shrank below the orphan subtree's height; dissolve it.
            orphans.extend(_collect_entries(item))
            continue
        insert(tree, lo, hi, item, level, reinserted_levels=set())


def _collect_entries(node: RNode) -> List[Tuple[np.ndarray, np.ndarray, object, int]]:
    """Return a node's entries as (lo, hi, item, target_level) tuples."""
    los, his = _entry_rects(node)
    out = []
    for i in range(node.entry_count()):
        if node.is_leaf:
            out.append((los[i].copy(), his[i].copy(), node.payloads[i], 0))
        else:
            out.append((los[i].copy(), his[i].copy(), node.children[i], node.level))
    return out
