"""Tests for the query workload generator (paper Section 7.1)."""

import numpy as np
import pytest

from repro.core.cases import (
    CASE_A,
    CASE_B,
    CASE_C,
    CASE_D,
    classify_change,
)
from repro.data.generator import generate
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def data():
    return generate("independent", 3000, 3, seed=99)


@pytest.fixture()
def gen(data):
    return WorkloadGenerator(data, seed=7)


class TestConstruction:
    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(np.empty((0, 2)))

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(np.zeros(5))

    def test_constant_column_does_not_hang(self):
        """A zero-variance dimension must yield whole-domain constraints
        instead of looping forever looking for a wide-enough interval."""
        rng = np.random.default_rng(0)
        data = np.column_stack([rng.uniform(0, 1, 100), np.full(100, 3.5)])
        gen = WorkloadGenerator(data, seed=1)
        q = gen.initial_query()
        assert q.lo[1] == q.hi[1] == 3.5
        refined = gen.refine(q)
        assert refined.lo[1] <= refined.hi[1]

    def test_seed_reproducibility(self, data):
        a = WorkloadGenerator(data, seed=3)
        b = WorkloadGenerator(data, seed=3)
        qa = a.exploratory_stream(20)
        qb = b.exploratory_stream(20)
        assert all(x == y for x, y in zip(qa, qb))


class TestInitialQueries:
    def test_valid_bounds(self, gen, data):
        for _ in range(50):
            q = gen.initial_query()
            assert np.all(q.lo <= q.hi)
            assert np.all(q.lo >= data.min(axis=0))
            assert np.all(q.hi <= data.max(axis=0))

    def test_bounds_within_three_sigma(self, gen, data):
        """Bounds lie within 3 standard deviations of each dimension mean
        (after clipping to the domain)."""
        mean, std = data.mean(axis=0), data.std(axis=0)
        for _ in range(50):
            q = gen.initial_query()
            for i in range(3):
                lo_ok = (
                    abs(q.lo[i] - mean[i]) <= 3 * std[i] + 1e-9
                    or q.lo[i] == data.min(axis=0)[i]
                )
                hi_ok = (
                    abs(q.hi[i] - mean[i]) <= 3 * std[i] + 1e-9
                    or q.hi[i] == data.max(axis=0)[i]
                )
                assert lo_ok and hi_ok

    def test_queries_vary(self, gen):
        queries = {q.key() for q in gen.independent_queries(30)}
        assert len(queries) > 25


class TestRefinement:
    def test_refinement_changes_exactly_one_bound(self, gen):
        for _ in range(100):
            q = gen.initial_query()
            r = gen.refine(q)
            lo_diff = int(np.sum(q.lo != r.lo))
            hi_diff = int(np.sum(q.hi != r.hi))
            assert lo_diff + hi_diff <= 1  # may be 0 when clipped at domain

    def test_refinements_classified_as_incremental_cases(self, gen):
        seen = set()
        for _ in range(300):
            q = gen.initial_query()
            r = gen.refine(q)
            case = classify_change(q, r)
            seen.add(case)
        # all four cases should occur in a large sample
        assert {CASE_A, CASE_B, CASE_C, CASE_D} <= seen

    def test_change_magnitude_is_5_to_10_percent(self, data):
        gen = WorkloadGenerator(data, seed=11)
        for _ in range(100):
            q = gen.initial_query()
            r = gen.refine(q)
            moved_lo = np.flatnonzero(q.lo != r.lo)
            moved_hi = np.flatnonzero(q.hi != r.hi)
            if len(moved_lo):
                dim = moved_lo[0]
                delta = abs(r.lo[dim] - q.lo[dim])
            elif len(moved_hi):
                dim = moved_hi[0]
                delta = abs(r.hi[dim] - q.hi[dim])
            else:
                continue
            width = q.hi[dim] - q.lo[dim]
            # movement capped by domain clipping, so only the upper bound
            # of the 5-10% window can be asserted tightly
            assert delta <= 0.10 * max(width, gen.min_width[dim]) + 1e-9

    def test_refined_bounds_stay_in_domain(self, gen, data):
        q = gen.initial_query()
        for _ in range(200):
            q = gen.refine(q)
            assert np.all(q.lo >= data.min(axis=0) - 1e-12)
            assert np.all(q.hi <= data.max(axis=0) + 1e-12)
            assert np.all(q.lo <= q.hi)


class TestWorkloads:
    def test_session_length(self, gen):
        for _ in range(20):
            s = gen.session()
            assert 2 <= len(s) <= 11  # initial + 1..10 refinements

    def test_exploratory_stream_exact_length(self, gen):
        assert len(gen.exploratory_stream(57)) == 57

    def test_exploratory_sessions_shape(self, gen):
        sessions = gen.exploratory_sessions(5, 100)
        assert len(sessions) == 5
        assert all(len(s) == 100 for s in sessions)

    def test_consecutive_exploratory_queries_are_similar(self, gen):
        """Within a session, consecutive queries overlap heavily."""
        queries = gen.session()
        for a, b in zip(queries, queries[1:]):
            vol = a.overlap_volume(b)
            assert vol > 0.5 * min(a.volume(), b.volume())

    def test_independent_queries_count(self, gen):
        assert len(gen.independent_queries(12)) == 12

    def test_iter_refinements(self, gen):
        it = gen.iter_refinements()
        chain = [next(it) for _ in range(5)]
        assert len(chain) == 5
        for a, b in zip(chain, chain[1:]):
            assert a.overlaps(b)


class TestZipfStream:
    """The serving-bench traffic model: zipf-skewed repeats (dedup bait)
    and upper-bound-only shrinks (subsumption bait)."""

    def test_exact_length_and_determinism(self, data):
        a = WorkloadGenerator(data, seed=13).zipf_stream(60, universe=10)
        b = WorkloadGenerator(data, seed=13).zipf_stream(60, universe=10)
        assert len(a) == 60
        assert all(x == y for x, y in zip(a, b))

    def test_head_queries_repeat(self, data):
        """Zipf skew means the stream is dominated by a few head regions --
        the whole point: repeats are in-flight dedup opportunities."""
        stream = WorkloadGenerator(data, seed=5).zipf_stream(
            100, universe=20, shrink_fraction=0.0
        )
        counts = {}
        for q in stream:
            counts[q.key()] = counts.get(q.key(), 0) + 1
        assert len(counts) < 20  # far fewer distinct queries than requests
        assert max(counts.values()) >= 10  # and a clearly hot head

    def test_shrunken_variants_keep_the_coalescible_geometry(self, data):
        """Every shrunken variant keeps each lower bound and only moves
        upper bounds down, so it is exactly the filter-safe geometry of
        the generalized Theorem 3 (and the cache's case-b path)."""
        gen = WorkloadGenerator(data, seed=9)
        # one base region: every unshrunk draw is the base itself, so the
        # base is recoverable as the element-wise widest query seen
        stream = gen.zipf_stream(80, universe=1, shrink_fraction=0.6)
        base_lo = stream[0].lo
        base_hi = np.max([q.hi for q in stream], axis=0)
        shrunk = 0
        for q in stream:
            assert np.array_equal(q.lo, base_lo)  # lower bounds never move
            assert np.all(q.hi <= base_hi)
            if not np.array_equal(q.hi, base_hi):
                shrunk += 1
        assert shrunk > 0

    def test_shrink_never_inverts_an_interval(self, data):
        stream = WorkloadGenerator(data, seed=2).zipf_stream(
            150, universe=8, shrink_fraction=1.0, max_shrink=0.2
        )
        for q in stream:
            assert np.all(q.lo <= q.hi)

    def test_validation_errors(self, gen):
        with pytest.raises(ValueError):
            gen.zipf_stream(-1)
        with pytest.raises(ValueError):
            gen.zipf_stream(5, universe=0)
        with pytest.raises(ValueError):
            gen.zipf_stream(5, shrink_fraction=1.5)

    def test_zero_requests_is_empty(self, gen):
        assert gen.zipf_stream(0) == []


class TestPartitionStream:
    """The sharded-deployment traffic model: per-tenant constraint regions
    concentrated on the partition key, zipf-skewed over tenants."""

    def test_exact_length_and_determinism(self, data):
        a = WorkloadGenerator(data, seed=13).partition_stream(50, tenants=6)
        b = WorkloadGenerator(data, seed=13).partition_stream(50, tenants=6)
        assert len(a) == 50
        assert all(x == y for x, y in zip(a, b))

    def test_key_intervals_are_concentrated(self, data):
        """Each query's extent on the partition key stays a small fraction
        of the domain -- the property shard pruning feeds on."""
        width = data[:, 0].max() - data[:, 0].min()
        stream = WorkloadGenerator(data, seed=3).partition_stream(
            60, tenants=5, key_dim=0, concentration=0.1, shrink_fraction=0.0
        )
        for q in stream:
            assert q.hi[0] - q.lo[0] <= 0.2 * width + 1e-9

    def test_head_tenants_repeat_base_queries(self, data):
        stream = WorkloadGenerator(data, seed=5).partition_stream(
            120, tenants=10, queries_per_tenant=4, shrink_fraction=0.0
        )
        counts = {}
        for q in stream:
            counts[q.key()] = counts.get(q.key(), 0) + 1
        assert len(counts) < 40  # at most tenants * queries_per_tenant
        assert max(counts.values()) >= 5  # zipf head dominates

    def test_shrinks_only_move_upper_bounds(self, data):
        gen = WorkloadGenerator(data, seed=9)
        base = gen.partition_stream(
            80, tenants=1, queries_per_tenant=1, shrink_fraction=0.0
        )
        shrunk = WorkloadGenerator(data, seed=9).partition_stream(
            80, tenants=1, queries_per_tenant=1, shrink_fraction=0.8
        )
        base_lo, base_hi = base[0].lo, base[0].hi
        for q in shrunk:
            assert np.array_equal(q.lo, base_lo)
            assert np.all(q.lo <= q.hi)
            assert np.all(q.hi <= base_hi + 1e-12)

    def test_respects_key_dim(self, data):
        width1 = data[:, 1].max() - data[:, 1].min()
        stream = WorkloadGenerator(data, seed=4).partition_stream(
            40, tenants=4, key_dim=1, concentration=0.1, shrink_fraction=0.0
        )
        for q in stream:
            assert q.hi[1] - q.lo[1] <= 0.2 * width1 + 1e-9

    def test_validation_errors(self, gen):
        with pytest.raises(ValueError):
            gen.partition_stream(-1)
        with pytest.raises(ValueError):
            gen.partition_stream(5, tenants=0)
        with pytest.raises(ValueError):
            gen.partition_stream(5, key_dim=9)
        with pytest.raises(ValueError):
            gen.partition_stream(5, concentration=0.0)
        with pytest.raises(ValueError):
            gen.partition_stream(5, shrink_fraction=-0.1)

    def test_zero_requests_is_empty(self, gen):
        assert gen.partition_stream(0) == []
