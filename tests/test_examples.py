"""Smoke tests: the example scripts run end to end.

``real_estate_portal.py`` is excluded here (it deliberately uses a larger
dataset and runs for minutes); it is exercised by the documentation runs.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "hotel_search.py", "ampr_tuning.py", "dynamic_updates.py",
     "progressive_preview.py"]
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_quickstart_shows_case_labels():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "case_c" in proc.stdout
    assert "case_b" in proc.stdout
