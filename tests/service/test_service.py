"""Tests for the concurrent :class:`repro.service.QueryService` front."""

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.data.generator import independent
from repro.geometry.constraints import Constraints
from repro.service import QueryService, ServiceReport
from repro.skyline.sfs import sfs_skyline
from repro.storage.faults import FaultInjector, FaultProfile, FaultyDiskTable
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def data():
    return independent(1_500, 2, seed=21)


def reference(data, constraints):
    region = data[constraints.satisfied_mask(data)]
    return region[sfs_skyline(region)] if len(region) else region


def same_multiset(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if len(a) == 0:
        return True
    return np.array_equal(a[np.lexsort(a.T[::-1])], b[np.lexsort(b.T[::-1])])


def make_queries(data, n=24):
    gen = WorkloadGenerator(data, seed=5)
    return list(gen.independent_queries(n))


class TestConcurrentServing:
    def test_all_answers_correct_under_concurrency(self, data):
        engine = CBCS(DiskTable(data))
        queries = make_queries(data)
        with QueryService(engine, workers=8) as svc:
            report = svc.run(queries)
        assert report.answered == len(queries)
        assert not report.errors
        # answers are ordered like the submitted queries and each one is
        # the true constrained skyline, whatever cache state it hit
        for constraints, outcome in zip(queries, report.outcomes):
            assert same_multiset(outcome.skyline, reference(data, constraints))

    def test_work_spreads_over_worker_threads(self, data):
        engine = CBCS(DiskTable(data))
        with QueryService(engine, workers=4) as svc:
            report = svc.run(make_queries(data, n=32))
        assert sum(report.per_worker.values()) == 32
        assert all(name.startswith("cbcs-svc") for name in report.per_worker)
        assert "answered" in report.summary()
        assert isinstance(report, ServiceReport)

    def test_one_shared_cache_serves_every_worker(self, data):
        engine = CBCS(DiskTable(data))
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=4) as svc:
            report = svc.run([c] * 16)
        assert report.answered == 16
        # after the first answer is cached, repeats are exact cache hits;
        # concurrent duplicates may each compute it, but at least the tail
        # of the batch must have hit the shared cache
        assert sum(1 for o in report.outcomes if o.case == "exact") > 0
        assert len(engine.cache) >= 1

    def test_submit_returns_future(self, data):
        engine = CBCS(DiskTable(data))
        c = Constraints([0.2, 0.2], [0.7, 0.7])
        with QueryService(engine, workers=2) as svc:
            outcome = svc.submit(c).result()
        assert same_multiset(outcome.skyline, reference(data, c))


class TestErrorReporting:
    def test_failures_reported_not_raised(self, data):
        injector = FaultInjector(FaultProfile(transient_io=1.0), seed=3)
        engine = CBCS(FaultyDiskTable(DiskTable(data), injector))  # no resilience
        with QueryService(engine, workers=4) as svc:
            report = svc.run(make_queries(data, n=8))
        assert report.answered == 0
        assert len(report.errors) == 8
        assert all(isinstance(exc, IOError) for _, exc in report.errors)
        assert [i for i, _ in report.errors] == list(range(8))

    def test_resilient_engine_degrades_instead(self, data):
        injector = FaultInjector(FaultProfile(transient_io=1.0), seed=3)
        engine = CBCS(
            FaultyDiskTable(DiskTable(data), injector), resilience=True
        )
        with QueryService(engine, workers=4) as svc:
            report = svc.run(make_queries(data, n=6))
        assert not report.errors
        assert all(o.degraded is not None for o in report.outcomes)


class TestObservability:
    def test_health_is_healthy_on_a_fault_free_run(self, data):
        engine = CBCS(DiskTable(data))
        with QueryService(engine, workers=4) as svc:
            svc.run(make_queries(data, n=24))
            report = svc.health()
        assert report.status == "healthy"
        assert report.healthy
        window = report.as_dict()["window"]
        assert window["queries"] == 24
        assert window["qps"] > 0
        assert window["p95_ms"] == window["p95_ms"]  # not NaN
        assert window["errors"] == 0

    def test_health_turns_unhealthy_on_errors(self, data):
        injector = FaultInjector(FaultProfile(transient_io=1.0), seed=3)
        engine = CBCS(FaultyDiskTable(DiskTable(data), injector))
        with QueryService(engine, workers=4) as svc:
            svc.run(make_queries(data, n=12))
            report = svc.health()
        assert report.status == "unhealthy"
        assert any("error rate" in r for r in report.reasons)

    def test_every_outcome_carries_a_distinct_service_minted_id(self, data):
        from repro.obs import Observability
        from repro.obs.sinks import RingBufferSink

        obs = Observability()
        ring = RingBufferSink()
        obs.tracer.add_sink(ring)
        engine = CBCS(DiskTable(data, obs=obs), obs=obs)
        with QueryService(engine, workers=4) as svc:
            report = svc.run(make_queries(data, n=16))
        assert report.answered == 16
        ids = [o.query_id for o in report.outcomes]
        assert all(ids)
        assert len(set(ids)) == 16
        # every root span joins its outcome through the same query_id
        roots = [s for s in ring.spans if s["name"] == "cbcs.query"]
        assert {(s["attrs"] or {}).get("query_id") for s in roots} == set(ids)

    def test_engine_without_obs_mints_no_ids(self, data):
        engine = CBCS(DiskTable(data))
        with QueryService(engine, workers=4) as svc:
            report = svc.run(make_queries(data, n=6))
        assert all(o.query_id is None for o in report.outcomes)

    def test_answers_identical_with_and_without_observability(self, data):
        from repro.obs import Observability

        queries = make_queries(data, n=12)
        plain = CBCS(DiskTable(data))
        answers_off = [plain.query(c).skyline for c in queries]
        obs = Observability()
        instrumented = CBCS(DiskTable(data, obs=obs), obs=obs)
        answers_on = [instrumented.query(c).skyline for c in queries]
        for off, on in zip(answers_off, answers_on):
            assert np.array_equal(off, on)  # bit-identical, same order


class TestLifecycle:
    def test_close_is_idempotent_and_pool_recreates(self, data):
        engine = CBCS(DiskTable(data))
        svc = QueryService(engine, workers=2)
        c = Constraints([0.1, 0.1], [0.9, 0.9])
        svc.submit(c).result()
        svc.close()
        svc.close()
        # the pool lazily recreates after close
        assert svc.submit(c).result().skyline is not None
        svc.close()

    def test_rejects_nonpositive_workers(self, data):
        with pytest.raises(ValueError):
            QueryService(CBCS(DiskTable(data)), workers=0)


class TestShardedEngineService:
    """QueryService over a ShardedCBCS: fleet cache stats and health."""

    def make_sharded(self, data, n_shards=4):
        from repro.core.sharded import ShardedCBCS
        from repro.storage.sharding import ShardedTable

        return ShardedCBCS(ShardedTable(data, n_shards, mode="range"))

    def test_answers_correct_through_the_service(self, data):
        engine = self.make_sharded(data)
        queries = make_queries(data)
        with QueryService(engine, workers=4) as svc:
            report = svc.run(queries)
        assert report.answered == len(queries)
        for constraints, outcome in zip(queries, report.outcomes):
            assert same_multiset(outcome.skyline, reference(data, constraints))
        engine.close()

    def test_stats_aggregate_per_shard_caches(self, data):
        engine = self.make_sharded(data)
        queries = make_queries(data, n=16)
        with QueryService(engine, workers=2) as svc:
            svc.run(queries + queries)  # repeats guarantee some hits
            cache = svc.stats()["cache"]
        assert cache is not None
        assert cache["caches"] == 4
        assert len(cache["per_shard"]) == 4
        assert [s["shard_id"] for s in cache["per_shard"]] == [0, 1, 2, 3]
        total = cache["hits"] + cache["misses"]
        assert total > 0
        assert cache["hit_rate"] == pytest.approx(cache["hits"] / total)
        assert cache["items"] == sum(
            c.stats()["items"] for c in engine.shard_caches()
        )
        engine.close()

    def test_unsharded_stats_have_no_per_shard_breakdown(self, data):
        engine = CBCS(DiskTable(data))
        with QueryService(engine, workers=2) as svc:
            svc.run(make_queries(data, n=4))
            cache = svc.stats()["cache"]
        assert cache is not None
        assert cache["caches"] == 1
        assert "per_shard" not in cache

    def test_health_quarantined_sums_across_shards(self, data):
        engine = self.make_sharded(data)
        caches = engine.shard_caches()
        with QueryService(engine, workers=2) as svc:
            svc.run(make_queries(data, n=4))
            caches[0].quarantined += 2
            caches[3].quarantined += 1
            health = svc.health()
        assert health.as_dict()["quarantined"] == 3
        engine.close()
