"""Tests for in-flight deduplication and subsumption coalescing.

The correctness bar is satellite 4's: a coalesced subsumed answer must be
bit-identical to standalone execution across the overlap cases, and a
follower must fall back to its own execution when its parent degrades or
errors -- coalescing may only ever substitute an exact answer.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.cases import CASE_B, CASE_EXACT, GENERAL_STABLE
from repro.core.cbcs import CBCS
from repro.data.generator import independent
from repro.geometry.constraints import Constraints
from repro.service import QueryService, RequestRejected
from repro.service.coalesce import (
    KIND_DEDUP,
    KIND_SUBSUMED,
    InFlightTable,
    can_coalesce,
    derive_follower_skyline,
)
from repro.skyline.sfs import sfs_skyline
from repro.stats import QueryOutcome, StageTimings
from repro.storage.table import DiskTable


@pytest.fixture(scope="module")
def data():
    return independent(1_200, 2, seed=33)


def reference(data, constraints):
    region = data[constraints.satisfied_mask(data)]
    return region[sfs_skyline(region)] if len(region) else region


def same_multiset(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if len(a) == 0:
        return True
    return np.array_equal(a[np.lexsort(a.T[::-1])], b[np.lexsort(b.T[::-1])])


class TestCanCoalesce:
    def test_identical_regions_coalesce(self):
        c = Constraints([0.1, 0.2], [0.8, 0.9])
        assert can_coalesce(c, Constraints([0.1, 0.2], [0.8, 0.9]))

    def test_pure_upper_bound_shrink_coalesces(self):
        parent = Constraints([0.1, 0.2], [0.8, 0.9])
        assert can_coalesce(parent, Constraints([0.1, 0.2], [0.7, 0.9]))
        assert can_coalesce(parent, Constraints([0.1, 0.2], [0.6, 0.5]))

    def test_raised_lower_bound_never_coalesces(self):
        """The paper's unstable case d: dominators between the old and new
        lower bound can make filtered-out points resurface, so no filter of
        the parent's answer is exact."""
        parent = Constraints([0.1, 0.2], [0.8, 0.9])
        assert not can_coalesce(parent, Constraints([0.3, 0.2], [0.8, 0.9]))
        # even combined with an upper shrink (plain containment holds!)
        assert not can_coalesce(parent, Constraints([0.2, 0.3], [0.7, 0.8]))

    def test_widened_upper_bound_never_coalesces(self):
        parent = Constraints([0.1, 0.2], [0.8, 0.9])
        assert not can_coalesce(parent, Constraints([0.1, 0.2], [0.9, 0.9]))

    def test_dimensionality_mismatch_never_coalesces(self):
        parent = Constraints([0.1, 0.2], [0.8, 0.9])
        child = Constraints([0.1, 0.2, 0.0], [0.8, 0.9, 1.0])
        assert not can_coalesce(parent, child)


class TestDeriveFollowerSkyline:
    def test_filtered_answer_matches_standalone(self, data):
        """For every safe geometry, filtering the parent's skyline equals
        computing the child's skyline from scratch -- the generalized
        Theorem 3 the coalescer relies on."""
        parent = Constraints([0.05, 0.05], [0.9, 0.9])
        parent_sky = reference(data, parent)
        for child in [
            Constraints([0.05, 0.05], [0.9, 0.9]),  # identity filter
            Constraints([0.05, 0.05], [0.6, 0.9]),  # case_b: one dim shrunk
            Constraints([0.05, 0.05], [0.5, 0.4]),  # general_stable: both
        ]:
            derived = derive_follower_skyline(parent, child, parent_sky)
            assert same_multiset(derived, reference(data, child))

    def test_unsafe_containment_is_rejected(self, data):
        parent = Constraints([0.05, 0.05], [0.9, 0.9])
        child = Constraints([0.2, 0.2], [0.8, 0.8])  # raised lo: unsafe
        with pytest.raises(AssertionError):
            derive_follower_skyline(parent, child, reference(data, parent))

    def test_resurfacing_point_proves_filtering_unsound(self):
        """Concrete case-d counterexample: a point dominated only by points
        below the raised lower bound is in the child's true skyline but not
        in the parent's answer, so no filter can produce it."""
        pts = np.array([[0.1, 0.1], [0.4, 0.4]])
        parent = Constraints([0.0, 0.0], [1.0, 1.0])
        child = Constraints([0.3, 0.3], [1.0, 1.0])
        parent_sky = reference(pts, parent)  # [[0.1, 0.1]] dominates the other
        child_sky = reference(pts, child)  # [[0.4, 0.4]] resurfaces
        filtered = parent_sky[child.satisfied_mask(parent_sky)]
        assert len(filtered) == 0 and len(child_sky) == 1


class _FakeRequest:
    def __init__(self, constraints):
        self.constraints = constraints
        self.entry = None
        self.future = Future()


class TestInFlightTable:
    def test_join_requires_a_live_leader(self):
        table = InFlightTable()
        leader = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert table.try_join(leader) is None  # nothing in flight yet
        assert table.register(leader) is None  # becomes the leader
        assert len(table) == 1

    def test_identical_follower_joins_as_dedup(self):
        table = InFlightTable()
        leader = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        table.register(leader)
        twin = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert table.try_join(twin) == KIND_DEDUP

    def test_shrunken_follower_joins_as_subsumed(self):
        table = InFlightTable()
        leader = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        table.register(leader)
        child = _FakeRequest(Constraints([0.1, 0.1], [0.5, 0.8]))
        assert table.try_join(child) == KIND_SUBSUMED

    def test_unsafe_follower_does_not_join(self):
        table = InFlightTable()
        table.register(_FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8])))
        riskier = _FakeRequest(Constraints([0.2, 0.1], [0.8, 0.8]))
        assert table.try_join(riskier) is None

    def test_register_race_joins_instead(self):
        """A request that lost the try_join/register race still attaches as
        a follower instead of becoming a duplicate leader."""
        table = InFlightTable()
        table.register(_FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8])))
        racer = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert table.register(racer) == KIND_DEDUP

    def test_finish_returns_followers_once(self):
        table = InFlightTable()
        leader = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        table.register(leader)
        follower = _FakeRequest(Constraints([0.1, 0.1], [0.6, 0.8]))
        table.try_join(follower)
        resolved = table.finish(leader)
        assert [(r, k) for r, k in resolved] == [(follower, KIND_SUBSUMED)]
        assert table.finish(leader) == []  # idempotent
        assert len(table) == 0
        # a finished entry accepts no late joiners
        late = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert table.try_join(late) is None

    def test_finish_is_a_noop_for_followers(self):
        table = InFlightTable()
        leader = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        follower = _FakeRequest(Constraints([0.1, 0.1], [0.8, 0.8]))
        table.register(leader)
        table.try_join(follower)
        assert table.finish(follower) == []
        assert len(table) == 1


class BlockingEngine:
    """A fake engine whose query() blocks until released, returning a
    prepared outcome -- lets a test hold a leader in flight while followers
    pile on, then observe exactly what each future resolves to."""

    name = "blocking-fake"

    def __init__(self, data, outcome_fn=None):
        self.data = data
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = []
        self._outcome_fn = outcome_fn

    def query(self, constraints, query_id=None, deadline=None):
        self.calls.append(constraints)
        self.started.set()
        assert self.release.wait(timeout=10.0), "test forgot to release"
        if self._outcome_fn is not None:
            return self._outcome_fn(constraints)
        skyline = reference(self.data, constraints)
        return QueryOutcome(
            skyline=skyline,
            method=self.name,
            timings=StageTimings(),
            query_id=query_id,
        )


class TestServiceCoalescing:
    def hold_leader(self, service, engine, constraints):
        leader = service.submit(constraints)
        assert engine.started.wait(timeout=10.0)
        return leader

    def test_dedup_shares_one_execution_bit_exactly(self, data):
        engine = BlockingEngine(data)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=1) as svc:
            leader = self.hold_leader(svc, engine, c)
            twins = [svc.submit(c) for _ in range(3)]
            engine.release.set()
            parent = leader.result(timeout=10.0)
            for future in twins:
                child = future.result(timeout=10.0)
                assert same_multiset(child.skyline, parent.skyline)
                assert child.case == CASE_EXACT and child.cache_hit
        assert len(engine.calls) == 1  # one storage execution, four answers
        assert svc.stats()["coalesced_dedup"] == 3

    @pytest.mark.parametrize(
        "child_c, case",
        [
            # case_b: a single upper bound shrunk
            (Constraints([0.1, 0.1], [0.6, 0.8]), CASE_B),
            # general stable change: both upper bounds shrunk
            (Constraints([0.1, 0.1], [0.5, 0.4]), GENERAL_STABLE),
        ],
    )
    def test_subsumed_answer_bit_identical_to_standalone(
        self, data, child_c, case
    ):
        engine = BlockingEngine(data)
        parent_c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=1) as svc:
            leader = self.hold_leader(svc, engine, parent_c)
            follower = svc.submit(child_c)
            engine.release.set()
            leader.result(timeout=10.0)
            child = follower.result(timeout=10.0)
        # the coalesced answer equals a from-scratch execution, bit for bit
        assert same_multiset(child.skyline, reference(data, child_c))
        assert child.case == case
        assert len(engine.calls) == 1
        assert svc.stats()["coalesced_subsumed"] == 1

    def test_unsafe_overlap_executes_on_its_own(self, data):
        """Raised-lo overlap (case d) must never piggyback."""
        engine = BlockingEngine(data)
        parent_c = Constraints([0.1, 0.1], [0.8, 0.8])
        child_c = Constraints([0.3, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=2) as svc:
            leader = self.hold_leader(svc, engine, parent_c)
            follower = svc.submit(child_c)
            engine.release.set()
            leader.result(timeout=10.0)
            child = follower.result(timeout=10.0)
        assert same_multiset(child.skyline, reference(data, child_c))
        assert child.served_by is None
        assert len(engine.calls) == 2
        assert svc.stats()["coalesced"] == 0

    def test_follower_falls_back_when_parent_degrades(self, data):
        """A stale/degraded parent answer must not be shared: the follower
        re-executes and (here) gets a clean answer of its own."""
        served = {"n": 0}

        def outcome_fn(constraints):
            served["n"] += 1
            skyline = reference(data, constraints)
            if served["n"] == 1:  # the leader's execution comes back stale
                return QueryOutcome(
                    skyline=skyline,
                    method="blocking-fake",
                    timings=StageTimings(),
                    degraded="stale",
                    stale=True,
                )
            return QueryOutcome(
                skyline=skyline, method="blocking-fake", timings=StageTimings()
            )

        engine = BlockingEngine(data, outcome_fn=outcome_fn)
        parent_c = Constraints([0.1, 0.1], [0.8, 0.8])
        child_c = Constraints([0.1, 0.1], [0.6, 0.8])
        with QueryService(engine, workers=1) as svc:
            leader = self.hold_leader(svc, engine, parent_c)
            follower = svc.submit(child_c)
            engine.release.set()
            parent = leader.result(timeout=10.0)
            child = follower.result(timeout=10.0)
        assert parent.stale
        assert not child.stale and child.degraded is None
        assert child.served_by is None  # own execution, not a filtered copy
        assert same_multiset(child.skyline, reference(data, child_c))
        assert len(engine.calls) == 2
        assert svc.stats()["coalesced"] == 0

    def test_follower_falls_back_when_parent_errors(self, data):
        served = {"n": 0}

        def outcome_fn(constraints):
            served["n"] += 1
            if served["n"] == 1:
                raise RuntimeError("leader exploded")
            return QueryOutcome(
                skyline=reference(self.data_ref, constraints),
                method="blocking-fake",
                timings=StageTimings(),
            )

        self.data_ref = data
        engine = BlockingEngine(data, outcome_fn=outcome_fn)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=1) as svc:
            leader = self.hold_leader(svc, engine, c)
            follower = svc.submit(c)
            engine.release.set()
            with pytest.raises(RuntimeError):
                leader.result(timeout=10.0)
            child = follower.result(timeout=10.0)
        # the leader's failure reaches only the leader; the follower's own
        # execution answers it correctly
        assert same_multiset(child.skyline, reference(data, c))
        assert svc.stats()["errors"] == 1
        assert svc.stats()["answered"] == 1

    def test_coalescing_disabled_executes_everything(self, data):
        engine = BlockingEngine(data)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=2, coalesce=False) as svc:
            f1 = self.hold_leader(svc, engine, c)
            f2 = svc.submit(c)
            engine.release.set()
            f1.result(timeout=10.0)
            f2.result(timeout=10.0)
        assert len(engine.calls) == 2
        assert svc.stats()["coalesced"] == 0

    def test_coalesced_outcome_carries_ids_for_correlation(self, data):
        """Satellite 2: the piggybacked outcome keeps its own query_id and
        names the executing query in served_by."""
        from repro.obs import MetricsRegistry, Observability, Tracer

        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        table = DiskTable(independent(400, 2, seed=3))
        engine = CBCS(table, obs=obs)
        blocking = BlockingEngine(independent(400, 2, seed=3))
        blocking.obs = obs  # service probes engine.obs for id minting

        c = Constraints([0.1, 0.1], [0.8, 0.8])
        with QueryService(blocking, workers=1) as svc:
            leader = self.hold_leader(svc, blocking, c)
            follower = svc.submit(c)
            blocking.release.set()
            parent = leader.result(timeout=10.0)
            child = follower.result(timeout=10.0)
        assert child.query_id is not None
        assert parent.query_id is not None
        assert child.query_id != parent.query_id
        assert child.served_by == parent.query_id
        assert (
            obs.metrics.counter_value("service_coalesced_total", kind="dedup")
            == 1
        )


class TestQueueDeadlines:
    def test_deadline_expired_in_queue_is_a_typed_rejection(self, data):
        """A request whose budget dies while queued resolves to a typed
        deadline_exceeded outcome -- never a silent hang, and the engine is
        never consulted for it."""
        engine = BlockingEngine(data)
        blocker_c = Constraints([0.1, 0.1], [0.8, 0.8])
        # unsafe overlap: must queue behind the blocker, cannot piggyback
        starved_c = Constraints([0.3, 0.1], [0.8, 0.8])
        with QueryService(engine, workers=1) as svc:
            blocker = svc.submit(blocker_c)
            assert engine.started.wait(timeout=10.0)
            starved = svc.submit(starved_c, deadline_ms=1e-3)
            time.sleep(0.05)  # let the tiny budget expire while queued
            engine.release.set()
            blocker.result(timeout=10.0)
            outcome = starved.result(timeout=10.0)
        assert isinstance(outcome, RequestRejected)
        assert outcome.status == "deadline_exceeded"
        assert "queued" in outcome.reason
        assert len(engine.calls) == 1  # the starved request never executed
        assert svc.stats()["deadline_exceeded"] == 1
