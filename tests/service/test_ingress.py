"""Tests for the bounded priority ingress queue and admission control."""

import threading

import pytest

from repro.obs.window import WindowSnapshot
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.queue import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    IngressQueue,
    priority_rank,
)


class TestPriorityRank:
    def test_known_classes_are_ordered(self):
        assert priority_rank("interactive") < priority_rank("normal")
        assert priority_rank("normal") < priority_rank("batch")
        assert DEFAULT_PRIORITY in PRIORITIES

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            priority_rank("vip")


class TestIngressQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IngressQueue(0)

    def test_drains_by_priority_then_fifo(self):
        q = IngressQueue(capacity=16)
        assert q.try_put("b1", "batch")
        assert q.try_put("n1", "normal")
        assert q.try_put("i1", "interactive")
        assert q.try_put("i2", "interactive")
        assert q.try_put("n2", "normal")
        order = [q.get(timeout=0.1) for _ in range(5)]
        # interactive before normal before batch, FIFO within each class
        assert order == ["i1", "i2", "n1", "n2", "b1"]

    def test_full_queue_rejects_explicitly(self):
        q = IngressQueue(capacity=2)
        assert q.try_put("a")
        assert q.try_put("b")
        assert not q.try_put("c")  # never blocks, never raises
        assert q.stats.rejected_full == 1
        assert len(q) == 2

    def test_force_put_bypasses_the_capacity_bound(self):
        q = IngressQueue(capacity=1)
        assert q.try_put("a")
        assert not q.try_put("b")
        assert q.try_put("b", force=True)
        assert len(q) == 2

    def test_close_drains_queued_items_then_signals(self):
        q = IngressQueue(capacity=4)
        q.try_put("a")
        q.try_put("b")
        q.close()
        assert q.closed
        assert not q.try_put("c")  # unforced puts refuse after close
        # already-admitted work still drains; then workers get the stop signal
        assert q.get(timeout=0.1) == "a"
        assert q.get(timeout=0.1) == "b"
        assert q.get(timeout=0.1) is None

    def test_forced_put_lands_even_after_close(self):
        """Redispatched followers are already admitted, so they must not
        be droppable by a concurrent shutdown."""
        q = IngressQueue(capacity=1)
        q.close()
        assert q.try_put("late", force=True)
        assert q.get(timeout=0.1) == "late"

    def test_get_timeout_returns_none(self):
        q = IngressQueue(capacity=1)
        assert q.get(timeout=0.01) is None

    def test_get_blocks_until_an_item_arrives(self):
        q = IngressQueue(capacity=1)
        got = []

        def consumer():
            got.append(q.get(timeout=2.0))

        t = threading.Thread(target=consumer)
        t.start()
        q.try_put("x")
        t.join(timeout=2.0)
        assert got == ["x"]

    def test_high_watermark_tracks_peak_depth(self):
        q = IngressQueue(capacity=8)
        for item in "abc":
            q.try_put(item)
        q.get(timeout=0.1)
        q.get(timeout=0.1)
        assert q.depth == 1
        assert q.stats.high_watermark == 3
        stats = q.stats.as_dict()
        assert stats["enqueued"] == 3 and stats["dequeued"] == 2


class TestAdmissionPolicy:
    def test_defaults_validate(self):
        policy = AdmissionPolicy()
        assert policy.capacity == 4096
        assert not policy.latency_aware

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(capacity=0)

    def test_rejects_unknown_priority_class(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(depth_shed_fractions={"vip": 0.5})
        with pytest.raises(ValueError):
            AdmissionPolicy(p99_shed_ms={"vip": 10.0})

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(depth_shed_fractions={"batch": 0.0})
        with pytest.raises(ValueError):
            AdmissionPolicy(depth_shed_fractions={"batch": 1.5})


def snap(queries, p99_ms):
    return WindowSnapshot(window_s=60.0, span_s=1.0, queries=queries, p99_ms=p99_ms)


class TestAdmissionController:
    def test_sheds_by_class_as_depth_rises(self):
        ctrl = AdmissionController(AdmissionPolicy(capacity=100))
        # graceful brownout: batch sheds at half a queue, normal near a
        # full one, interactive only at the hard bound
        assert ctrl.decide("batch", queue_depth=49) is None
        reason = ctrl.decide("batch", queue_depth=50)
        assert reason is not None and "batch" in reason
        assert ctrl.decide("normal", queue_depth=89) is None
        assert ctrl.decide("normal", queue_depth=90) is not None
        # interactive's fraction is 1.0: admission never sheds it on depth
        # (the queue's own capacity bound is the only limit)
        assert ctrl.decide("interactive", queue_depth=100) is None
        assert ctrl.shed_by_class == {"interactive": 0, "normal": 1, "batch": 1}
        assert ctrl.shed_total == 2

    def test_latency_shedding_needs_enough_samples(self):
        ctrl = AdmissionController(
            AdmissionPolicy(p99_shed_ms={"batch": 50.0}, min_window_queries=20)
        )
        thin = snap(5, 500.0)
        assert ctrl.decide("batch", queue_depth=0, window_snapshot=thin) is None
        fat = snap(25, 500.0)
        reason = ctrl.decide("batch", queue_depth=0, window_snapshot=fat)
        assert reason is not None and "p99" in reason

    def test_latency_shedding_is_per_class(self):
        ctrl = AdmissionController(
            AdmissionPolicy(p99_shed_ms={"batch": 50.0}, min_window_queries=1)
        )
        slow = snap(30, 80.0)
        assert ctrl.decide("batch", queue_depth=0, window_snapshot=slow)
        # classes without a threshold are never latency-shed
        assert ctrl.decide("normal", queue_depth=0, window_snapshot=slow) is None
        assert (
            ctrl.decide("interactive", queue_depth=0, window_snapshot=slow)
            is None
        )

    def test_nan_p99_never_sheds(self):
        ctrl = AdmissionController(
            AdmissionPolicy(p99_shed_ms={"batch": 50.0}, min_window_queries=1)
        )
        empty = snap(30, float("nan"))
        assert ctrl.decide("batch", queue_depth=0, window_snapshot=empty) is None

    def test_default_policy_never_sheds_with_headroom(self):
        ctrl = AdmissionController()
        for priority in PRIORITIES:
            assert ctrl.decide(priority, queue_depth=1000) is None
        assert ctrl.shed_total == 0
