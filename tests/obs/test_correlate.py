"""Tests for query-id minting, context binding, and artifact joining."""

import json
import threading

import numpy as np

from repro.core.cbcs import CBCS
from repro.geometry.constraints import Constraints
from repro.obs import Observability
from repro.obs.correlate import (
    QueryCorrelation,
    bind,
    correlate,
    current_query_id,
    main,
    render_correlation,
)
from repro.obs.sinks import JsonlSink, RingBufferSink
from repro.storage.table import DiskTable


class TestBind:
    def test_default_is_none(self):
        assert current_query_id() is None

    def test_bind_installs_and_restores(self):
        with bind("q1"):
            assert current_query_id() == "q1"
        assert current_query_id() is None

    def test_bind_none_is_a_noop(self):
        with bind("outer"):
            with bind(None):
                assert current_query_id() == "outer"
            assert current_query_id() == "outer"

    def test_nested_binds_shadow_and_restore(self):
        with bind("a"):
            with bind("b"):
                assert current_query_id() == "b"
            assert current_query_id() == "a"

    def test_bind_restores_after_exception(self):
        try:
            with bind("q1"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_query_id() is None

    def test_threads_do_not_share_bindings(self):
        seen = {}

        def worker():
            seen["worker"] = current_query_id()

        with bind("main-q"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["worker"] is None  # no implicit propagation


class TestQueryCorrelation:
    def test_ids_are_monotone_and_prefixed(self):
        corr = QueryCorrelation()
        assert corr.new_id() == "q00000001"
        assert corr.new_id() == "q00000002"

    def test_custom_prefix(self):
        assert QueryCorrelation(prefix="svc").new_id() == "svc00000001"

    def test_ids_unique_under_concurrency(self):
        corr = QueryCorrelation()
        ids = []
        lock = threading.Lock()

        def mint():
            mine = [corr.new_id() for _ in range(200)]
            with lock:
                ids.extend(mine)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == len(ids) == 800


def _run_instrumented(tmp_path, n_queries=6):
    obs = Observability()
    obs.tracer.add_sink(JsonlSink(tmp_path / "trace.jsonl"))
    obs.add_outcome_sink(JsonlSink(tmp_path / "queries.jsonl"))
    rng = np.random.default_rng(0)
    engine = CBCS(DiskTable(rng.random((500, 3)), obs=obs), obs=obs)
    outcomes = [
        engine.query(
            Constraints(lo=rng.random(3) * 0.3, hi=0.5 + rng.random(3) * 0.5)
        )
        for _ in range(n_queries)
    ]
    obs.close()
    engine.close()
    return outcomes


class TestEngineCorrelation:
    def test_every_outcome_gets_a_distinct_id(self, tmp_path):
        outcomes = _run_instrumented(tmp_path)
        ids = [o.query_id for o in outcomes]
        assert all(ids)
        assert len(set(ids)) == len(ids)

    def test_all_spans_of_a_query_carry_its_id(self, tmp_path):
        obs = Observability()
        ring = RingBufferSink()
        obs.tracer.add_sink(ring)
        rng = np.random.default_rng(1)
        engine = CBCS(DiskTable(rng.random((500, 3)), obs=obs), obs=obs)
        outcome = engine.query(
            Constraints(lo=np.zeros(3), hi=np.full(3, 0.6))
        )
        assert outcome.query_id is not None
        for span in ring.spans:
            assert (span["attrs"] or {})["query_id"] == outcome.query_id
        engine.close()

    def test_parallel_executor_lanes_inherit_the_id(self, tmp_path):
        obs = Observability()
        ring = RingBufferSink()
        obs.tracer.add_sink(ring)
        rng = np.random.default_rng(2)
        engine = CBCS(
            DiskTable(rng.random((2000, 3)), obs=obs), obs=obs, workers=4
        )
        queries = [
            Constraints(lo=rng.random(3) * 0.3, hi=0.5 + rng.random(3) * 0.5)
            for _ in range(10)
        ]
        for c in queries:
            engine.query(c)
        fetches = [s for s in ring.spans if s["name"] == "table.range_query"]
        assert fetches
        assert all((s["attrs"] or {}).get("query_id") for s in fetches)
        engine.close()

    def test_disabled_obs_mints_no_id(self):
        rng = np.random.default_rng(3)
        engine = CBCS(DiskTable(rng.random((200, 3))))
        outcome = engine.query(
            Constraints(lo=np.zeros(3), hi=np.full(3, 0.7))
        )
        assert outcome.query_id is None
        assert outcome.as_record()["query_id"] is None
        engine.close()

    def test_caller_supplied_id_wins(self):
        obs = Observability()
        rng = np.random.default_rng(4)
        engine = CBCS(DiskTable(rng.random((200, 3)), obs=obs), obs=obs)
        outcome = engine.query(
            Constraints(lo=np.zeros(3), hi=np.full(3, 0.7)),
            query_id="svc00000042",
        )
        assert outcome.query_id == "svc00000042"
        engine.close()

    def test_executed_plan_is_stamped_but_explain_is_not(self):
        obs = Observability()
        ring = RingBufferSink()
        obs.tracer.add_sink(ring)
        rng = np.random.default_rng(5)
        engine = CBCS(DiskTable(rng.random((500, 3)), obs=obs), obs=obs)
        base = Constraints(lo=np.zeros(3), hi=np.full(3, 0.6))
        refine = Constraints(lo=np.zeros(3), hi=np.full(3, 0.5))
        engine.query(base)
        assert engine.explain(refine).query_id is None
        engine.close()


class TestCorrelateJoin:
    def test_correlate_joins_spans_and_outcome(self, tmp_path):
        outcomes = _run_instrumented(tmp_path)
        target = outcomes[0].query_id
        joined = correlate(tmp_path, target)
        assert joined["outcome"]["query_id"] == target
        assert joined["spans"]
        assert all(
            s["attrs"]["query_id"] == target for s in joined["spans"]
        )

    def test_correlate_missing_dir_is_empty_not_error(self, tmp_path):
        joined = correlate(tmp_path / "absent", "q00000001")
        assert joined["spans"] == []
        assert joined["outcome"] is None

    def test_torn_jsonl_lines_are_skipped(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text(
            json.dumps({"name": "x", "attrs": {"query_id": "q1"}})
            + "\n{truncated"
        )
        joined = correlate(tmp_path, "q1")
        assert len(joined["spans"]) == 1

    def test_render_correlation_mentions_outcome_and_spans(self, tmp_path):
        outcomes = _run_instrumented(tmp_path)
        text = render_correlation(correlate(tmp_path, outcomes[0].query_id))
        assert outcomes[0].query_id in text
        assert "cbcs.query" in text

    def test_cli_exit_codes(self, tmp_path, capsys):
        outcomes = _run_instrumented(tmp_path)
        assert main([str(tmp_path), outcomes[0].query_id]) == 0
        assert main([str(tmp_path), "q99999999"]) == 1
        capsys.readouterr()

    def test_cli_json_output(self, tmp_path, capsys):
        outcomes = _run_instrumented(tmp_path)
        assert main([str(tmp_path), outcomes[0].query_id, "--json"]) == 0
        joined = json.loads(capsys.readouterr().out)
        assert joined["query_id"] == outcomes[0].query_id


class _GatedEngine:
    """Delegates to a real CBCS but blocks in query() until released, so a
    test can deterministically pile a follower onto an in-flight leader."""

    def __init__(self, engine):
        self.engine = engine
        self.obs = engine.obs
        self.started = threading.Event()
        self.release = threading.Event()

    def query(self, constraints, query_id=None, deadline=None):
        self.started.set()
        assert self.release.wait(timeout=10.0)
        return self.engine.query(constraints, query_id=query_id)

    def close(self):
        self.engine.close()


def _run_coalesced(tmp_path):
    """Serve two identical queries where the second provably piggybacks;
    returns (parent_outcome, child_outcome) with artifacts in tmp_path."""
    from repro.service import QueryService

    obs = Observability()
    obs.tracer.add_sink(JsonlSink(tmp_path / "trace.jsonl"))
    obs.add_outcome_sink(JsonlSink(tmp_path / "queries.jsonl"))
    rng = np.random.default_rng(11)
    engine = _GatedEngine(CBCS(DiskTable(rng.random((400, 3)), obs=obs), obs=obs))
    c = Constraints(lo=np.zeros(3), hi=np.full(3, 0.7))
    with QueryService(engine, workers=1) as svc:
        leader = svc.submit(c)
        assert engine.started.wait(timeout=10.0)
        follower = svc.submit(c)  # joins the in-flight leader
        engine.release.set()
        parent = leader.result(timeout=10.0)
        child = follower.result(timeout=10.0)
    obs.close()
    engine.close()
    assert child.served_by == parent.query_id  # sanity: it did coalesce
    return parent, child


class TestServedByJoin:
    """Satellite 2: a coalesced request is joinable by its *own* query_id;
    the join follows ``served_by`` to the executing query's spans."""

    def test_child_outcome_record_carries_served_by(self, tmp_path):
        parent, child = _run_coalesced(tmp_path)
        joined = correlate(tmp_path, child.query_id)
        assert joined["outcome"]["query_id"] == child.query_id
        assert joined["served_by"] == parent.query_id

    def test_parent_spans_are_joined_one_hop(self, tmp_path):
        parent, child = _run_coalesced(tmp_path)
        joined = correlate(tmp_path, child.query_id)
        # the child's own spans include the zero-duration coalesce event...
        assert any(s["name"] == "service.coalesced" for s in joined["spans"])
        # ...and the executing query's real work appears as parent_spans
        parent_names = {s["name"] for s in joined["parent_spans"]}
        assert "cbcs.query" in parent_names
        assert all(
            s["attrs"]["query_id"] == parent.query_id
            for s in joined["parent_spans"]
        )

    def test_directly_executed_query_has_no_parent(self, tmp_path):
        parent, _child = _run_coalesced(tmp_path)
        joined = correlate(tmp_path, parent.query_id)
        assert joined["served_by"] is None
        assert joined["parent_spans"] == []

    def test_render_mentions_served_by(self, tmp_path):
        parent, child = _run_coalesced(tmp_path)
        text = render_correlation(correlate(tmp_path, child.query_id))
        assert "served by:" in text
        assert parent.query_id in text
        assert "cbcs.query" in text  # the parent's spans render too
