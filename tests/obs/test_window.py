"""Tests for the rolling time-bucketed outcome window."""

import math
import threading

import pytest

from repro.obs.window import RollingWindow


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_window(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("window_s", 10.0)
    kwargs.setdefault("bucket_s", 1.0)
    return RollingWindow(clock=clock, **kwargs), clock


class TestRecording:
    def test_counts_and_rates(self):
        window, clock = make_window()
        for i in range(10):
            window.record(
                total_ms=float(i),
                cache_hit=i % 2 == 0,
                degraded="ampr" if i == 3 else None,
                stale=i == 4,
            )
        window.record_error()
        snap = window.snapshot()
        assert snap.queries == 10
        assert snap.errors == 1
        assert snap.cache_hits == 5
        assert snap.hit_ratio == pytest.approx(0.5)
        assert snap.degraded_rate == pytest.approx(0.1)
        assert snap.stale_rate == pytest.approx(0.1)
        assert snap.error_rate == pytest.approx(1 / 11)
        assert snap.rungs == {"ampr": 1}

    def test_percentiles_and_mean(self):
        window, clock = make_window()
        for v in range(1, 101):
            window.record(total_ms=float(v))
        snap = window.snapshot()
        assert snap.p50_ms == pytest.approx(50.0, abs=1.0)
        assert snap.p95_ms == pytest.approx(95.0, abs=1.0)
        assert snap.p99_ms == pytest.approx(99.0, abs=1.0)
        assert snap.mean_ms == pytest.approx(50.5)

    def test_empty_window_is_nan_not_crash(self):
        window, clock = make_window()
        snap = window.snapshot()
        assert snap.queries == 0
        assert math.isnan(snap.p95_ms)
        assert math.isnan(snap.hit_ratio)
        assert math.isnan(snap.error_rate)
        assert snap.qps == 0.0

    def test_old_buckets_age_out(self):
        window, clock = make_window(window_s=5.0)
        window.record(total_ms=1.0)
        assert window.snapshot().queries == 1
        clock.advance(6.5)  # past the window: bucket 0 is outside
        assert window.snapshot().queries == 0
        # totals survive the expiry
        assert window.total_queries == 1

    def test_ring_reuse_resets_stale_bucket(self):
        window, clock = make_window(window_s=3.0, bucket_s=1.0)
        window.record(total_ms=1.0)
        clock.advance(4.0)  # wraps the ring back onto bucket index 0's slot
        window.record(total_ms=2.0)
        snap = window.snapshot()
        assert snap.queries == 1  # old bucket was reset, not double counted

    def test_qps_uses_populated_span_not_whole_window(self):
        window, clock = make_window(window_s=60.0)
        for _ in range(100):
            window.record(total_ms=1.0)
        clock.advance(2.0)
        snap = window.snapshot()
        assert snap.qps == pytest.approx(50.0, rel=0.1)

    def test_sample_cap_keeps_counts_exact(self):
        window, clock = make_window(max_samples_per_bucket=10)
        for v in range(100):
            window.record(total_ms=float(v))
        snap = window.snapshot()
        assert snap.queries == 100  # count exact beyond the latency cap
        assert snap.p50_ms <= 9.0  # percentile from the retained prefix


class TestOutcomeSinkCompat:
    def test_emit_accepts_query_outcome_records(self):
        window, clock = make_window()
        window.emit(
            {
                "query_id": "q00000001",
                "total_ms": 12.5,
                "cache_hit": True,
                "degraded": "stale",
                "stale": True,
            }
        )
        snap = window.snapshot()
        assert snap.queries == 1
        assert snap.cache_hits == 1
        assert snap.stale == 1
        assert snap.rungs == {"stale": 1}

    def test_emit_tolerates_minimal_records(self):
        window, clock = make_window()
        window.emit({})
        assert window.snapshot().queries == 1


class TestSnapshotSerialization:
    def test_as_dict_is_json_ready(self):
        import json

        window, clock = make_window()
        window.record(total_ms=3.0, cache_hit=True)
        payload = json.loads(json.dumps(window.snapshot().as_dict()))
        assert payload["queries"] == 1
        assert payload["cache_hit_ratio"] == 1.0
        assert "p99_ms" in payload and "rungs" in payload


class TestValidationAndConcurrency:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RollingWindow(window_s=0)
        with pytest.raises(ValueError):
            RollingWindow(window_s=1.0, bucket_s=2.0)

    def test_concurrent_recording_is_consistent(self):
        window = RollingWindow(window_s=60.0)
        n, threads = 500, 4

        def pump():
            for _ in range(n):
                window.record(total_ms=1.0, cache_hit=True)

        workers = [threading.Thread(target=pump) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        snap = window.snapshot()
        assert snap.queries == n * threads
        assert snap.cache_hits == n * threads
