"""Tests for the OpenMetrics exporter and the per-query structured log."""

import json

import numpy as np
import pytest

from repro.obs import Observability
from repro.obs.export import main, render_openmetrics, save_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink, read_jsonl
from repro.stats import QueryOutcome


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("queries_total", 3, method="Baseline")
    reg.inc("cache_lookups_total", 2, strategy="MaxOverlapSP", outcome="hit")
    reg.set_gauge("cache_items", 7)
    for v in (1.0, 2.0, 3.0):
        reg.observe("query_total_ms", v, method="Baseline")
    return reg


class TestRenderOpenMetrics:
    def test_counter_family_and_total_suffix(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_queries counter" in text
        assert 'repro_queries_total{method="Baseline"} 3' in text

    def test_gauge_and_summary(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_cache_items gauge" in text
        assert "repro_cache_items 7" in text
        assert "# TYPE repro_query_total_ms summary" in text
        assert 'repro_query_total_ms{method="Baseline",quantile="0.5"} 2' in text
        assert 'repro_query_total_ms_count{method="Baseline"} 3' in text
        assert 'repro_query_total_ms_sum{method="Baseline"} 6' in text

    def test_ends_with_eof_marker(self):
        assert render_openmetrics(populated_registry()).endswith("# EOF\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.inc("weird_total", method='a"b\\c\nd')
        text = render_openmetrics(reg)
        assert 'method="a\\"b\\\\c\\nd"' in text

    @pytest.mark.parametrize(
        "raw, escaped",
        [
            ('say "hi"', 'say \\"hi\\"'),
            ("back\\slash", "back\\\\slash"),
            ("line\nbreak", "line\\nbreak"),
            ("\\n", "\\\\n"),  # a literal backslash-n is not a newline
            ("plain", "plain"),
        ],
    )
    def test_label_value_escaping_cases(self, raw, escaped):
        reg = MetricsRegistry()
        reg.inc("edge_total", method=raw)
        assert f'method="{escaped}"' in render_openmetrics(reg)

    def test_escaping_applies_to_gauges_and_summaries_too(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0, label='v"1\n')
        reg.observe("h_ms", 2.0, stage="a\\b")
        text = render_openmetrics(reg)
        assert 'label="v\\"1\\n"' in text
        assert 'stage="a\\\\b"' in text
        # every rendered sample line must stay single-line: name{...} value
        body = [ln for ln in text.splitlines() if ln and not ln.startswith("#")]
        for line in body:
            assert line.startswith("repro_")
            assert "\n" not in line

    def test_escaped_output_has_one_line_per_sample(self):
        reg = MetricsRegistry()
        reg.inc("multi_total", method="x\ny\nz")
        text = render_openmetrics(reg)
        sample_lines = [
            ln for ln in text.splitlines() if ln.startswith("repro_multi")
        ]
        assert len(sample_lines) == 1

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.inc("odd.metric-name_total")
        assert "repro_odd_metric_name_total 1" in render_openmetrics(reg)

    def test_accepts_saved_snapshot_dict_and_path(self, tmp_path):
        reg = populated_registry()
        snap_path = tmp_path / "metrics.json"
        reg.save_json(snap_path)
        from_registry = render_openmetrics(reg)
        assert render_openmetrics(reg.as_dict()) == from_registry
        assert render_openmetrics(str(snap_path)) == from_registry

    def test_save_and_cli(self, tmp_path, capsys):
        reg = populated_registry()
        snap_path = tmp_path / "metrics.json"
        reg.save_json(snap_path)
        out_path = tmp_path / "metrics.prom"
        assert main([str(snap_path), "-o", str(out_path)]) == 0
        assert out_path.read_text() == render_openmetrics(reg)
        assert main([str(tmp_path / "missing.json")]) == 2

    def test_save_openmetrics_writes_file(self, tmp_path):
        path = tmp_path / "m.prom"
        save_openmetrics(populated_registry(), path)
        assert path.read_text().endswith("# EOF\n")


class TestQueryLogSink:
    def test_outcomes_stream_to_jsonl(self, tmp_path):
        obs = Observability()
        path = tmp_path / "queries.jsonl"
        obs.add_outcome_sink(JsonlSink(path))
        outcome = QueryOutcome(
            skyline=np.zeros((4, 2)), method="Baseline", cache_hit=False
        )
        obs.record_outcome(outcome)
        obs.record_outcome(outcome)
        obs.close()
        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0]["method"] == "Baseline"
        assert records[0]["skyline_size"] == 4
        assert set(records[0]["io"]) >= {"points_read", "range_queries"}
        assert set(records[0]["timings"]) == {
            "processing_ms", "fetch_io_ms", "fetch_wall_ms", "skyline_ms",
            "io_ms_total",
        }

    def test_record_is_strict_json(self):
        outcome = QueryOutcome(
            skyline=np.zeros((1, 2)), method="M", case="exact", stable=True
        )
        json.dumps(outcome.as_record(), allow_nan=False)
