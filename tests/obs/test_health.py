"""Tests for SLO specs and the rolling-window health classifier."""

import pytest

from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthMonitor,
    SLOSpec,
    render_dashboard,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.window import RollingWindow


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class FakeBreaker:
    def __init__(self, state="closed"):
        self.state = state


def window_with(n=20, ms=5.0, hits=0, degraded=0, stale=0, errors=0):
    window = RollingWindow(window_s=60.0, clock=FakeClock())
    for i in range(n):
        window.record(
            total_ms=ms,
            cache_hit=i < hits,
            degraded="ampr" if i < degraded else None,
            stale=i < stale,
        )
    for _ in range(errors):
        window.record_error()
    return window


class TestSLOSpec:
    def test_defaults_are_valid(self):
        SLOSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p95_ms": 0.0},
            {"p99_ms": -1.0},
            {"min_hit_ratio": 1.5},
            {"max_error_rate": -0.1},
            {"max_stale_rate": 2.0},
        ],
    )
    def test_rejects_out_of_range_objectives(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(**kwargs)


class TestClassification:
    def test_clean_window_is_healthy(self):
        report = HealthMonitor(window_with()).report()
        assert report.status == HEALTHY
        assert report.healthy
        assert report.reasons == []

    def test_insufficient_data_is_healthy_with_reason(self):
        monitor = HealthMonitor(window_with(n=3), slo=SLOSpec(min_queries=10))
        report = monitor.report()
        assert report.status == HEALTHY
        assert any("insufficient data" in r for r in report.reasons)

    def test_error_rate_is_unhealthy(self):
        monitor = HealthMonitor(window_with(n=18, errors=2))
        report = monitor.report()
        assert report.status == UNHEALTHY
        assert any("error rate" in r for r in report.reasons)

    def test_stale_rate_is_unhealthy(self):
        monitor = HealthMonitor(window_with(n=20, stale=2, degraded=2))
        report = monitor.report()
        assert report.status == UNHEALTHY
        assert any("stale" in r for r in report.reasons)

    def test_degraded_rate_is_degraded(self):
        monitor = HealthMonitor(window_with(n=20, degraded=5))
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("degraded-answer rate" in r for r in report.reasons)

    def test_latency_slo_violation_is_degraded(self):
        monitor = HealthMonitor(
            window_with(ms=100.0), slo=SLOSpec(p95_ms=10.0)
        )
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("p95" in r for r in report.reasons)

    def test_hit_ratio_floor_is_degraded(self):
        monitor = HealthMonitor(
            window_with(hits=2), slo=SLOSpec(min_hit_ratio=0.5)
        )
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("hit ratio" in r for r in report.reasons)

    def test_open_breaker_is_unhealthy_even_on_empty_window(self):
        monitor = HealthMonitor(
            window_with(n=0), breaker=FakeBreaker("open")
        )
        report = monitor.report()
        assert report.status == UNHEALTHY
        assert report.breaker_state == "open"

    def test_half_open_breaker_is_degraded(self):
        monitor = HealthMonitor(
            window_with(), breaker=FakeBreaker("half_open")
        )
        assert monitor.report().status == DEGRADED

    def test_hard_beats_soft(self):
        monitor = HealthMonitor(
            window_with(n=18, degraded=9, errors=2),
            slo=SLOSpec(max_degraded_rate=0.05),
        )
        assert monitor.report().status == UNHEALTHY

    def test_new_quarantines_degrade_once_then_clear(self):
        count = {"n": 0}
        monitor = HealthMonitor(
            window_with(), quarantined=lambda: count["n"]
        )
        assert monitor.report().status == HEALTHY
        count["n"] = 2
        report = monitor.report()
        assert report.status == DEGRADED
        assert report.quarantined == 2
        # no further quarantines: back to healthy on the next check
        assert monitor.report().status == HEALTHY


class TestExportAndRendering:
    def test_health_gauge_is_exported(self):
        metrics = MetricsRegistry()
        HealthMonitor(window_with(), metrics=metrics).report()
        assert metrics.gauge_value("service_health") == 0.0
        HealthMonitor(
            window_with(n=18, errors=2), metrics=metrics
        ).report()
        assert metrics.gauge_value("service_health") == 2.0

    def test_as_dict_round_trips_json(self):
        import json

        report = HealthMonitor(window_with()).report()
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["status"] == HEALTHY
        assert payload["window"]["queries"] == 20

    def test_dashboard_renders_key_signals(self):
        line = render_dashboard(HealthMonitor(window_with(hits=10)).report())
        for token in ("qps=", "p95=", "p99=", "hit=", "status=healthy"):
            assert token in line

    def test_dashboard_on_empty_window(self):
        line = render_dashboard(HealthMonitor(window_with(n=0)).report())
        assert "no traffic" in line


class TestOverloadClassification:
    """The ingress side channel: shed/rejected traffic and queue pressure
    classify the service degraded even when the answered-query window is
    clean -- or too empty to judge at all."""

    def service_stats(self, **overrides):
        stats = {
            "queue_depth": 0,
            "queue_capacity": 64,
            "in_flight": 0,
            "shed": 0,
            "rejected_queue_full": 0,
            "deadline_exceeded": 0,
        }
        stats.update(overrides)
        return stats

    def test_fresh_sheds_degrade_an_insufficient_data_window(self):
        """Shed traffic never enters the rolling window, so overload must
        not hide behind the 'insufficient data' early-out."""
        stats = self.service_stats(shed=7, queue_depth=12)
        monitor = HealthMonitor(
            window_with(n=0),
            slo=SLOSpec(min_queries=10),
            service_stats=lambda: stats,
        )
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("overload" in r for r in report.reasons)
        assert any("insufficient data" in r for r in report.reasons)
        assert report.service["shed"] == 7

    def test_overload_reason_is_delta_based(self):
        """Only *new* sheds since the last check degrade; a calm interval
        after a burst recovers to healthy."""
        stats = self.service_stats(shed=5)
        monitor = HealthMonitor(window_with(), service_stats=lambda: stats)
        assert monitor.report().status == DEGRADED
        # same totals on the next check: nothing new was shed
        assert monitor.report().status == HEALTHY

    def test_queue_pressure_degrades_before_any_shedding(self):
        stats = self.service_stats(queue_depth=52, queue_capacity=64)
        monitor = HealthMonitor(window_with(), service_stats=lambda: stats)
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("queue under pressure" in r for r in report.reasons)

    def test_rejections_and_expiries_count_as_overload(self):
        stats = self.service_stats(rejected_queue_full=2, deadline_exceeded=1)
        monitor = HealthMonitor(window_with(), service_stats=lambda: stats)
        report = monitor.report()
        assert report.status == DEGRADED
        assert any("3 request(s)" in r for r in report.reasons)

    def test_calm_service_stats_change_nothing(self):
        monitor = HealthMonitor(
            window_with(), service_stats=lambda: self.service_stats()
        )
        report = monitor.report()
        assert report.status == HEALTHY
        assert report.service is not None

    def test_dashboard_renders_queue_occupancy(self):
        stats = self.service_stats(queue_depth=9, shed=2, rejected_queue_full=1)
        monitor = HealthMonitor(window_with(), service_stats=lambda: stats)
        line = render_dashboard(monitor.report())
        assert "queue=9/64" in line
        assert "shed=3" in line

    def test_overload_survives_as_dict(self):
        import json

        stats = self.service_stats(shed=4)
        monitor = HealthMonitor(window_with(), service_stats=lambda: stats)
        payload = json.loads(json.dumps(monitor.report().as_dict()))
        assert payload["status"] == DEGRADED
        assert payload["service"]["shed"] == 4
