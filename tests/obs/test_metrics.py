"""Tests for the labeled metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    HistogramData,
    MetricsRegistry,
    NullMetrics,
    render_key,
)


class TestCounters:
    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.inc("cache_lookups_total", strategy="MaxOverlap", outcome="hit")
        reg.inc("cache_lookups_total", strategy="MaxOverlap", outcome="hit")
        reg.inc("cache_lookups_total", strategy="MaxOverlap", outcome="miss")
        assert (
            reg.counter_value(
                "cache_lookups_total", strategy="MaxOverlap", outcome="hit"
            )
            == 2.0
        )
        assert (
            reg.counter_value(
                "cache_lookups_total", strategy="MaxOverlap", outcome="miss"
            )
            == 1.0
        )
        assert reg.counter_total("cache_lookups_total") == 3.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x_total", outcome="hit", strategy="S")
        reg.inc("x_total", strategy="S", outcome="hit")
        assert reg.counter_value("x_total", strategy="S", outcome="hit") == 2.0

    def test_missing_series_reads_zero(self):
        assert MetricsRegistry().counter_value("nope_total") == 0.0

    def test_counters_iterates_labeled_series(self):
        reg = MetricsRegistry()
        reg.inc("q_total", 3, method="A")
        reg.inc("q_total", method="B")
        reg.inc("other_total", method="A")
        series = dict(
            (labels["method"], value) for labels, value in reg.counters("q_total")
        )
        assert series == {"A": 3.0, "B": 1.0}

    def test_custom_amount(self):
        reg = MetricsRegistry()
        reg.inc("points_read_total", 120, method="Baseline")
        reg.inc("points_read_total", 30, method="Baseline")
        assert reg.counter_value("points_read_total", method="Baseline") == 150.0


class TestGaugesAndHistograms:
    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("cache_items", 3)
        reg.set_gauge("cache_items", 5)
        assert reg.gauge_value("cache_items") == 5.0
        assert reg.gauge_value("absent") is None

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("stage_ms", float(v), stage="skyline")
        hist = reg.histogram("stage_ms", stage="skyline")
        assert hist.count == 100
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert hist.percentile(95) == pytest.approx(95.0, abs=1.0)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "min", "max", "mean", "p50", "p95"}

    def test_histogram_sample_cap_keeps_exact_aggregates(self):
        hist = HistogramData(max_samples=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.sum == pytest.approx(sum(range(100)))
        assert hist.max == 99.0
        # percentiles degrade to the retained prefix but stay defined
        assert hist.percentile(50) <= 9.0

    def test_empty_histogram(self):
        hist = HistogramData()
        assert hist.summary() == {"count": 0}
        assert hist.percentile(50) != hist.percentile(50)  # NaN


class TestExport:
    def test_as_dict_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("queries_total", method="CBCS")
        reg.set_gauge("cache_items", 2)
        reg.observe("stage_ms", 1.5, stage="skyline")
        path = tmp_path / "metrics.json"
        reg.save_json(path)
        loaded = json.loads(path.read_text())
        # Saved snapshots are stamped with the obs schema version; the body
        # is exactly as_dict().
        assert loaded.pop("schema") == 1
        assert loaded == reg.as_dict()
        assert loaded["counters"][0] == {
            "name": "queries_total",
            "labels": {"method": "CBCS"},
            "value": 1.0,
        }
        [hist] = loaded["histograms"]
        assert hist["name"] == "stage_ms"
        assert hist["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a_total")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        snap = reg.as_dict()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("queries_total", 3, method="X")
        b.inc("queries_total", 4, method="X")
        b.inc("queries_total", 1, method="Y")
        a.set_gauge("cache_items", 2)
        b.set_gauge("cache_items", 9)
        a.observe("stage_ms", 1.0, stage="skyline")
        b.observe("stage_ms", 3.0, stage="skyline")
        b.observe("new_hist", 5.0)
        a.merge(b)
        assert a.counter_value("queries_total", method="X") == 7.0
        assert a.counter_value("queries_total", method="Y") == 1.0
        assert a.gauge_value("cache_items") == 9.0
        hist = a.histogram("stage_ms", stage="skyline")
        assert hist.count == 2 and hist.sum == pytest.approx(4.0)
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.percentile(95) == 3.0
        assert a.histogram("new_hist").count == 1
        # the source registry is untouched
        assert b.counter_value("queries_total", method="X") == 4.0

    def test_histogram_merge_respects_sample_cap(self):
        a, b = HistogramData(max_samples=5), HistogramData()
        for v in range(4):
            a.observe(float(v))
        for v in range(10, 20):
            b.observe(float(v))
        a.merge(b)
        assert a.count == 14
        assert a.sum == pytest.approx(sum(range(4)) + sum(range(10, 20)))
        assert a.max == 19.0
        assert len(a._values) == 5

    def test_merge_empty_histogram_keeps_extremes(self):
        a, b = HistogramData(), HistogramData()
        a.observe(2.0)
        a.merge(b)
        assert a.count == 1 and a.min == 2.0 and a.max == 2.0

    def test_merge_into_empty_histogram_adopts_extremes(self):
        a, b = HistogramData(), HistogramData()
        b.observe(3.0)
        b.observe(7.0)
        a.merge(b)
        assert a.count == 2
        assert a.min == 3.0 and a.max == 7.0
        assert a.percentile(50) in (3.0, 7.0)

    def test_merge_two_empty_histograms_stays_empty(self):
        a, b = HistogramData(), HistogramData()
        a.merge(b)
        assert a.count == 0
        assert a.summary() == {"count": 0}
        assert a.percentile(50) != a.percentile(50)  # still NaN

    def test_merge_when_target_samples_already_full(self):
        a, b = HistogramData(max_samples=3), HistogramData()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (100.0, 200.0):
            b.observe(v)
        a.merge(b)
        # no room: samples unchanged, aggregates still exact
        assert len(a._values) == 3
        assert a.count == 5
        assert a.sum == pytest.approx(306.0)
        assert a.max == 200.0


class TestExemplars:
    def test_observe_without_exemplar_keeps_none(self):
        hist = HistogramData()
        hist.observe(1.0)
        assert hist.exemplar is None
        assert "exemplar" not in hist.summary()

    def test_last_exemplar_wins(self):
        hist = HistogramData()
        hist.observe(1.0, exemplar="q00000001")
        hist.observe(9.0)  # plain observation does not clear it
        hist.observe(5.0, exemplar="q00000003")
        assert hist.exemplar == ("q00000003", 5.0)
        assert hist.summary()["exemplar"] == {
            "query_id": "q00000003",
            "value": 5.0,
        }

    def test_registry_observe_threads_exemplar_through(self):
        reg = MetricsRegistry()
        reg.observe("query_total_ms", 4.0, exemplar="q00000002", method="CBCS")
        hist = reg.histogram("query_total_ms", method="CBCS")
        assert hist.exemplar == ("q00000002", 4.0)
        [rec] = reg.as_dict()["histograms"]
        assert rec["exemplar"]["query_id"] == "q00000002"

    def test_merge_prefers_the_incoming_exemplar(self):
        a, b = HistogramData(), HistogramData()
        a.observe(1.0, exemplar="old")
        b.observe(2.0, exemplar="new")
        a.merge(b)
        assert a.exemplar == ("new", 2.0)

    def test_merge_without_incoming_exemplar_keeps_mine(self):
        a, b = HistogramData(), HistogramData()
        a.observe(1.0, exemplar="mine")
        b.observe(2.0)
        a.merge(b)
        assert a.exemplar == ("mine", 1.0)

    def test_null_metrics_accepts_exemplar_kwarg(self):
        NULL_METRICS.observe("h", 1.0, exemplar="q1")
        assert NULL_METRICS.as_dict()["histograms"] == []

    def test_render_key(self):
        reg = MetricsRegistry()
        reg.inc("x_total", b="2", a="1")
        [(name, labels)] = list(reg._counters)
        assert render_key(name, labels) == "x_total{a=1,b=2}"
        assert render_key("bare_total", ()) == "bare_total"


class TestNullMetrics:
    def test_records_nothing(self):
        null = NullMetrics()
        null.inc("a_total", 5, method="X")
        null.set_gauge("g", 1)
        null.observe("h", 1.0)
        assert null.as_dict() == {"counters": [], "gauges": [], "histograms": []}
        assert null.counter_total("a_total") == 0.0

    def test_shared_singleton_disabled(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True
