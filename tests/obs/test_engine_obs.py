"""End-to-end observability tests against the instrumented engine.

Covers the ISSUE acceptance criteria: the scripted refinement chain fires
metric labels for all four cases a-d, aggregate counters reconcile exactly
with the summed per-query ``QueryOutcome``/``IOStats`` records, span timings
carry the very floats stored in ``StageTimings``, and with observability
disabled the engine's results are byte-identical.
"""

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.core.cbcs import CBCS
from repro.geometry.constraints import Constraints
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    Observability,
    Tracer,
    activate,
    current,
)
from repro.obs.sinks import RingBufferSink
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

#: Hand-laid 2-D points: the base box [0.2,0.8]^2 has the three-point
#: staircase skyline {(0.25,0.75), (0.40,0.50), (0.75,0.25)} (MBR
#: [0.25,0.25]-[0.75,0.75]), with extra points just outside each bound so
#: every single-bound refinement has something to fetch.
CASE_DATA = np.array(
    [
        [0.25, 0.75],
        [0.40, 0.50],
        [0.75, 0.25],
        [0.60, 0.60],
        [0.70, 0.70],
        [0.55, 0.65],
        [0.12, 0.60],
        [0.60, 0.12],
        [0.85, 0.22],
        [0.22, 0.85],
    ]
)

BASE = Constraints([0.2, 0.2], [0.8, 0.8])

REFINEMENTS = {
    "case_a": Constraints([0.1, 0.2], [0.8, 0.8]),  # lower decreased
    "case_b": Constraints([0.2, 0.2], [0.8, 0.7]),  # upper decreased
    "case_c": Constraints([0.2, 0.2], [0.9, 0.8]),  # upper increased
    "case_d": Constraints([0.3, 0.2], [0.8, 0.8]),  # lower increased
}


def make_obs():
    sink = RingBufferSink()
    return Observability(metrics=MetricsRegistry(), tracer=Tracer(sinks=[sink])), sink


def make_engine(data, obs=None, **kwargs):
    return CBCS(DiskTable(data), obs=obs, **kwargs)


def random_data(n=300, d=2, seed=7):
    return np.random.default_rng(seed).random((n, d))


class TestCaseMetrics:
    def test_refinement_chain_fires_all_four_case_labels(self):
        obs, _ = make_obs()
        engine = make_engine(CASE_DATA, obs=obs)
        engine.query(BASE)  # cache miss, primes the one cached item
        engine.cache_results = False  # keep that item the only candidate

        for case, constraints in REFINEMENTS.items():
            assert engine.query(constraints).case == case
        assert engine.query(BASE).case == "exact"

        m, method = obs.metrics, engine.name
        for case in REFINEMENTS:
            assert m.counter_value("query_case_total", method=method, case=case) == 1.0
        assert m.counter_value("query_case_total", method=method, case="miss") == 1.0
        assert m.counter_value("query_case_total", method=method, case="exact") == 1.0
        assert m.counter_value("queries_total", method=method) == 6.0

    def test_lookup_and_stability_counters(self):
        obs, _ = make_obs()
        engine = make_engine(CASE_DATA, obs=obs)
        engine.query(BASE)
        engine.cache_results = False
        for constraints in REFINEMENTS.values():
            engine.query(constraints)
        engine.query(BASE)

        m, strategy = obs.metrics, engine.strategy.name
        assert (
            m.counter_value("cache_lookups_total", strategy=strategy, outcome="hit")
            == 5.0
        )
        assert (
            m.counter_value("cache_lookups_total", strategy=strategy, outcome="miss")
            == 1.0
        )
        method = engine.name
        # cases a-c and the exact hit are stable; case d is the unstable one
        assert (
            m.counter_value("query_stability_total", method=method, stable="stable")
            == 4.0
        )
        assert (
            m.counter_value("query_stability_total", method=method, stable="unstable")
            == 1.0
        )
        assert m.counter_value("strategy_selections_total", strategy=strategy) == 5.0
        assert m.counter_total("mpr_computations_total") == 4.0


class TestReconciliation:
    def test_counters_equal_summed_outcomes(self):
        data = random_data(400, 2, seed=1)
        obs, _ = make_obs()
        engine = make_engine(data, obs=obs)
        queries = WorkloadGenerator(data, seed=2).exploratory_stream(15)
        outcomes = [engine.query(q) for q in queries]

        m, method = obs.metrics, engine.name
        assert m.counter_value("queries_total", method=method) == len(outcomes)
        for fname in (
            "points_read",
            "pages_read",
            "seeks",
            "range_queries",
            "simulated_io_ms",
        ):
            total = sum(getattr(o.io, fname) for o in outcomes)
            assert m.counter_value(f"{fname}_total", method=method) == pytest.approx(
                total
            )
        hist = m.histogram("stage_ms", method=method, stage="skyline")
        assert hist.count == len(outcomes)
        assert hist.sum == pytest.approx(sum(o.timings.skyline_ms for o in outcomes))
        total_hist = m.histogram("query_total_ms", method=method)
        assert total_hist.sum == pytest.approx(sum(o.total_ms for o in outcomes))


class TestNoopMode:
    def test_results_identical_with_and_without_obs(self):
        data = random_data(400, 2, seed=3)
        queries = WorkloadGenerator(data, seed=5).exploratory_stream(12)
        obs, _ = make_obs()
        plain = make_engine(data)
        traced = make_engine(data, obs=obs)
        for q in queries:
            a, b = plain.query(q), traced.query(q)
            assert a.skyline.tobytes() == b.skyline.tobytes()
            assert a.io.as_dict() == b.io.as_dict()
            assert (a.case, a.stable, a.cache_hit) == (b.case, b.stable, b.cache_hit)

    def test_default_engine_uses_shared_null_obs(self):
        engine = make_engine(CASE_DATA)
        assert engine.obs is NULL_OBS
        assert engine.table.obs is NULL_OBS
        assert engine.strategy.obs is NULL_OBS


class TestSpanTree:
    def test_query_span_encloses_stages_and_table_work(self):
        obs, sink = make_obs()
        engine = make_engine(CASE_DATA, obs=obs)
        outcome = engine.query(Constraints([0.1, 0.1], [0.9, 0.9]))  # miss

        [query_span] = sink.named("cbcs.query")
        assert query_span["attrs"]["case"] == "miss"
        children = {
            r["name"] for r in sink.spans if r["parent_id"] == query_span["span_id"]
        }
        assert {
            "cache.search",
            "stage.processing",
            "stage.fetch_wall",
            "stage.skyline",
            "table.range_query",
        } <= children
        # the trace carries the floats stored in StageTimings (records
        # round to 6 decimals on emission)
        [fetch] = sink.named("stage.fetch_wall")
        assert fetch["duration_ms"] == round(outcome.timings.fetch_wall_ms, 6)
        [sky] = sink.named("stage.skyline")
        assert sky["duration_ms"] == round(outcome.timings.skyline_ms, 6)

    def test_cache_hit_query_traces_mpr_and_merge(self):
        obs, sink = make_obs()
        engine = make_engine(CASE_DATA, obs=obs)
        engine.query(BASE)
        engine.cache_results = False
        engine.query(REFINEMENTS["case_d"])
        assert sink.named("cache.select")
        assert sink.named("case.classify")
        assert sink.named("mpr.compute")
        assert sink.named("skyline.merge")
        [stability] = sink.named("stability.check")
        assert stability["attrs"]["stable"] is False


class TestCacheMetrics:
    def test_evictions_and_stats_flow_into_registry(self):
        reg = MetricsRegistry()
        cache = SkylineCache(capacity=2, policy="lru", metrics=reg)
        for i in range(3):
            cache.insert(
                Constraints([i * 0.1, 0.0], [1.0, 1.0]),
                np.array([[0.1 + i * 0.01, 0.2]]),
            )
        assert cache.evictions == 1
        assert reg.counter_value("cache_evictions_total", policy="lru") == 1.0
        assert reg.counter_value("cache_insertions_total") == 3.0
        assert reg.gauge_value("cache_items") == 2.0

        cache.candidates(Constraints([0.0, 0.0], [1.0, 1.0]))  # hit
        cache.candidates(Constraints([0.9, 0.9], [1.0, 1.0]))  # miss
        stats = cache.stats()
        assert stats["items"] == 2
        assert stats["insertions"] == 3
        assert stats["evictions"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert reg.counter_value("cache_hits_total") == 1.0
        assert reg.counter_value("cache_misses_total") == 1.0

    def test_dry_run_lookup_does_not_count(self):
        cache = SkylineCache()
        cache.insert(Constraints([0.0, 0.0], [1.0, 1.0]), np.array([[0.5, 0.5]]))
        cache.candidates(Constraints([0.0, 0.0], [1.0, 1.0]), record=False)
        assert cache.hits == 0 and cache.misses == 0

    def test_explain_leaves_counters_untouched(self):
        engine = make_engine(CASE_DATA)
        engine.query(BASE)
        hits, misses = engine.cache.hits, engine.cache.misses
        engine.explain(REFINEMENTS["case_b"])
        assert (engine.cache.hits, engine.cache.misses) == (hits, misses)


class TestAmbientObservability:
    def test_activate_threads_obs_through_harness_factories(self):
        from repro.bench.harness import make_methods, run_queries

        data = random_data(200, 2, seed=9)
        obs, _ = make_obs()
        with activate(obs):
            assert current() is obs
            methods = make_methods(data)
        assert current() is NULL_OBS

        queries = WorkloadGenerator(data, seed=1).independent_queries(5)
        for method in methods.values():
            run_queries(method, queries)
        m = obs.metrics
        assert m.counter_value("queries_total", method="Baseline") == 5.0
        assert m.counter_value("queries_total", method="BBS") == 5.0
        assert m.counter_value("queries_total", method="CBCS[aMPR(1NN)]") == 5.0

    def test_factories_default_to_null_obs(self):
        from repro.bench.harness import make_cbcs

        engine = make_cbcs(random_data(50, 2))
        assert engine.obs is NULL_OBS
