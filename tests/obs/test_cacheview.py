"""Tests for live cache introspection (coverage, accounting, quarantine)."""

import math

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.core.cbcs import CBCS
from repro.geometry.constraints import Constraints
from repro.obs.cacheview import CacheView, render_cacheview
from repro.obs.correlate import bind
from repro.obs.metrics import MetricsRegistry
from repro.storage.table import DiskTable


def seeded_cache(n_items=4, seed=0):
    rng = np.random.default_rng(seed)
    cache = SkylineCache()
    for i in range(n_items):
        lo = np.full(2, i * 0.2)
        hi = lo + 0.25
        sky = lo + rng.random((3, 2)) * 0.25
        cache.insert(Constraints(lo=lo, hi=hi), sky)
    return cache


class TestSnapshot:
    def test_counts_points_and_bytes(self):
        cache = seeded_cache()
        snap = CacheView(cache).snapshot()
        assert snap["items"] == 4
        assert snap["total_points"] == 12
        # 3x2 float64 skyline + two 2-float MBR vectors per item
        assert snap["total_bytes"] == 4 * (3 * 2 * 8 + 2 * 8 + 2 * 8)

    def test_top_items_sorted_by_use_count(self):
        cache = seeded_cache()
        items = list(cache)
        cache.touch(items[2], case="exact")
        cache.touch(items[2], case="case_b")
        cache.touch(items[0], case="exact")
        snap = CacheView(cache).snapshot(top=2)
        assert [rec["item_id"] for rec in snap["top_items"]] == [
            items[2].item_id,
            items[0].item_id,
        ]
        assert snap["top_items"][0]["case_uses"] == {"exact": 1, "case_b": 1}
        assert snap["case_hit_totals"] == {"exact": 2, "case_b": 1}

    def test_empty_cache_snapshot(self):
        snap = CacheView(SkylineCache()).snapshot()
        assert snap["items"] == 0
        assert snap["total_bytes"] == 0
        assert math.isnan(snap["coverage_fraction"])

    def test_snapshot_is_json_serializable(self):
        import json

        cache = seeded_cache()
        cache.touch(next(iter(cache)), case="exact")
        json.dumps(CacheView(cache).snapshot())


class TestCoverage:
    def test_full_cover_is_one(self):
        cache = SkylineCache()
        sky = np.array([[0.1, 0.9], [0.9, 0.1]])
        cache.insert(Constraints(lo=np.zeros(2), hi=np.ones(2)), sky)
        view = CacheView(cache, bounds=(np.zeros(2), np.ones(2)))
        assert view.coverage_fraction() == pytest.approx(1.0)

    def test_half_cover_is_about_half(self):
        cache = SkylineCache()
        sky = np.array([[0.1, 0.4], [0.4, 0.1]])
        cache.insert(
            Constraints(lo=np.zeros(2), hi=np.array([0.5, 1.0])), sky
        )
        view = CacheView(cache, bounds=(np.zeros(2), np.ones(2)))
        assert view.coverage_fraction() == pytest.approx(0.5, abs=0.05)

    def test_deterministic_for_fixed_state(self):
        cache = seeded_cache()
        view = CacheView(cache)
        assert view.coverage_fraction() == view.coverage_fraction()

    def test_unbounded_constraint_sides_fall_back_to_mbr(self):
        cache = SkylineCache()
        sky = np.array([[0.2, 0.3], [0.3, 0.2]])
        cache.insert(
            Constraints(lo=np.array([-np.inf, 0.0]), hi=np.array([np.inf, 0.5])),
            sky,
        )
        fraction = CacheView(cache).coverage_fraction()
        assert 0.0 <= fraction <= 1.0 and not math.isnan(fraction)


class TestQuarantineLog:
    def test_quarantine_records_reason_and_query_id(self):
        cache = seeded_cache()
        item = next(iter(cache))
        item.skyline[0, 0] = np.nan
        with bind("q00000007"):
            assert not cache.verify_and_heal(item)
        snap = CacheView(cache).snapshot()
        assert snap["quarantined"] == 1
        assert snap["quarantine_log"] == [
            {
                "item_id": item.item_id,
                "reason": "non-finite",
                "query_id": "q00000007",
            }
        ]

    def test_quarantine_outside_a_query_logs_none(self):
        cache = seeded_cache()
        item = next(iter(cache))
        item.skyline[0, 0] = np.nan
        cache.verify_and_heal(item)
        assert cache.quarantine_log[-1]["query_id"] is None


class TestGaugesAndRendering:
    def test_export_gauges(self):
        cache = seeded_cache()
        metrics = MetricsRegistry()
        CacheView(cache).export_gauges(metrics)
        assert metrics.gauge_value("cache_bytes") > 0
        assert metrics.gauge_value("cache_points") == 12.0
        assert 0.0 <= metrics.gauge_value("cache_coverage_fraction") <= 1.0

    def test_export_gauges_skips_nan_coverage(self):
        metrics = MetricsRegistry()
        CacheView(SkylineCache()).export_gauges(metrics)
        assert metrics.gauge_value("cache_coverage_fraction") is None
        assert metrics.gauge_value("cache_bytes") == 0.0

    def test_render_contains_headline_and_tables(self):
        cache = seeded_cache()
        cache.touch(next(iter(cache)), case="exact")
        text = render_cacheview(CacheView(cache).snapshot())
        assert "# cache introspection" in text
        assert "items=4" in text
        assert "Hits by overlap case" in text
        assert "Hottest cache items" in text


class TestEngineIntegration:
    def test_engine_populates_case_uses(self):
        rng = np.random.default_rng(0)
        engine = CBCS(DiskTable(rng.random((800, 3))))
        base = Constraints(lo=np.zeros(3), hi=np.full(3, 0.6))
        engine.query(base)
        engine.query(base)  # exact hit
        engine.query(Constraints(lo=np.zeros(3), hi=np.full(3, 0.5)))
        totals = CacheView(engine.cache).snapshot()["case_hit_totals"]
        assert totals.get("exact") == 1
        assert sum(totals.values()) >= 2
        engine.close()


class TestFleetCacheView:
    """Per-shard cache aggregation for the sharded engine."""

    def fleet(self):
        from repro.obs.cacheview import FleetCacheView

        return FleetCacheView([seeded_cache(2, seed=0), seeded_cache(3, seed=1)])

    def test_snapshot_sums_shards(self):
        snap = self.fleet().snapshot()
        assert snap["shards_total"] == 2
        assert snap["items"] == 5
        assert snap["capacity"] is None
        assert len(snap["shards"]) == 2
        assert [s["shard_id"] for s in snap["shards"]] == [0, 1]
        assert snap["total_points"] == sum(
            s["total_points"] for s in snap["shards"]
        )

    def test_fleet_hit_rate_is_total_over_total(self):
        a, b = seeded_cache(2), seeded_cache(2, seed=1)
        # a: 9 hits / 1 miss; b: 0 hits / 10 misses.  A mean of rates says
        # 45%; the fleet truth is 9/20.
        for cache, hits, misses in ((a, 9, 1), (b, 0, 10)):
            cache.hits += hits
            cache.misses += misses
        from repro.obs.cacheview import FleetCacheView

        snap = FleetCacheView([a, b]).snapshot()
        assert snap["hit_rate"] == pytest.approx(9 / 20)

    def test_top_items_tagged_with_shard(self):
        snap = self.fleet().snapshot()
        assert all("shard" in item for item in snap["top_items"])

    def test_snapshot_is_json_serializable(self):
        import json

        json.dumps(self.fleet().snapshot())

    def test_export_gauges_labeled_per_shard(self):
        metrics = MetricsRegistry()
        self.fleet().export_gauges(metrics)
        assert metrics.gauge_value("cache_points") is not None
        assert metrics.gauge_value("cache_points", shard="0") is not None
        assert metrics.gauge_value("cache_items", shard="1") is not None

    def test_render_mentions_shards(self):
        text = render_cacheview(self.fleet().snapshot())
        assert "shards=2" in text
        assert "Per-shard caches" in text


class TestViewFor:
    def test_plain_cache_gets_cacheview(self):
        from repro.obs.cacheview import view_for

        assert isinstance(view_for(seeded_cache()), CacheView)

    def test_engine_with_cache_gets_cacheview(self):
        from repro.obs.cacheview import view_for

        data = np.random.default_rng(0).uniform(0, 1, (200, 2))
        engine = CBCS(DiskTable(data))
        view = view_for(engine)
        assert isinstance(view, CacheView)
        assert view.cache is engine.cache

    def test_sharded_engine_gets_fleet_view(self):
        from repro.core.sharded import ShardedCBCS
        from repro.obs.cacheview import FleetCacheView, view_for
        from repro.storage.sharding import ShardedTable

        data = np.random.default_rng(0).uniform(0, 1, (200, 3))
        engine = ShardedCBCS(ShardedTable(data, 3))
        view = view_for(engine)
        assert isinstance(view, FleetCacheView)
        assert view.snapshot()["shards_total"] == 3
        engine.close()
